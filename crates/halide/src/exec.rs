//! The compiled executor for lowered loop-nest IR.
//!
//! Where the interpreter dispatches per element through [`Value`] enums, this
//! executor compiles every [`Stmt::Store`] into a *typed* lane program:
//! expressions are type-inferred once (int lanes are `i64`, float lanes are
//! `f64`), buffer loads and stores are monomorphized per [`ScalarType`] into
//! flat-slice inner loops, and the innermost loop runs `width` lanes per
//! dispatch. [`LoopKind::Parallel`] loops distribute contiguous iteration
//! chunks across scoped worker threads.
//!
//! **Bit-exactness.** Every lane operation replicates the corresponding
//! [`Value`] semantics exactly: integer arithmetic wraps, division by zero
//! yields zero, shifts/bitwise ops on float operands round-trip through `i64`,
//! casts truncate like C casts, and out-of-range loads clamp per
//! [`Buffer::get`]. Expressions whose type cannot be inferred statically (a
//! `select` mixing int and float branches) fall back to the shared
//! [`crate::eval`] evaluator, the same code the interpreter backend and the
//! reduction path run — so the fallback cannot drift. The differential
//! property suite in `tests/prop_halide.rs` enforces equality against the
//! interpreter.
//!
//! Since the compile/run split, store compilation happens once in [`prepare`]
//! (producing an [`ExecPlan`] that the program cache retains) and [`run`]
//! only binds buffers and walks the loop nest.
//!
//! **Safety.** Worker threads share buffers through raw pointers; no `&mut`
//! is ever formed over shared data. This is sound because (a) loads only ever
//! read buffers that nothing writes during the run (inputs, pre-materialized
//! roots, and the thread's own finished `compute_at` scratch), and (b) the
//! lowering pass only marks the *outermost* output loop parallel, with every
//! store under it indexing the output through that loop's variable, so
//! threads write disjoint byte ranges; `compute_at` buffers are allocated
//! inside the parallel body and are thread-local by construction.

use crate::buffer::Buffer;
use crate::eval::{eval_expr, EvalSources};
use crate::expr::{eval_binop, eval_cmp, BinOp, CmpOp, Expr, ExternCall};
use crate::realize::RealizeError;
use crate::stmt::{LoopKind, Stmt};
use crate::types::{ScalarType, Value};
use std::collections::BTreeMap;

/// Maximum number of lanes evaluated per inner dispatch. Schedules may ask
/// for wider vectors; execution batches them `MAX_LANES` at a time (the
/// results are identical either way).
pub const MAX_LANES: usize = 16;

// ---------------------------------------------------------------------------
// Slots: buffers addressable by compiled programs
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SlotDecl {
    ty: ScalarType,
    writable: bool,
}

/// A bound buffer: raw parts of either a caller-provided [`Buffer`] or a
/// scoped `Allocate` scratch vector.
#[derive(Debug, Clone)]
struct SlotBind {
    ptr: *mut u8,
    byte_len: usize,
    extents: Vec<usize>,
    strides: Vec<usize>,
}

impl SlotBind {
    /// Read-only view of the backing bytes.
    ///
    /// Sound per the module-level aliasing argument: buffers read through
    /// this are never written during the run.
    fn data(&self) -> &[u8] {
        // SAFETY: ptr/byte_len come from a live buffer borrow or a live
        // Allocate scratch vector; binds never outlive their buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.byte_len) }
    }

    /// Write `bytes` at `byte_off` without forming a `&mut` over the buffer.
    #[inline]
    fn write(&self, byte_off: usize, bytes: &[u8]) {
        debug_assert!(byte_off + bytes.len() <= self.byte_len);
        // SAFETY: in-bounds per the debug assert (store indices are in range
        // by loop construction); concurrent writers target disjoint ranges
        // per the module-level invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.add(byte_off), bytes.len());
        }
    }
}

/// Bind table shared across worker threads (cloned per thread; the raw
/// pointers alias, the metadata does not).
///
/// SAFETY: Send is sound per the module-level aliasing argument.
#[derive(Clone)]
struct BindTable(Vec<Option<SlotBind>>);

unsafe impl Send for BindTable {}

// ---------------------------------------------------------------------------
// Typed lane programs
// ---------------------------------------------------------------------------

/// One operation of a typed lane program. Operand kinds were resolved at
/// compile time; `promote_*` flags replicate `Value::as_f64` promotions.
#[derive(Debug, Clone)]
enum TOp {
    ConstI(i64),
    ConstF(f64),
    /// Push the loop variable at `depth`; stepped per lane when `depth` is
    /// the store's innermost loop.
    Var(usize),
    /// Convert the top int register to float (`as_f64`).
    I2F,
    /// Convert the top float register to int (`as_i64`).
    F2I,
    /// Integer binary op (both operands int), `eval_binop` int semantics.
    BinII(BinOp),
    /// Float arithmetic (Add/Sub/Mul/Div/Mod/Min/Max), float-branch
    /// semantics; `promote_*` converts an int operand first.
    BinFF {
        op: BinOp,
        promote_a: bool,
        promote_b: bool,
    },
    /// Bitwise/shift with a float operand: `eval_binop` float-branch
    /// semantics (`(x as i64) op (y as i64)`), yielding int.
    BinBitFF {
        op: BinOp,
        promote_a: bool,
        promote_b: bool,
    },
    CmpII(CmpOp),
    CmpFF {
        op: CmpOp,
        promote_a: bool,
        promote_b: bool,
    },
    /// Cast with an int source.
    CastI(ScalarType),
    /// Cast with a float source.
    CastF(ScalarType),
    /// `select(cond, t, f)`; branch kinds match by construction.
    Sel {
        cond_float: bool,
        branches_float: bool,
    },
    /// Extern call; all arguments already float.
    Call(ExternCall, usize),
    /// Clamped load from a buffer slot of element type `ty`.
    Load {
        slot: usize,
        arity: usize,
        ty: ScalarType,
    },
}

#[derive(Debug, Clone)]
struct Program {
    ops: Vec<TOp>,
    max_stack: usize,
    float_result: bool,
}

/// A store compiled to typed lane programs.
#[derive(Debug, Clone)]
struct TypedStore {
    slot: usize,
    index_progs: Vec<Program>,
    value_prog: Program,
}

/// A store that could not be typed statically; evaluated per element with
/// exact [`Value`] semantics.
#[derive(Debug, Clone)]
struct FallbackStore {
    slot: usize,
    indices: Vec<Expr>,
    value: Expr,
    var_depths: BTreeMap<String, usize>,
    slots: BTreeMap<String, usize>,
}

#[derive(Debug, Clone)]
enum StoreExec {
    Typed(TypedStore),
    Fallback(Box<FallbackStore>),
}

#[derive(Debug, Clone)]
struct CompiledStore {
    exec: StoreExec,
    /// Depth of the innermost enclosing loop (the lane dimension).
    lane_depth: usize,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Int,
    Float,
}

enum CompileFail {
    /// Fall back to the per-element evaluator (e.g. dynamically typed select).
    Soft,
    /// A real error (missing input/param, undefined func).
    Hard(RealizeError),
}

struct Compiler<'a> {
    var_depths: &'a BTreeMap<String, usize>,
    slot_ids: &'a BTreeMap<String, usize>,
    decls: &'a [SlotDecl],
    params: &'a BTreeMap<String, Value>,
}

struct Emit {
    ops: Vec<TOp>,
    cur: usize,
    max: usize,
}

impl Emit {
    fn new() -> Emit {
        Emit {
            ops: Vec::new(),
            cur: 0,
            max: 0,
        }
    }

    fn push(&mut self, op: TOp, delta: isize) {
        self.ops.push(op);
        self.cur = (self.cur as isize + delta) as usize;
        self.max = self.max.max(self.cur);
    }
}

impl Compiler<'_> {
    fn compile(&self, e: &Expr, out: &mut Emit) -> Result<Kind, CompileFail> {
        match e {
            Expr::Var(name) | Expr::RVar(name) => {
                let depth =
                    self.var_depths.get(name).copied().ok_or_else(|| {
                        CompileFail::Hard(RealizeError::MissingParam(name.clone()))
                    })?;
                out.push(TOp::Var(depth), 1);
                Ok(Kind::Int)
            }
            Expr::ConstInt(v, ty) => {
                if ty.is_float() {
                    out.push(TOp::ConstF(*v as f64), 1);
                    Ok(Kind::Float)
                } else {
                    out.push(TOp::ConstI(*v), 1);
                    Ok(Kind::Int)
                }
            }
            Expr::ConstFloat(v, _) => {
                out.push(TOp::ConstF(*v), 1);
                Ok(Kind::Float)
            }
            Expr::Param(name, _) => {
                let v =
                    self.params.get(name).copied().ok_or_else(|| {
                        CompileFail::Hard(RealizeError::MissingParam(name.clone()))
                    })?;
                match v {
                    Value::Int(i) => {
                        out.push(TOp::ConstI(i), 1);
                        Ok(Kind::Int)
                    }
                    Value::Float(f) => {
                        out.push(TOp::ConstF(f), 1);
                        Ok(Kind::Float)
                    }
                }
            }
            Expr::Cast(ty, inner) => {
                let k = self.compile(inner, out)?;
                match k {
                    Kind::Int => out.push(TOp::CastI(*ty), 0),
                    Kind::Float => out.push(TOp::CastF(*ty), 0),
                }
                Ok(if ty.is_float() {
                    Kind::Float
                } else {
                    Kind::Int
                })
            }
            Expr::Binary(op, a, b) => {
                let ka = self.compile(a, out)?;
                let kb = self.compile(b, out)?;
                let bitwise = matches!(
                    op,
                    BinOp::Shr | BinOp::Shl | BinOp::And | BinOp::Or | BinOp::Xor
                );
                if ka == Kind::Int && kb == Kind::Int {
                    out.push(TOp::BinII(*op), -1);
                    Ok(Kind::Int)
                } else if bitwise {
                    out.push(
                        TOp::BinBitFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                    Ok(Kind::Int)
                } else {
                    out.push(
                        TOp::BinFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                    Ok(Kind::Float)
                }
            }
            Expr::Cmp(op, a, b) => {
                let ka = self.compile(a, out)?;
                let kb = self.compile(b, out)?;
                if ka == Kind::Int && kb == Kind::Int {
                    out.push(TOp::CmpII(*op), -1);
                } else {
                    out.push(
                        TOp::CmpFF {
                            op: *op,
                            promote_a: ka == Kind::Int,
                            promote_b: kb == Kind::Int,
                        },
                        -1,
                    );
                }
                Ok(Kind::Int)
            }
            Expr::Select(c, t, f) => {
                let kc = self.compile(c, out)?;
                let kt = self.compile(t, out)?;
                let kf = self.compile(f, out)?;
                if kt != kf {
                    // Dynamically typed select: the interpreter picks the
                    // branch value unchanged, so the result type varies per
                    // element. Use the fallback evaluator.
                    return Err(CompileFail::Soft);
                }
                out.push(
                    TOp::Sel {
                        cond_float: kc == Kind::Float,
                        branches_float: kt == Kind::Float,
                    },
                    -2,
                );
                Ok(kt)
            }
            Expr::Call(call, args) => {
                for a in args {
                    let k = self.compile(a, out)?;
                    if k == Kind::Int {
                        out.push(TOp::I2F, 0);
                    }
                }
                out.push(TOp::Call(*call, args.len()), 1 - args.len() as isize);
                Ok(Kind::Float)
            }
            Expr::Image(name, args) | Expr::FuncRef(name, args) => {
                let slot = self.slot_ids.get(name).copied().ok_or_else(|| {
                    CompileFail::Hard(match e {
                        Expr::Image(..) => RealizeError::MissingInput(name.clone()),
                        _ => RealizeError::UndefinedFunc(name.clone()),
                    })
                })?;
                for a in args {
                    let k = self.compile(a, out)?;
                    if k == Kind::Float {
                        out.push(TOp::F2I, 0);
                    }
                }
                let ty = self.decls[slot].ty;
                out.push(
                    TOp::Load {
                        slot,
                        arity: args.len(),
                        ty,
                    },
                    1 - args.len() as isize,
                );
                Ok(if ty.is_float() {
                    Kind::Float
                } else {
                    Kind::Int
                })
            }
        }
    }

    fn compile_program(&self, e: &Expr, force_int: bool) -> Result<Program, CompileFail> {
        let mut emit = Emit::new();
        let kind = self.compile(e, &mut emit)?;
        let mut float_result = kind == Kind::Float;
        if force_int && float_result {
            emit.push(TOp::F2I, 0);
            float_result = false;
        }
        Ok(Program {
            ops: emit.ops,
            max_stack: emit.max.max(1),
            float_result,
        })
    }
}

// ---------------------------------------------------------------------------
// Preparation: walk the stmt, assign slots/depths, compile stores
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Prepared {
    decls: Vec<SlotDecl>,
    /// Slot id per Allocate node, keyed by buffer name (unique per tree).
    alloc_slots: BTreeMap<String, usize>,
    stores: Vec<Option<CompiledStore>>,
    max_depth: usize,
    max_stack: usize,
    max_arity: usize,
}

struct PrepareCtx<'a> {
    params: &'a BTreeMap<String, Value>,
    decls: Vec<SlotDecl>,
    slot_ids: BTreeMap<String, usize>,
    alloc_slots: BTreeMap<String, usize>,
    stores: Vec<Option<CompiledStore>>,
    var_depths: BTreeMap<String, usize>,
    depth: usize,
    max_depth: usize,
    max_stack: usize,
    max_arity: usize,
}

impl PrepareCtx<'_> {
    fn add_slot(&mut self, name: &str, ty: ScalarType, writable: bool) -> usize {
        let id = self.decls.len();
        self.decls.push(SlotDecl { ty, writable });
        self.slot_ids.insert(name.to_string(), id);
        id
    }

    fn walk(&mut self, stmt: &Stmt) -> Result<(), RealizeError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.walk(s)?;
                }
                Ok(())
            }
            Stmt::Produce { body, .. } => self.walk(body),
            Stmt::Allocate { name, ty, body, .. } => {
                let prev = self.slot_ids.get(name).copied();
                let id = self.add_slot(name, *ty, true);
                self.alloc_slots.insert(name.clone(), id);
                self.walk(body)?;
                match prev {
                    Some(p) => {
                        self.slot_ids.insert(name.clone(), p);
                    }
                    None => {
                        self.slot_ids.remove(name);
                    }
                }
                Ok(())
            }
            Stmt::For { var, body, .. } => {
                let prev = self.var_depths.insert(var.clone(), self.depth);
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                self.walk(body)?;
                self.depth -= 1;
                match prev {
                    Some(p) => {
                        self.var_depths.insert(var.clone(), p);
                    }
                    None => {
                        self.var_depths.remove(var);
                    }
                }
                Ok(())
            }
            Stmt::Store {
                id,
                buffer,
                indices,
                value,
            } => {
                let slot = self
                    .slot_ids
                    .get(buffer)
                    .copied()
                    .ok_or_else(|| RealizeError::UndefinedFunc(buffer.clone()))?;
                debug_assert!(
                    self.decls[slot].writable,
                    "store to read-only buffer {buffer}"
                );
                let lane_depth = self.depth.saturating_sub(1);
                let compiler = Compiler {
                    var_depths: &self.var_depths,
                    slot_ids: &self.slot_ids,
                    decls: &self.decls,
                    params: self.params,
                };
                let compiled = (|| -> Result<StoreExec, CompileFail> {
                    let mut index_progs = Vec::with_capacity(indices.len());
                    for idx in indices {
                        index_progs.push(compiler.compile_program(idx, true)?);
                    }
                    let value_prog = compiler.compile_program(value, false)?;
                    Ok(StoreExec::Typed(TypedStore {
                        slot,
                        index_progs,
                        value_prog,
                    }))
                })();
                let exec = match compiled {
                    Ok(t) => t,
                    Err(CompileFail::Hard(e)) => return Err(e),
                    Err(CompileFail::Soft) => StoreExec::Fallback(Box::new(FallbackStore {
                        slot,
                        indices: indices.clone(),
                        value: value.clone(),
                        var_depths: self.var_depths.clone(),
                        slots: self.slot_ids.clone(),
                    })),
                };
                if let StoreExec::Typed(t) = &exec {
                    for p in t.index_progs.iter().chain(std::iter::once(&t.value_prog)) {
                        self.max_stack = self.max_stack.max(p.max_stack);
                        for op in &p.ops {
                            if let TOp::Load { arity, .. } = op {
                                self.max_arity = self.max_arity.max(*arity);
                            }
                        }
                    }
                    self.max_arity = self.max_arity.max(t.index_progs.len());
                }
                if self.stores.len() <= *id {
                    self.stores.resize_with(*id + 1, || None);
                }
                self.stores[*id] = Some(CompiledStore { exec, lane_depth });
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Per-thread scratch: lane register files, load offset buffers, and
/// reusable backing storage for `Allocate` nodes (an attach loop re-enters
/// its allocation once per iteration; reusing the heap buffer keeps the
/// allocator off the hot path).
struct Scratch {
    ints: Vec<i64>,
    floats: Vec<f64>,
    idx: Vec<i64>,
    offs: Vec<usize>,
    allocs: BTreeMap<usize, Vec<u8>>,
}

impl Scratch {
    fn new(prepared: &Prepared) -> Scratch {
        let regs = prepared.max_stack.max(1) * MAX_LANES;
        Scratch {
            ints: vec![0; regs],
            floats: vec![0.0; regs],
            idx: vec![0; prepared.max_arity.max(1) * MAX_LANES],
            offs: vec![0; MAX_LANES],
            allocs: BTreeMap::new(),
        }
    }
}

struct Runner<'a> {
    prepared: &'a Prepared,
    params: &'a BTreeMap<String, Value>,
}

/// Evaluate a loop-bound expression to a scalar with the current environment.
fn eval_scalar(e: &Expr, env: &[(String, i64)]) -> Result<i64, RealizeError> {
    Ok(match e {
        Expr::Var(n) | Expr::RVar(n) => env
            .iter()
            .rev()
            .find(|(name, _)| name == n)
            .map(|(_, v)| *v)
            .ok_or_else(|| RealizeError::MissingParam(n.clone()))?,
        Expr::ConstInt(v, _) => *v,
        Expr::ConstFloat(v, _) => *v as i64,
        Expr::Binary(op, a, b) => eval_binop(
            *op,
            Value::Int(eval_scalar(a, env)?),
            Value::Int(eval_scalar(b, env)?),
        )
        .as_i64(),
        Expr::Cmp(op, a, b) => eval_cmp(
            *op,
            Value::Int(eval_scalar(a, env)?),
            Value::Int(eval_scalar(b, env)?),
        )
        .as_i64(),
        Expr::Select(c, t, f) => {
            if eval_scalar(c, env)? != 0 {
                eval_scalar(t, env)?
            } else {
                eval_scalar(f, env)?
            }
        }
        Expr::Cast(ty, inner) => Value::Int(eval_scalar(inner, env)?).cast(*ty).as_i64(),
        other => {
            return Err(RealizeError::MissingParam(format!(
                "unsupported loop bound expression: {other}"
            )))
        }
    })
}

impl Runner<'_> {
    fn run(
        &self,
        stmt: &Stmt,
        binds: &mut BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
        in_parallel: bool,
    ) -> Result<(), RealizeError> {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.run(s, binds, env, vars, scratch, in_parallel)?;
                }
                Ok(())
            }
            Stmt::Produce { body, .. } => self.run(body, binds, env, vars, scratch, in_parallel),
            Stmt::Allocate {
                name,
                ty,
                extents,
                body,
            } => {
                let slot = self.prepared.alloc_slots[name];
                let total: usize = extents.iter().product();
                let needed = total * ty.bytes();
                // Reuse this thread's backing buffer across iterations of the
                // attach loop. Skipping the re-zero is sound because the
                // produce nest lowered into `body` stores every element of
                // the region before anything reads it.
                let data = scratch.allocs.entry(slot).or_default();
                if data.len() != needed {
                    data.clear();
                    data.resize(needed, 0);
                }
                let mut strides = Vec::with_capacity(extents.len());
                let mut stride = 1usize;
                for &e in extents {
                    strides.push(stride);
                    stride *= e;
                }
                binds.0[slot] = Some(SlotBind {
                    ptr: data.as_mut_ptr(),
                    byte_len: needed,
                    extents: extents.clone(),
                    strides,
                });
                let result = self.run(body, binds, env, vars, scratch, in_parallel);
                binds.0[slot] = None;
                result
            }
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let min = eval_scalar(min, env)?;
                let extent = eval_scalar(extent, env)?.max(0);
                let depth = env.len();
                let batch = match kind {
                    LoopKind::Vectorized { width } => (*width).clamp(1, MAX_LANES),
                    _ => 1,
                };
                match kind {
                    LoopKind::Parallel { threads } if !in_parallel && extent > 1 => {
                        let avail = if *threads > 0 {
                            *threads
                        } else {
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1)
                        };
                        let workers = avail.min(extent as usize);
                        if workers <= 1 {
                            return self.run_serial_loop(
                                var,
                                min,
                                extent,
                                batch,
                                body,
                                binds,
                                env,
                                vars,
                                scratch,
                                in_parallel,
                            );
                        }
                        let chunk = (extent as usize).div_ceil(workers);
                        let errors = std::sync::Mutex::new(Vec::new());
                        std::thread::scope(|scope| {
                            for w in 0..workers {
                                let start = min + (w * chunk) as i64;
                                let end = (min + extent).min(start + chunk as i64);
                                if start >= end {
                                    continue;
                                }
                                let mut binds = binds.clone();
                                let mut env = env.clone();
                                let mut vars = vars.to_vec();
                                let errors = &errors;
                                let body = &**body;
                                let var = var.as_str();
                                scope.spawn(move || {
                                    let mut scratch = Scratch::new(self.prepared);
                                    env.push((var.to_string(), 0));
                                    for i in start..end {
                                        env[depth].1 = i;
                                        vars[depth] = i;
                                        if let Err(e) = self.run(
                                            body,
                                            &mut binds,
                                            &mut env,
                                            &mut vars,
                                            &mut scratch,
                                            true,
                                        ) {
                                            errors.lock().expect("error mutex").push(e);
                                            return;
                                        }
                                    }
                                });
                            }
                        });
                        let mut errs = errors.into_inner().expect("error mutex");
                        match errs.pop() {
                            Some(e) => Err(e),
                            None => Ok(()),
                        }
                    }
                    _ => self.run_serial_loop(
                        var,
                        min,
                        extent,
                        batch,
                        body,
                        binds,
                        env,
                        vars,
                        scratch,
                        in_parallel,
                    ),
                }
            }
            Stmt::Store { id, .. } => {
                // A store not directly owned by a loop (e.g. beside an
                // Allocate in a Block): execute a single element at the
                // current environment.
                self.exec_store(*id, 1, binds, vars, scratch)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_serial_loop(
        &self,
        var: &str,
        min: i64,
        extent: i64,
        batch: usize,
        body: &Stmt,
        binds: &mut BindTable,
        env: &mut Vec<(String, i64)>,
        vars: &mut [i64],
        scratch: &mut Scratch,
        in_parallel: bool,
    ) -> Result<(), RealizeError> {
        let depth = env.len();
        env.push((var.to_string(), 0));
        let result = (|| {
            if let Stmt::Store { id, .. } = body {
                // Innermost loop over a single store: run in lane batches.
                let mut i = min;
                let end = min + extent;
                while i < end {
                    let n = batch.min((end - i) as usize);
                    env[depth].1 = i;
                    vars[depth] = i;
                    self.exec_store(*id, n, binds, vars, scratch)?;
                    i += n as i64;
                }
                Ok(())
            } else {
                for i in min..min + extent {
                    env[depth].1 = i;
                    vars[depth] = i;
                    self.run(body, binds, env, vars, scratch, in_parallel)?;
                }
                Ok(())
            }
        })();
        env.pop();
        result
    }

    fn exec_store(
        &self,
        id: usize,
        n: usize,
        binds: &BindTable,
        vars: &[i64],
        scratch: &mut Scratch,
    ) -> Result<(), RealizeError> {
        let store = self.prepared.stores[id].as_ref().expect("store compiled");
        match &store.exec {
            StoreExec::Typed(t) => {
                self.exec_typed(t, store.lane_depth, n, binds, vars, scratch);
                Ok(())
            }
            StoreExec::Fallback(f) => self.exec_fallback(f, store.lane_depth, n, binds, vars),
        }
    }

    fn exec_typed(
        &self,
        t: &TypedStore,
        lane_depth: usize,
        n: usize,
        binds: &BindTable,
        vars: &[i64],
        scratch: &mut Scratch,
    ) {
        // Evaluate the index programs, parking each result in scratch.idx.
        let arity = t.index_progs.len();
        for (d, prog) in t.index_progs.iter().enumerate() {
            run_program(prog, lane_depth, n, binds, vars, scratch);
            for l in 0..n {
                scratch.idx[d * MAX_LANES + l] = scratch.ints[l];
            }
        }
        run_program(&t.value_prog, lane_depth, n, binds, vars, scratch);

        let bind = binds.0[t.slot].as_ref().expect("store target bound");
        // Destination offsets (stores are in-range by loop construction).
        for l in 0..n {
            let mut off = 0usize;
            for d in 0..arity {
                let i = scratch.idx[d * MAX_LANES + l];
                debug_assert!(
                    i >= 0 && (i as usize) < bind.extents[d],
                    "store index {i} out of range 0..{} (dim {d})",
                    bind.extents[d]
                );
                off += (i as usize) * bind.strides[d];
            }
            scratch.offs[l] = off;
        }
        let ty = self.prepared.decls[t.slot].ty;
        let offs = &scratch.offs;
        // Monomorphized store loops: cast exactly like `write_scalar`.
        if t.value_prog.float_result {
            let vals = &scratch.floats[..MAX_LANES];
            match ty {
                ScalarType::UInt8 => {
                    for l in 0..n {
                        bind.write(offs[l], &[(vals[l] as i64) as u8]);
                    }
                }
                ScalarType::UInt16 => {
                    for l in 0..n {
                        bind.write(offs[l] * 2, &((vals[l] as i64) as u16).to_le_bytes());
                    }
                }
                ScalarType::UInt32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as i64) as u32).to_le_bytes());
                    }
                }
                ScalarType::UInt64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &((vals[l] as i64) as u64).to_le_bytes());
                    }
                }
                ScalarType::Int32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as i64) as i32).to_le_bytes());
                    }
                }
                ScalarType::Float32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as f32).to_le_bytes());
                    }
                }
                ScalarType::Float64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &vals[l].to_le_bytes());
                    }
                }
            }
        } else {
            let vals = &scratch.ints[..MAX_LANES];
            match ty {
                ScalarType::UInt8 => {
                    for l in 0..n {
                        bind.write(offs[l], &[vals[l] as u8]);
                    }
                }
                ScalarType::UInt16 => {
                    for l in 0..n {
                        bind.write(offs[l] * 2, &(vals[l] as u16).to_le_bytes());
                    }
                }
                ScalarType::UInt32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as u32).to_le_bytes());
                    }
                }
                ScalarType::UInt64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &(vals[l] as u64).to_le_bytes());
                    }
                }
                ScalarType::Int32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &(vals[l] as i32).to_le_bytes());
                    }
                }
                ScalarType::Float32 => {
                    for l in 0..n {
                        bind.write(offs[l] * 4, &((vals[l] as f64) as f32).to_le_bytes());
                    }
                }
                ScalarType::Float64 => {
                    for l in 0..n {
                        bind.write(offs[l] * 8, &(vals[l] as f64).to_le_bytes());
                    }
                }
            }
        }
    }

    fn exec_fallback(
        &self,
        f: &FallbackStore,
        lane_depth: usize,
        n: usize,
        binds: &BindTable,
        vars: &[i64],
    ) -> Result<(), RealizeError> {
        let base = vars[lane_depth];
        let mut vars = vars.to_vec();
        for l in 0..n {
            vars[lane_depth] = base + l as i64;
            let src = FallbackSources {
                store: f,
                binds,
                prepared: self.prepared,
                params: self.params,
                vars: &vars,
            };
            let mut idx = Vec::with_capacity(f.indices.len());
            for e in &f.indices {
                idx.push(eval_expr(e, &src)?.as_i64());
            }
            let v = eval_expr(&f.value, &src)?;
            let bind = binds.0[f.slot].as_ref().expect("store target bound");
            let ty = self.prepared.decls[f.slot].ty;
            let mut off = 0usize;
            for (d, &i) in idx.iter().enumerate() {
                let i = i.clamp(0, bind.extents[d] as i64 - 1) as usize;
                off += i * bind.strides[d];
            }
            let bytes = ty.bytes();
            let mut tmp = [0u8; 8];
            crate::buffer::write_scalar(ty, v, &mut tmp[..bytes]);
            bind.write(off * bytes, &tmp[..bytes]);
        }
        Ok(())
    }
}

/// Sources of the fallback store path (stores whose types cannot be inferred
/// statically): variables resolve through the store's recorded loop depths,
/// loads go through the slot table with clamping — evaluation itself is the
/// shared [`crate::eval`] evaluator, so the fallback cannot drift from the
/// other backends.
struct FallbackSources<'a> {
    store: &'a FallbackStore,
    binds: &'a BindTable,
    prepared: &'a Prepared,
    params: &'a BTreeMap<String, Value>,
    vars: &'a [i64],
}

impl FallbackSources<'_> {
    fn load(&self, slot: usize, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let bind = self.binds.0[slot]
            .as_ref()
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))?;
        let mut off = 0usize;
        for (d, &i) in indices.iter().enumerate() {
            let i = i.clamp(0, bind.extents[d] as i64 - 1) as usize;
            off += i * bind.strides[d];
        }
        let ty = self.prepared.decls[slot].ty;
        let bytes = ty.bytes();
        Ok(crate::buffer::read_scalar(
            ty,
            &bind.data()[off * bytes..off * bytes + bytes],
        ))
    }
}

impl EvalSources for FallbackSources<'_> {
    fn var(&self, name: &str) -> Option<i64> {
        self.store.var_depths.get(name).map(|d| self.vars[*d])
    }
    fn param(&self, name: &str) -> Option<Value> {
        self.params.get(name).copied()
    }
    fn load_image(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let slot = self
            .store
            .slots
            .get(name)
            .copied()
            .ok_or_else(|| RealizeError::MissingInput(name.to_string()))?;
        self.load(slot, name, indices)
    }
    fn load_func(&self, name: &str, indices: &[i64]) -> Result<Value, RealizeError> {
        let slot = self
            .store
            .slots
            .get(name)
            .copied()
            .ok_or_else(|| RealizeError::UndefinedFunc(name.to_string()))?;
        self.load(slot, name, indices)
    }
}

/// Run one typed program over `n` lanes; the result lands in register 0 of
/// the matching scratch array.
fn run_program(
    prog: &Program,
    lane_depth: usize,
    n: usize,
    binds: &BindTable,
    vars: &[i64],
    scratch: &mut Scratch,
) {
    let mut sp = 0usize;
    let ints = &mut scratch.ints;
    let floats = &mut scratch.floats;
    let offs = &mut scratch.offs;
    for op in &prog.ops {
        match op {
            TOp::ConstI(v) => {
                for l in 0..n {
                    ints[sp * MAX_LANES + l] = *v;
                }
                sp += 1;
            }
            TOp::ConstF(v) => {
                for l in 0..n {
                    floats[sp * MAX_LANES + l] = *v;
                }
                sp += 1;
            }
            TOp::Var(depth) => {
                let base = vars[*depth];
                if *depth == lane_depth {
                    for l in 0..n {
                        ints[sp * MAX_LANES + l] = base + l as i64;
                    }
                } else {
                    for l in 0..n {
                        ints[sp * MAX_LANES + l] = base;
                    }
                }
                sp += 1;
            }
            TOp::I2F => {
                let s = (sp - 1) * MAX_LANES;
                for l in 0..n {
                    floats[s + l] = ints[s + l] as f64;
                }
            }
            TOp::F2I => {
                let s = (sp - 1) * MAX_LANES;
                for l in 0..n {
                    ints[s + l] = floats[s + l] as i64;
                }
            }
            TOp::BinII(op) => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                match op {
                    BinOp::Add => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_add(ints[b + l]);
                        }
                    }
                    BinOp::Sub => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_sub(ints[b + l]);
                        }
                    }
                    BinOp::Mul => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_mul(ints[b + l]);
                        }
                    }
                    BinOp::Div => {
                        for l in 0..n {
                            let y = ints[b + l];
                            ints[a + l] = if y == 0 { 0 } else { ints[a + l] / y };
                        }
                    }
                    BinOp::Mod => {
                        for l in 0..n {
                            let y = ints[b + l];
                            ints[a + l] = if y == 0 { 0 } else { ints[a + l] % y };
                        }
                    }
                    BinOp::Shr => {
                        for l in 0..n {
                            ints[a + l] =
                                ((ints[a + l] as u64) >> (ints[b + l] as u64 & 63)) as i64;
                        }
                    }
                    BinOp::Shl => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].wrapping_shl(ints[b + l] as u32);
                        }
                    }
                    BinOp::And => {
                        for l in 0..n {
                            ints[a + l] &= ints[b + l];
                        }
                    }
                    BinOp::Or => {
                        for l in 0..n {
                            ints[a + l] |= ints[b + l];
                        }
                    }
                    BinOp::Xor => {
                        for l in 0..n {
                            ints[a + l] ^= ints[b + l];
                        }
                    }
                    BinOp::Min => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].min(ints[b + l]);
                        }
                    }
                    BinOp::Max => {
                        for l in 0..n {
                            ints[a + l] = ints[a + l].max(ints[b + l]);
                        }
                    }
                }
                sp -= 1;
            }
            TOp::BinFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    floats[a + l] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Mod => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("bitwise float ops use BinBitFF"),
                    };
                }
                sp -= 1;
            }
            TOp::BinBitFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    // Exact `eval_binop` float-branch semantics.
                    ints[a + l] = match op {
                        BinOp::Shr => (x as i64) >> (y as i64),
                        BinOp::Shl => (x as i64) << (y as i64),
                        BinOp::And => (x as i64) & (y as i64),
                        BinOp::Or => (x as i64) | (y as i64),
                        BinOp::Xor => (x as i64) ^ (y as i64),
                        _ => unreachable!("arithmetic float ops use BinFF"),
                    };
                }
                sp -= 1;
            }
            TOp::CmpII(op) => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let (x, y) = (ints[a + l], ints[b + l]);
                    ints[a + l] = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    } as i64;
                }
                sp -= 1;
            }
            TOp::CmpFF {
                op,
                promote_a,
                promote_b,
            } => {
                let (a, b) = ((sp - 2) * MAX_LANES, (sp - 1) * MAX_LANES);
                for l in 0..n {
                    let x = if *promote_a {
                        ints[a + l] as f64
                    } else {
                        floats[a + l]
                    };
                    let y = if *promote_b {
                        ints[b + l] as f64
                    } else {
                        floats[b + l]
                    };
                    ints[a + l] = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    } as i64;
                }
                sp -= 1;
            }
            TOp::CastI(ty) => {
                let s = (sp - 1) * MAX_LANES;
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u8) as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u16) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as u32) as i64;
                        }
                    }
                    ScalarType::UInt64 => {} // Value::cast keeps the i64 bits
                    ScalarType::Int32 => {
                        for l in 0..n {
                            ints[s + l] = (ints[s + l] as i32) as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            floats[s + l] = (ints[s + l] as f64) as f32 as f64;
                        }
                    }
                    ScalarType::Float64 => {
                        for l in 0..n {
                            floats[s + l] = ints[s + l] as f64;
                        }
                    }
                }
            }
            TOp::CastF(ty) => {
                let s = (sp - 1) * MAX_LANES;
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u8) as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u16) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as u32) as i64;
                        }
                    }
                    ScalarType::UInt64 => {
                        for l in 0..n {
                            ints[s + l] = floats[s + l] as i64;
                        }
                    }
                    ScalarType::Int32 => {
                        for l in 0..n {
                            ints[s + l] = ((floats[s + l] as i64) as i32) as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            floats[s + l] = (floats[s + l] as f32) as f64;
                        }
                    }
                    ScalarType::Float64 => {}
                }
            }
            TOp::Sel {
                cond_float,
                branches_float,
            } => {
                let (c, t, f) = (
                    (sp - 3) * MAX_LANES,
                    (sp - 2) * MAX_LANES,
                    (sp - 1) * MAX_LANES,
                );
                for l in 0..n {
                    let cond = if *cond_float {
                        floats[c + l] != 0.0
                    } else {
                        ints[c + l] != 0
                    };
                    if *branches_float {
                        floats[c + l] = if cond { floats[t + l] } else { floats[f + l] };
                    } else {
                        ints[c + l] = if cond { ints[t + l] } else { ints[f + l] };
                    }
                }
                sp -= 2;
            }
            TOp::Call(call, arity) => {
                let base = (sp - arity) * MAX_LANES;
                for l in 0..n {
                    let a0 = floats[base + l];
                    floats[base + l] = match call {
                        ExternCall::Sqrt => a0.sqrt(),
                        ExternCall::Floor => a0.floor(),
                        ExternCall::Ceil => a0.ceil(),
                        ExternCall::Abs => a0.abs(),
                        ExternCall::Exp => a0.exp(),
                        ExternCall::Log => a0.ln(),
                        ExternCall::Pow => a0.powf(floats[base + MAX_LANES + l]),
                    };
                }
                sp = sp - arity + 1;
            }
            TOp::Load { slot, arity, ty } => {
                let bind = binds.0[*slot].as_ref().expect("load source bound");
                let base = sp - arity;
                for l in 0..n {
                    let mut off = 0usize;
                    for d in 0..*arity {
                        let i = ints[(base + d) * MAX_LANES + l]
                            .clamp(0, bind.extents[d] as i64 - 1)
                            as usize;
                        off += i * bind.strides[d];
                    }
                    offs[l] = off;
                }
                let data = bind.data();
                let out = base * MAX_LANES;
                // Monomorphized load loops, mirroring `read_scalar`.
                match ty {
                    ScalarType::UInt8 => {
                        for l in 0..n {
                            ints[out + l] = data[offs[l]] as i64;
                        }
                    }
                    ScalarType::UInt16 => {
                        for l in 0..n {
                            let o = offs[l] * 2;
                            ints[out + l] = u16::from_le_bytes([data[o], data[o + 1]]) as i64;
                        }
                    }
                    ScalarType::UInt32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            ints[out + l] =
                                u32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::UInt64 => {
                        for l in 0..n {
                            let o = offs[l] * 8;
                            ints[out + l] =
                                u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::Int32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            ints[out + l] =
                                i32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as i64;
                        }
                    }
                    ScalarType::Float32 => {
                        for l in 0..n {
                            let o = offs[l] * 4;
                            floats[out + l] =
                                f32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"))
                                    as f64;
                        }
                    }
                    ScalarType::Float64 => {
                        for l in 0..n {
                            let o = offs[l] * 8;
                            floats[out + l] =
                                f64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
                        }
                    }
                }
                sp = base + 1;
            }
        }
    }
    debug_assert_eq!(sp, 1, "program must leave exactly one register");
}

// ---------------------------------------------------------------------------
// Entry points: prepare (compile once) / run (execute many)
// ---------------------------------------------------------------------------

/// A lowered statement compiled for repeated execution: every store's typed
/// lane programs, the slot table (output, images, roots, scoped allocations)
/// and the loop-nest metadata. Building the plan is the expensive step;
/// [`run`] only binds buffers and walks the loops.
///
/// The plan bakes scalar-parameter values and buffer element types into its
/// programs, so it is only valid for the binding signature it was prepared
/// against — [`crate::cache::CacheKey`] enforces this for cached plans.
#[derive(Debug)]
pub struct ExecPlan {
    stmt: Stmt,
    prepared: Prepared,
    output_ty: ScalarType,
    image_names: Vec<String>,
    root_names: Vec<String>,
}

/// Compile a lowered statement into an [`ExecPlan`].
///
/// `images` and `roots` declare the read-only source buffers by name and
/// element type, in the exact order [`run`] will bind them; `output_name` is
/// bound writable with element type `output_ty`. Slot registration order
/// mirrors the interpreter's source resolution: images first, then roots
/// (which shadow same-named images), with the output always addressable under
/// its own name.
///
/// # Errors
/// Returns an error if a referenced buffer or parameter is missing.
pub fn prepare(
    stmt: Stmt,
    output_name: &str,
    output_ty: ScalarType,
    images: &[(String, ScalarType)],
    roots: &[(String, ScalarType)],
    params: &BTreeMap<String, Value>,
) -> Result<ExecPlan, RealizeError> {
    let mut ctx = PrepareCtx {
        params,
        decls: Vec::new(),
        slot_ids: BTreeMap::new(),
        alloc_slots: BTreeMap::new(),
        stores: Vec::new(),
        var_depths: BTreeMap::new(),
        depth: 0,
        max_depth: 0,
        max_stack: 1,
        max_arity: 1,
    };
    ctx.add_slot(output_name, output_ty, true);
    for (name, ty) in images {
        ctx.add_slot(name, *ty, false);
    }
    for (name, ty) in roots {
        ctx.add_slot(name, *ty, false);
    }
    ctx.walk(&stmt)?;
    Ok(ExecPlan {
        stmt,
        prepared: Prepared {
            decls: ctx.decls,
            alloc_slots: ctx.alloc_slots,
            stores: ctx.stores,
            max_depth: ctx.max_depth,
            max_stack: ctx.max_stack,
            max_arity: ctx.max_arity,
        },
        output_ty,
        image_names: images.iter().map(|(n, _)| n.clone()).collect(),
        root_names: roots.iter().map(|(n, _)| n.clone()).collect(),
    })
}

/// Execute a prepared plan against the given buffers: the per-call half of
/// the compile/run split. Binds the output writable plus the declared images
/// and roots read-only (`Allocate` nodes bind their scratch buffers during
/// execution), then walks the loop nest.
///
/// # Errors
/// Returns an error if a declared image or root buffer is not provided.
pub fn run(
    plan: &ExecPlan,
    output: &mut Buffer,
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
) -> Result<(), RealizeError> {
    debug_assert_eq!(
        output.scalar_type(),
        plan.output_ty,
        "output buffer type must match the prepared plan"
    );
    let bind_of = |b: &Buffer| SlotBind {
        ptr: b.bytes().as_ptr() as *mut u8,
        byte_len: b.bytes().len(),
        extents: b.extents().to_vec(),
        strides: b.strides().to_vec(),
    };
    let mut binds: Vec<Option<SlotBind>> = Vec::with_capacity(plan.prepared.decls.len());
    binds.push(Some(SlotBind {
        ptr: output.bytes_mut().as_mut_ptr(),
        byte_len: output.bytes().len(),
        extents: output.extents().to_vec(),
        strides: output.strides().to_vec(),
    }));
    for name in &plan.image_names {
        let buf = images
            .get(name)
            .ok_or_else(|| RealizeError::MissingInput(name.clone()))?;
        binds.push(Some(bind_of(buf)));
    }
    for name in &plan.root_names {
        let buf = roots
            .get(name)
            .ok_or_else(|| RealizeError::UndefinedFunc(name.clone()))?;
        binds.push(Some(bind_of(buf)));
    }
    // Allocate slots bind at runtime.
    binds.resize(plan.prepared.decls.len(), None);

    let runner = Runner {
        prepared: &plan.prepared,
        params,
    };
    let mut binds = BindTable(binds);
    let mut env: Vec<(String, i64)> = Vec::new();
    let mut vars = vec![0i64; plan.prepared.max_depth.max(1)];
    let mut scratch = Scratch::new(&plan.prepared);
    runner.run(
        &plan.stmt,
        &mut binds,
        &mut env,
        &mut vars,
        &mut scratch,
        false,
    )
}

/// One-shot convenience: [`prepare`] + [`run`] against the given buffers.
///
/// # Errors
/// Returns an error if a referenced buffer or parameter is missing.
pub fn execute(
    stmt: &Stmt,
    output_name: &str,
    output: &mut Buffer,
    images: &BTreeMap<String, &Buffer>,
    roots: &BTreeMap<String, Buffer>,
    params: &BTreeMap<String, Value>,
) -> Result<(), RealizeError> {
    let image_decls: Vec<(String, ScalarType)> = images
        .iter()
        .map(|(n, b)| (n.clone(), b.scalar_type()))
        .collect();
    let root_decls: Vec<(String, ScalarType)> = roots
        .iter()
        .map(|(n, b)| (n.clone(), b.scalar_type()))
        .collect();
    let plan = prepare(
        stmt.clone(),
        output_name,
        output.scalar_type(),
        &image_decls,
        &root_decls,
        params,
    )?;
    run(&plan, output, images, roots, params)
}
