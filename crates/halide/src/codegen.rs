//! Emission of genuine Halide C++ source text from a [`Pipeline`].
//!
//! This reproduces the paper's final artifact (Fig. 2(h) and Fig. 4(c)): a
//! standalone C++ translation unit that declares the `Var`s, `ImageParam`s,
//! `Func`s and `RDom`s of the lifted stencil and compiles it to a file with
//! `compile_to_file`.

use crate::expr::Expr;
use crate::func::{Func, Pipeline};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Options controlling the emitted source.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Base name passed to `compile_to_file`.
    pub output_name: String,
    /// Emit a `main` function (otherwise just the pipeline-building body).
    pub emit_main: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            output_name: "halide_out_0".to_string(),
            emit_main: true,
        }
    }
}

/// Generate Halide C++ source for the pipeline.
pub fn generate_halide_source(pipeline: &Pipeline, options: &CodegenOptions) -> String {
    let mut out = String::new();
    out.push_str("#include <Halide.h>\n#include <vector>\n\n");
    out.push_str("using namespace std;\nusing namespace Halide;\n\n");
    if options.emit_main {
        out.push_str("int main(){\n");
    }

    // Collect every pure/reduction variable used by any func.
    let mut vars: BTreeSet<String> = BTreeSet::new();
    for func in pipeline.funcs.values() {
        for v in &func.vars {
            vars.insert(v.clone());
        }
    }
    for v in &vars {
        let _ = writeln!(out, "  Var {v};");
    }

    for image in pipeline.images.values() {
        let _ = writeln!(
            out,
            "  ImageParam {}({},{});",
            image.name,
            image.ty.halide_ctor(),
            image.dims
        );
    }

    // Emit producer funcs first, output last.
    let mut order: Vec<&Func> = pipeline
        .funcs
        .values()
        .filter(|f| f.name != pipeline.output)
        .collect();
    order.push(pipeline.output_func());
    for func in &order {
        let _ = writeln!(out, "  Func {};", func.name);
    }
    for func in &order {
        emit_func_definitions(&mut out, func);
    }

    // Arguments: every image parameter, in name order.
    out.push_str("  vector<Argument> args;\n");
    for image in pipeline.images.values() {
        let _ = writeln!(out, "  args.push_back({});", image.name);
    }
    let _ = writeln!(
        out,
        "  {}.compile_to_file(\"{}\",args);",
        pipeline.output, options.output_name
    );
    if options.emit_main {
        out.push_str("  return 0;\n}\n");
    }
    out
}

fn emit_func_definitions(out: &mut String, func: &Func) {
    if let Some(pure_def) = &func.pure_def {
        let args = func.vars.join(",");
        let _ = writeln!(
            out,
            "  {}({}) =\n    {};",
            func.name,
            args,
            render(pure_def)
        );
    }
    for update in &func.updates {
        // RDom declaration. If every dimension spans the full extent of one
        // image parameter, emit the idiomatic `RDom r(image);` form.
        let image_span = update.rdom.dims.iter().all(|(_, min, extent)| {
            matches!(min, Expr::ConstInt(0, _)) && matches!(extent, Expr::Param(..))
        });
        let rdom_var = update.rdom.name.replace('.', "_");
        if image_span {
            if let Some(Expr::Param(name, _)) = update.rdom.dims.first().map(|d| &d.2) {
                let image = name.split('.').next().unwrap_or(name);
                let _ = writeln!(out, "  RDom {rdom_var}({image});");
            }
        } else {
            let mut spec = String::new();
            for (i, (_, min, extent)) in update.rdom.dims.iter().enumerate() {
                if i > 0 {
                    spec.push_str(", ");
                }
                let _ = write!(spec, "{}, {}", render(min), render(extent));
            }
            let _ = writeln!(out, "  RDom {rdom_var}({spec});");
        }
        let lhs: Vec<String> = update
            .lhs
            .iter()
            .map(|e| render_with_rdom(e, &update.rdom.name, &rdom_var))
            .collect();
        let _ = writeln!(
            out,
            "  {}({}) =\n    {};",
            func.name,
            lhs.join(","),
            render_with_rdom(&update.value, &update.rdom.name, &rdom_var)
        );
    }
}

fn render(e: &Expr) -> String {
    e.to_string()
}

fn render_with_rdom(e: &Expr, rdom_name: &str, rdom_var: &str) -> String {
    // RDom variables are printed as `r_0.x`; Halide C++ uses `r_0.x` as well,
    // so only the declaration name needs sanitizing. Replace the dotted name
    // prefix when the declaration variable differs.
    let text = e.to_string();
    if rdom_name == rdom_var {
        text
    } else {
        text.replace(rdom_name, rdom_var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::func::{ImageParam, RDom, UpdateDef};
    use crate::types::ScalarType;

    #[test]
    fn blur_source_matches_paper_shape() {
        // output_1(x_0,x_1) = cast<uint8_t>(((2 + 2*cast<uint32_t>(input_1(x_0+1,x_1+1))
        //    + cast<uint32_t>(input_1(x_0,x_1+1)) + cast<uint32_t>(input_1(x_0+2,x_1+1))) >> 2) & 255)
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let tap = |dx: i64| {
            Expr::cast(
                ScalarType::UInt32,
                Expr::Image(
                    "input_1".into(),
                    vec![
                        Expr::add(x.clone(), Expr::int(dx)),
                        Expr::add(y.clone(), Expr::int(1)),
                    ],
                ),
            )
        };
        let sum = Expr::add(
            Expr::add(
                Expr::add(Expr::uint(2), Expr::mul(Expr::uint(2), tap(1))),
                tap(0),
            ),
            tap(2),
        );
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Shr,
                    sum,
                    Expr::cast(ScalarType::UInt32, Expr::uint(2)),
                ),
                Expr::int(255),
            ),
        );
        let p = Pipeline::new(
            Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("input_1", ScalarType::UInt8, 2)],
        );
        let src = generate_halide_source(&p, &CodegenOptions::default());
        assert!(src.contains("#include <Halide.h>"));
        assert!(src.contains("Var x_0;"));
        assert!(src.contains("ImageParam input_1(UInt(8),2);"));
        assert!(src.contains("Func output_1;"));
        assert!(src.contains("output_1(x_0,x_1)"));
        assert!(src.contains("cast<uint8_t>"));
        assert!(src.contains("input_1((x_0 + 2), (x_1 + 1))"));
        assert!(src.contains("compile_to_file(\"halide_out_0\",args)"));
        assert!(src.contains("args.push_back(input_1);"));
    }

    #[test]
    fn histogram_source_declares_rdom_over_image() {
        let img = ImageParam::new("input_1", ScalarType::UInt8, 2);
        let rdom = RDom::over_image("r_0", &img);
        let access = Expr::Image(
            "input_1".into(),
            vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
        );
        let update = UpdateDef {
            lhs: vec![access.clone()],
            value: Expr::cast(
                ScalarType::UInt64,
                Expr::add(Expr::FuncRef("output".into(), vec![access]), Expr::int(1)),
            ),
            rdom,
        };
        let f =
            Func::pure("output", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
        let p = Pipeline::new(f, vec![img]);
        let src = generate_halide_source(
            &p,
            &CodegenOptions {
                output_name: "hist".into(),
                emit_main: false,
            },
        );
        assert!(src.contains("RDom r_0(input_1);"));
        assert!(src.contains("output(input_1(r_0.x, r_0.y))"));
        assert!(src.contains("compile_to_file(\"hist\""));
        assert!(!src.contains("int main"));
    }
}
