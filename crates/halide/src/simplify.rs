//! Algebraic simplification of DSL expressions.
//!
//! Lifted expressions carry artifacts of the legacy instruction selection:
//! chains of widening casts, additions of zero produced by cancelled
//! sliding-window updates, multiplications by one from normalized weights, and
//! selects whose condition is a constant. The simplifier removes those without
//! changing the computed values, which makes the emitted Halide source closer
//! to what a programmer would have written and shrinks the interpreted
//! expression the realizer executes.
//!
//! Simplification is *value-preserving*: `simplify(e)` evaluates to exactly
//! the same value as `e` for every assignment of the free variables (this is
//! checked by property tests in `tests/prop_simplify.rs`).

use crate::expr::{eval_binop, eval_cmp, BinOp, Expr};
use crate::func::{Func, Pipeline, UpdateDef};
use crate::types::{ScalarType, Value};

/// Simplify an expression, returning a value-equivalent expression with no
/// more nodes than the input.
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Cast(ty, inner) => simplify_cast(*ty, simplify(inner)),
        Expr::Binary(op, a, b) => simplify_binary(*op, simplify(a), simplify(b)),
        Expr::Cmp(op, a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (constant_of(&a), constant_of(&b)) {
                (Some(x), Some(y)) => from_value(eval_cmp(*op, x, y), ScalarType::Int32),
                _ => Expr::Cmp(*op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Select(c, t, f) => {
            let (c, t, f) = (simplify(c), simplify(t), simplify(f));
            match constant_of(&c) {
                Some(v) if v.is_true() => t,
                Some(_) => f,
                None if t == f => t,
                None => Expr::Select(Box::new(c), Box::new(t), Box::new(f)),
            }
        }
        Expr::Call(call, args) => Expr::Call(*call, args.iter().map(simplify).collect()),
        Expr::Image(name, args) => Expr::Image(name.clone(), args.iter().map(simplify).collect()),
        Expr::FuncRef(name, args) => {
            Expr::FuncRef(name.clone(), args.iter().map(simplify).collect())
        }
        other => other.clone(),
    }
}

/// Simplify every definition of every func in a pipeline.
pub fn simplify_pipeline(pipeline: &Pipeline) -> Pipeline {
    let mut out = pipeline.clone();
    for func in out.funcs.values_mut() {
        *func = simplify_func(func);
    }
    out
}

/// Simplify the pure and update definitions of a func.
pub fn simplify_func(func: &Func) -> Func {
    let mut out = func.clone();
    out.pure_def = out.pure_def.as_ref().map(simplify);
    out.updates = out
        .updates
        .iter()
        .map(|u| UpdateDef {
            lhs: u.lhs.iter().map(simplify).collect(),
            value: simplify(&u.value),
            rdom: u.rdom.clone(),
        })
        .collect();
    out
}

fn constant_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::ConstInt(v, _) => Some(Value::Int(*v)),
        Expr::ConstFloat(v, _) => Some(Value::Float(*v)),
        _ => None,
    }
}

fn from_value(v: Value, ty: ScalarType) -> Expr {
    match v {
        Value::Int(i) => Expr::ConstInt(i, ty),
        Value::Float(f) => Expr::ConstFloat(f, ty),
    }
}

fn is_int_zero(e: &Expr) -> bool {
    matches!(e, Expr::ConstInt(0, _))
}

fn is_int_one(e: &Expr) -> bool {
    matches!(e, Expr::ConstInt(1, _))
}

fn simplify_cast(ty: ScalarType, inner: Expr) -> Expr {
    // Fold casts of constants immediately.
    if let Some(v) = constant_of(&inner) {
        return from_value(v.cast(ty), ty);
    }
    if let Expr::Cast(inner_ty, deepest) = &inner {
        // A widening cast of a widening cast collapses to the outer cast as
        // long as the inner cast cannot have discarded bits that the outer
        // cast would keep (monotone non-narrowing chains), or the two casts
        // are identical.
        let widening_chain = !inner_ty.is_float()
            && !ty.is_float()
            && inner_ty.bytes() <= ty.bytes()
            && inner_cast_is_exact(deepest, *inner_ty);
        if *inner_ty == ty || widening_chain {
            return Expr::Cast(ty, deepest.clone());
        }
    }
    Expr::Cast(ty, Box::new(inner))
}

/// Returns `true` when casting `e` to `ty` cannot lose information because the
/// value of `e` is already known to fit (an image load of a narrower unsigned
/// type, or a nested cast to a type no wider than `ty`).
fn inner_cast_is_exact(e: &Expr, ty: ScalarType) -> bool {
    match e {
        Expr::Image(..) => !ty.is_float(),
        Expr::Cast(t, _) => !t.is_float() && t.bytes() <= ty.bytes(),
        Expr::ConstInt(v, _) => *v >= 0 && (*v as u64) <= mask_of(ty),
        _ => false,
    }
}

fn mask_of(ty: ScalarType) -> u64 {
    match ty.bytes() {
        1 => u8::MAX as u64,
        2 => u16::MAX as u64,
        4 => u32::MAX as u64,
        _ => u64::MAX,
    }
}

fn simplify_binary(op: BinOp, a: Expr, b: Expr) -> Expr {
    // Constant folding.
    if let (Some(x), Some(y)) = (constant_of(&a), constant_of(&b)) {
        let float = matches!(a, Expr::ConstFloat(..)) || matches!(b, Expr::ConstFloat(..));
        let ty = if float {
            ScalarType::Float64
        } else {
            ScalarType::Int32
        };
        return from_value(eval_binop(op, x, y), ty);
    }
    match op {
        // x + 0 = 0 + x = x;  x - 0 = x
        BinOp::Add if is_int_zero(&a) => b,
        BinOp::Add | BinOp::Sub if is_int_zero(&b) => a,
        // x * 1 = 1 * x = x;  x * 0 = 0 * x = 0 (integer only: 0.0 * NaN != 0)
        BinOp::Mul if is_int_one(&a) => b,
        BinOp::Mul if is_int_one(&b) => a,
        BinOp::Mul if is_int_zero(&a) && !contains_float(&b) => a,
        BinOp::Mul if is_int_zero(&b) && !contains_float(&a) => b,
        // x >> 0 = x << 0 = x
        BinOp::Shr | BinOp::Shl if is_int_zero(&b) => a,
        // x / 1 = x
        BinOp::Div if is_int_one(&b) => a,
        // min(x, x) = max(x, x) = x
        BinOp::Min | BinOp::Max if a == b => a,
        _ => Expr::Binary(op, Box::new(a), Box::new(b)),
    }
}

fn contains_float(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if matches!(n, Expr::ConstFloat(..))
            || matches!(n, Expr::Cast(t, _) if t.is_float())
            || matches!(n, Expr::Param(_, t) if t.is_float())
        {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn img(dx: i64) -> Expr {
        // Keep the index already in simplified form so expectations compare
        // structurally (a `+ 0` in the index would itself be simplified away).
        let index = if dx == 0 {
            Expr::var("x_0")
        } else {
            Expr::add(Expr::var("x_0"), Expr::int(dx))
        };
        Expr::Image("input_1".into(), vec![index])
    }

    #[test]
    fn constants_fold() {
        let e = Expr::add(Expr::int(2), Expr::mul(Expr::int(3), Expr::int(4)));
        assert_eq!(simplify(&e), Expr::int(14));
    }

    #[test]
    fn additive_and_multiplicative_identities_are_removed() {
        assert_eq!(simplify(&Expr::add(img(0), Expr::int(0))), img(0));
        assert_eq!(simplify(&Expr::add(Expr::int(0), img(1))), img(1));
        assert_eq!(simplify(&Expr::mul(img(0), Expr::int(1))), img(0));
        assert_eq!(
            simplify(&Expr::bin(BinOp::Sub, img(2), Expr::int(0))),
            img(2)
        );
        assert_eq!(
            simplify(&Expr::bin(BinOp::Shr, img(0), Expr::int(0))),
            img(0)
        );
    }

    #[test]
    fn multiplication_by_integer_zero_collapses() {
        assert_eq!(simplify(&Expr::mul(img(0), Expr::int(0))), Expr::int(0));
        // Not applied when the other operand involves floating point.
        let f = Expr::mul(Expr::float(2.5), img(0));
        let e = Expr::mul(f.clone(), Expr::int(0));
        assert_eq!(simplify(&e), Expr::mul(f, Expr::int(0)));
    }

    #[test]
    fn constant_selects_choose_a_branch() {
        let sel = Expr::select(
            Expr::cmp(CmpOp::Lt, Expr::int(1), Expr::int(2)),
            img(0),
            img(1),
        );
        assert_eq!(simplify(&sel), img(0));
        let sel = Expr::select(
            Expr::cmp(CmpOp::Gt, Expr::int(1), Expr::int(2)),
            img(0),
            img(1),
        );
        assert_eq!(simplify(&sel), img(1));
        // Unknown condition with identical branches also collapses.
        let sel = Expr::select(Expr::cmp(CmpOp::Lt, img(0), Expr::int(128)), img(1), img(1));
        assert_eq!(simplify(&sel), img(1));
    }

    #[test]
    fn widening_cast_chains_collapse() {
        // cast<u32>(cast<u16>(input(x))) == cast<u32>(input(x)) for u8 loads.
        let e = Expr::cast(ScalarType::UInt32, Expr::cast(ScalarType::UInt16, img(0)));
        assert_eq!(simplify(&e), Expr::cast(ScalarType::UInt32, img(0)));
        // Duplicate casts collapse.
        let e = Expr::cast(ScalarType::UInt8, Expr::cast(ScalarType::UInt8, img(0)));
        assert_eq!(simplify(&e), Expr::cast(ScalarType::UInt8, img(0)));
        // Narrowing inner casts are preserved (they truncate).
        let e = Expr::cast(
            ScalarType::UInt32,
            Expr::cast(ScalarType::UInt8, Expr::var("x_0")),
        );
        assert_eq!(
            simplify(&e),
            Expr::cast(
                ScalarType::UInt32,
                Expr::cast(ScalarType::UInt8, Expr::var("x_0"))
            )
        );
    }

    #[test]
    fn simplify_never_grows_the_expression() {
        let e = Expr::add(
            Expr::mul(Expr::int(1), img(0)),
            Expr::select(
                Expr::cmp(CmpOp::Eq, Expr::int(3), Expr::int(3)),
                img(1),
                img(2),
            ),
        );
        let s = simplify(&e);
        assert!(s.node_count() <= e.node_count());
        assert_eq!(s, Expr::add(img(0), img(1)));
    }

    #[test]
    fn pipeline_simplification_rewrites_all_funcs() {
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::add(Expr::mul(Expr::int(1), img(0)), Expr::int(0)),
        );
        let p = Pipeline::new(
            Func::pure("out", &["x_0"], ScalarType::UInt8, value),
            vec![crate::func::ImageParam::new(
                "input_1",
                ScalarType::UInt8,
                1,
            )],
        );
        let s = simplify_pipeline(&p);
        assert_eq!(
            s.output_func().pure_def.as_ref().expect("pure def"),
            &Expr::cast(ScalarType::UInt8, img(0))
        );
    }
}
