//! # helium-halide
//!
//! A miniature Halide: the DSL that lifted stencil kernels are expressed in,
//! plus the runtime needed to re-optimize and execute them.
//!
//! The original Helium emits Halide C++ and relies on the Halide compiler and
//! an OpenTuner-based autotuner. This crate plays both roles at reproduction
//! scale:
//!
//! * [`expr`], [`func`], [`types`] — the DSL: typed expressions, `select`,
//!   casts, external intrinsics, image parameters, reduction domains, pure and
//!   update definitions, and multi-stage pipelines with fusion
//!   ([`func::Pipeline::compose_after`]);
//! * [`buffer`] — dense n-dimensional buffers used as inputs and outputs;
//! * [`bounds`] — interval-based bounds inference for sizing producers;
//! * [`schedule`] — the schedule knobs (tiling, parallelism, vectorization,
//!   `compute_root`, `compute_at`) the autotuner searches over;
//! * [`stmt`], [`lower`], [`exec`] — the compilation pipeline: schedules are
//!   *lowered* into an explicit loop-nest IR ([`stmt::Stmt`]) with
//!   bounds-inference-sized intermediate allocations, then executed by a
//!   three-tier compiled engine (fused SIMD lane kernels in four lane
//!   families — `[i32; W]` wrapping, `[i64; W/2]` exact-value, `[f32; W]`
//!   rounding-disciplined and `[f64; W/2]` reference-precision — with
//!   interior/boundary loop splitting and masked/overlapping tail chunks,
//!   per-op typed lane dispatch, and a shared-evaluator per-element
//!   fallback) with scoped-thread parallelism — see the [`exec`] module
//!   docs. On AVX2 hosts the fused chunks additionally dispatch to
//!   hand-written `core::arch` evaluators (bit-identical to the portable
//!   lanes) when the resolved [`target::Target`] carries
//!   [`target::Feature::Avx2`]; Update (reduction) definitions lower too:
//!   guarded [`stmt::Stmt::ReduceStore`] nests with a privatized-vs-sequential
//!   accumulation strategy and a fused integer tree-reduce for
//!   loop-invariant accumulators, so histograms, scans and residual norms
//!   execute end-to-end compiled. Parallel-scheduled integer accumulator
//!   nests additionally run privatize-then-merge across worker threads
//!   ([`stmt::LoopKind::ParallelReduce`]): each worker accumulates raw sums
//!   into private side buffers, merged by wrapping adds — bit-identical to
//!   the serial order because integer addition commutes modulo 2^w;
//! * [`compile`], [`cache`] — the compile-once/run-many API:
//!   [`func::Pipeline::compile`] produces a [`CompiledPipeline`] whose `run`
//!   does only per-call work, backed by a [`ShardedCache`] (key-hash-sharded
//!   LRU with per-shard stats, aggregated counters, and same-key build
//!   coalescing for concurrent callers);
//! * [`eval`] — the single shared [`Value`] evaluator all backends route
//!   expression semantics through (reductions, the interpreter backend, and
//!   the compiled backend's per-element fallback);
//! * [`realize`] — the compatibility shim driving either backend
//!   ([`realize::ExecBackend::Lowered`] by default;
//!   [`realize::ExecBackend::Interpret`] keeps the original per-element
//!   interpreter as the differential-testing oracle — both produce
//!   bit-identical buffers);
//! * [`autotune`] — random-search schedule tuning with wall-clock feedback,
//!   timing cached (steady-state) runs per candidate;
//! * [`codegen`] — emission of genuine Halide C++ source text, the paper's
//!   published artifact.
//!
//! ## Example: compile once, run many
//!
//! The production entry point is [`func::Pipeline::compile`]: compilation
//! (validation, `compute_at` planning, lowering, lane-program construction)
//! happens once, and every [`compile::CompiledPipeline::run`] after the first
//! executes the cached program.
//!
//! ```
//! use helium_halide::prelude::*;
//!
//! // output(x, y) = cast<u8>(255 - input(x, y))
//! let x = Expr::var("x_0");
//! let y = Expr::var("x_1");
//! let value = Expr::cast(
//!     ScalarType::UInt8,
//!     Expr::bin(BinOp::Sub, Expr::int(255), Expr::Image("input_1".into(), vec![x, y])),
//! );
//! let func = Func::pure("output_1", &["x_0", "x_1"], ScalarType::UInt8, value);
//! let pipeline = Pipeline::new(func, vec![ImageParam::new("input_1", ScalarType::UInt8, 2)]);
//!
//! let mut input = Buffer::new(ScalarType::UInt8, &[8, 8]);
//! input.set(&[3, 3], Value::Int(10));
//! let inputs = RealizeInputs::new().with_image("input_1", &input);
//!
//! // Compile once...
//! let compiled = pipeline.compile(&Schedule::stencil_default(), &CompileOptions::default())?;
//! // ...run many: the first run per (extents, bindings) builds and caches the
//! // program; every run after that is a cache hit doing only per-call work.
//! let out = compiled.run(&inputs, &[8, 8])?;
//! assert_eq!(out.get(&[3, 3]), Value::Int(245));
//! let again = compiled.run(&inputs, &[8, 8])?;
//! assert_eq!(again, out);
//! assert_eq!(compiled.cache_stats().hits, 1);
//!
//! // And the Halide C++ artifact:
//! let src = generate_halide_source(&pipeline, &CodegenOptions::default());
//! assert!(src.contains("compile_to_file"));
//! # Ok::<(), helium_halide::realize::RealizeError>(())
//! ```
//!
//! ## When to use `Realizer` vs `CompiledPipeline`
//!
//! [`Realizer`] remains for one-shot and exploratory use: it takes the
//! pipeline per call, so it fits differential tests and code that realizes
//! many different pipelines ad hoc. It shares a [`ShardedCache`] across calls
//! (and clones), so even repeated `realize` calls amortize compilation — but
//! it must fingerprint the pipeline on every call to find the cached program.
//! [`CompiledPipeline`] binds the pipeline and schedule once, skips the
//! per-call fingerprinting, owns its own cache, and makes the compiled
//! artifact an explicit value you can keep, pass around and introspect
//! ([`compile::CompiledPipeline::cache_stats`]). Serving realizes at request
//! rate — the paper's lift-once/run-forever scenario — should use
//! `CompiledPipeline`.

#![warn(missing_docs)]

pub mod autotune;
pub mod bounds;
pub mod buffer;
pub mod cache;
pub mod codegen;
pub mod compile;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod func;
pub mod lower;
pub mod realize;
pub mod schedule;
pub mod simplify;
pub mod stmt;
pub mod target;
pub mod types;

pub use autotune::{autotune, autotune_best, TuneConfig, TuneReport};
pub use buffer::Buffer;
pub use cache::{CacheKey, CacheStats, ProgramCache, ShardedCache};
pub use codegen::{generate_halide_source, CodegenOptions};
pub use compile::{CompileOptions, CompiledPipeline, PipelineProfile, StageProfile, UpdateCounts};
pub use eval::{eval_expr, EvalSources};
pub use exec::{
    arch_rows_executed, fused_rows_executed, fused_tail_chunks_executed,
    parallel_reduce_merges_executed, reduce_chunks_executed, CounterSnapshot, FusedStoreCounts,
    LaneFamily, StoreProfile,
};
#[allow(deprecated)]
pub use exec::{set_simd_mode, simd_mode, SimdMode};
pub use expr::{BinOp, CmpOp, Expr, ExternCall};
pub use func::{Func, ImageParam, Pipeline, RDom, UpdateDef};
pub use realize::{ExecBackend, RealizeError, RealizeInputs, Realizer};
pub use schedule::Schedule;
pub use simplify::{simplify, simplify_func, simplify_pipeline};
pub use stmt::{LoopKind, Stmt};
pub use target::{set_target_override, Feature, Isa, Target, Tier};
pub use types::{ScalarType, Value};

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::autotune::{autotune, TuneConfig};
    pub use crate::buffer::Buffer;
    pub use crate::cache::CacheStats;
    pub use crate::codegen::{generate_halide_source, CodegenOptions};
    pub use crate::compile::{CompileOptions, CompiledPipeline, UpdateCounts};
    pub use crate::exec::{CounterSnapshot, FusedStoreCounts, LaneFamily};
    pub use crate::expr::{BinOp, CmpOp, Expr, ExternCall};
    pub use crate::func::{Func, ImageParam, Pipeline, RDom, UpdateDef};
    pub use crate::realize::{ExecBackend, RealizeInputs, Realizer};
    pub use crate::schedule::Schedule;
    pub use crate::simplify::{simplify, simplify_pipeline};
    pub use crate::target::{Feature, Isa, Target, Tier};
    pub use crate::types::{ScalarType, Value};
}
