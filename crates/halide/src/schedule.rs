//! Schedules: the execution-strategy knobs the autotuner searches over.
//!
//! The paper re-optimizes lifted kernels by autotuning Halide schedules
//! (tiling, vectorization, parallelization, inlining). Our miniature runtime
//! models the same decisions: a [`Schedule`] controls how the realizer walks
//! the output domain, whether rows are distributed across threads, how many
//! pixels are evaluated per dispatch ("vectorization") and which producer
//! funcs are materialized (`compute_root`) versus inlined.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An execution schedule for a pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Distribute the outermost dimension across worker threads.
    pub parallel: bool,
    /// Number of worker threads to use when `parallel` is set (0 = all cores).
    pub threads: usize,
    /// Tile sizes for the two innermost dimensions, if tiling is enabled.
    pub tile: Option<(usize, usize)>,
    /// Number of output elements evaluated per inner dispatch. Beyond
    /// amortizing dispatch overhead, the width selects the fused SIMD
    /// kernel's chunk size in the compiled executor per lane family
    /// (see [`crate::exec`]): widths 8/16/32 map to 8/16/32 lanes for the
    /// `[i32; W]` and `[f32; W]` families and to 4/8/16 lanes for the
    /// `[i64; W/2]` family (same vector-register footprint), so 8, 16 and
    /// 32 genuinely generate different inner kernels — the autotuner
    /// samples all three. Widths beyond [`crate::exec::MAX_LANES`] are
    /// batched on the per-op tier, never silently truncated.
    pub vector_width: usize,
    /// Funcs materialized into intermediate buffers instead of being inlined.
    pub compute_root: BTreeSet<String>,
    /// Funcs computed inside a loop of the output func, keyed by producer
    /// name, valued by the consumer loop variable to attach at (one of the
    /// output func's pure variables, e.g. `x_1`).
    ///
    /// The lowered backend materializes such a producer into a small,
    /// bounds-inference-sized buffer that is recomputed at each iteration of
    /// the attach loop — trading redundant compute for locality, exactly like
    /// Halide's `compute_at`. Producers that cannot be attached (non-affine
    /// accesses, reductions, not referenced by the output) degrade to
    /// `compute_root`, which is value-identical. The interpreter backend
    /// always treats `compute_at` as `compute_root`.
    pub compute_at: BTreeMap<String, String>,
    /// `compute_at` producers opted into sliding-window reuse: when the
    /// attach loop translates the producer's region by one row per iteration
    /// (coefficient 1 on the attach loop, extent > 1), the lowered backend
    /// keeps the scoped allocation as a rolling window across attach
    /// iterations and recomputes only the newly exposed rows. Producers whose
    /// inferred region does not slide (other coefficients, strided
    /// translation, extent 1) silently keep the recompute-everything
    /// placement, which is value-identical.
    pub store_sliding: BTreeSet<String>,
    /// Let one loop nest produce several outputs: consecutive materialized
    /// stages with compatible loop structure (identical outer extent,
    /// pure, untiled, cross-stage reads that never look ahead in the shared
    /// loop) compile into a single shared nest carrying one `Produce` block
    /// per stage, so `compose_after` chains stop re-walking the image per
    /// stage. Stages that do not qualify keep their own nests — the grouping
    /// is always value-identical.
    pub fuse_outputs: bool,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            parallel: false,
            threads: 0,
            tile: None,
            vector_width: 1,
            compute_root: BTreeSet::new(),
            compute_at: BTreeMap::new(),
            store_sliding: BTreeSet::new(),
            fuse_outputs: false,
        }
    }
}

impl Schedule {
    /// The naive schedule: sequential, untiled, scalar, fully inlined.
    pub fn naive() -> Schedule {
        Schedule::default()
    }

    /// A reasonable default for lifted stencils: parallel over the outer
    /// dimension with a modest vector width, everything inlined (fused).
    pub fn stencil_default() -> Schedule {
        Schedule {
            parallel: true,
            threads: 0,
            tile: Some((64, 64)),
            vector_width: 8,
            ..Schedule::default()
        }
    }

    /// Enable parallelism.
    pub fn with_parallel(mut self, parallel: bool) -> Schedule {
        self.parallel = parallel;
        self
    }

    /// Limit the number of worker threads (0 = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Schedule {
        self.threads = threads;
        self
    }

    /// Set the tile sizes.
    pub fn with_tile(mut self, tile: Option<(usize, usize)>) -> Schedule {
        self.tile = tile;
        self
    }

    /// Set the vector width.
    pub fn with_vector_width(mut self, width: usize) -> Schedule {
        self.vector_width = width.max(1);
        self
    }

    /// Materialize `func` into its own buffer instead of inlining it.
    pub fn with_compute_root(mut self, func: &str) -> Schedule {
        self.compute_root.insert(func.to_string());
        self
    }

    /// Compute `func` at each iteration of the output loop over `var`,
    /// materializing only the region the remaining inner loops consume.
    pub fn with_compute_at(mut self, func: &str, var: &str) -> Schedule {
        self.compute_at.insert(func.to_string(), var.to_string());
        self
    }

    /// Keep `func`'s `compute_at` allocation as a sliding window across
    /// attach-loop iterations, recomputing only newly exposed rows. No-op
    /// unless `func` is also scheduled `compute_at` with a region that
    /// translates by the attach loop.
    pub fn with_store_sliding(mut self, func: &str) -> Schedule {
        self.store_sliding.insert(func.to_string());
        self
    }

    /// Fuse consecutive compatible materialized stages into one shared loop
    /// nest producing several outputs.
    pub fn with_fuse_outputs(mut self, fuse: bool) -> Schedule {
        self.fuse_outputs = fuse;
        self
    }

    /// Effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parallel={} threads={} tile={:?} vector={} roots={:?} at={:?} sliding={:?} fuse={}",
            self.parallel,
            self.threads,
            self.tile,
            self.vector_width,
            self.compute_root,
            self.compute_at,
            self.store_sliding,
            self.fuse_outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let s = Schedule::naive()
            .with_parallel(true)
            .with_threads(4)
            .with_tile(Some((32, 16)))
            .with_vector_width(0)
            .with_compute_root("blur_x");
        assert!(s.parallel);
        assert_eq!(s.threads, 4);
        assert_eq!(s.tile, Some((32, 16)));
        assert_eq!(s.vector_width, 1, "vector width is clamped to at least 1");
        assert!(s.compute_root.contains("blur_x"));
        assert_eq!(s.effective_threads(), 4);
    }

    #[test]
    fn sequential_schedules_use_one_thread() {
        assert_eq!(Schedule::naive().effective_threads(), 1);
        assert!(Schedule::stencil_default().effective_threads() >= 1);
    }

    #[test]
    fn locality_knobs_are_fingerprint_visible() {
        let s = Schedule::naive()
            .with_compute_at("blur_x", "x_1")
            .with_store_sliding("blur_x")
            .with_fuse_outputs(true);
        assert!(s.store_sliding.contains("blur_x"));
        assert!(s.fuse_outputs);
        // The fingerprint hashes the Display output, so the locality knobs
        // must appear there or cached programs would alias across them.
        let text = s.to_string();
        assert!(text.contains("sliding={\"blur_x\"}"), "{text}");
        assert!(text.contains("fuse=true"), "{text}");
    }

    #[test]
    fn display_mentions_knobs() {
        let s = Schedule::stencil_default();
        let text = s.to_string();
        assert!(text.contains("parallel=true"));
        assert!(text.contains("vector=8"));
    }
}
