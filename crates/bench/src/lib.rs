//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures (see EXPERIMENTS.md for the experiment index).

#![warn(missing_docs)]

use helium_apps::photoflow::{PhotoFilter, PhotoFlow};
use helium_apps::PlanarImage;
use helium_core::{KnownData, LiftRequest, LiftedStencil, Lifter};
use helium_halide::{Buffer, Pipeline, RealizeInputs, Realizer, ScalarType, Schedule, Value};
use std::time::{Duration, Instant};

/// Default benchmark image width.
pub const BENCH_WIDTH: usize = 192;
/// Default benchmark image height.
pub const BENCH_HEIGHT: usize = 128;

/// Build a PhotoFlow instance on a deterministic benchmark image.
pub fn photoflow_app(filter: PhotoFilter, w: usize, h: usize) -> PhotoFlow {
    PhotoFlow::new(filter, PlanarImage::random(w, h, 1, 16, 0x05EED))
}

/// Build the lift request for a PhotoFlow app.
pub fn photoflow_request(app: &PhotoFlow) -> LiftRequest {
    LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    }
}

/// Lift a PhotoFlow filter, returning the app and the lifted stencil.
///
/// # Panics
/// Panics if lifting fails (benchmarks require a successful lift).
pub fn lift_photoflow(filter: PhotoFilter, w: usize, h: usize) -> (PhotoFlow, LiftedStencil) {
    let app = photoflow_app(filter, w, h);
    let request = photoflow_request(&app);
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .unwrap_or_else(|e| panic!("lifting {} failed: {e}", filter.name()));
    (app, lifted)
}

/// Materialize the contents of a lifted buffer from the app's memory image
/// into a realizable [`Buffer`].
pub fn buffer_from_layout(app: &PhotoFlow, lifted: &LiftedStencil, name: &str) -> Buffer {
    let layout = lifted.buffer(name).expect("buffer layout exists");
    let cpu = app.fresh_cpu(true);
    let bytes = cpu.mem.read_bytes(layout.base, layout.byte_len());
    let extents: Vec<usize> = layout.extents.iter().map(|&e| e as usize).collect();
    let mut buf = Buffer::new(ScalarType::UInt8, &extents);
    if extents.len() == 2 {
        for y in 0..extents[1] {
            for x in 0..extents[0] {
                let off = y * layout.strides[1] as usize + x;
                if off < bytes.len() {
                    buf.set(&[x as i64, y as i64], Value::Int(bytes[off] as i64));
                }
            }
        }
    } else {
        for (i, b) in bytes.iter().enumerate().take(buf.len()) {
            buf.set(&[i as i64], Value::Int(*b as i64));
        }
    }
    buf
}

/// Time the lifted kernel of the first output plane under a schedule on a
/// specific execution backend.
///
/// Every repetition uses a fresh `Realizer` (cold program cache), so each
/// timed call pays the full one-shot cost — planning, lowering and execution
/// — preserving the historical meaning of the interpret/lowered bench
/// columns. Cached (steady-state) throughput is measured separately by
/// [`LiftedRealizeSetup::time_compiled`].
///
/// # Panics
/// Panics if realization fails.
pub fn time_lifted_on(
    app: &PhotoFlow,
    lifted: &LiftedStencil,
    schedule: Schedule,
    backend: helium_halide::ExecBackend,
    reps: usize,
) -> Duration {
    let setup = LiftedRealizeSetup::new(app, lifted);
    let inputs = setup.inputs();
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let realizer = Realizer::new(schedule.clone()).with_backend(backend);
        let start = Instant::now();
        let _ = realizer
            .realize(&setup.pipeline, &setup.extents, &inputs)
            .expect("realize");
        best = best.min(start.elapsed());
    }
    best
}

/// The realize ingredients of a lifted kernel's primary output, materialized
/// once so timing loops measure only compilation and/or execution: the
/// pipeline snapshot, its input buffers, parameter bindings and output
/// extents.
pub struct LiftedRealizeSetup {
    pipeline: helium_halide::Pipeline,
    buffers: Vec<(String, Buffer)>,
    params: Vec<(String, Value)>,
    /// Output extents the kernel realizes over.
    pub extents: Vec<usize>,
}

impl LiftedRealizeSetup {
    /// Materialize the primary kernel's inputs from the app's memory image.
    ///
    /// # Panics
    /// Panics if the lifted layouts are missing (benchmarks require a
    /// successful lift).
    pub fn new(app: &PhotoFlow, lifted: &LiftedStencil) -> LiftedRealizeSetup {
        let kernel = lifted.primary();
        let out_layout = lifted.buffer(&kernel.output).expect("output layout");
        let extents: Vec<usize> = out_layout.extents.iter().map(|&e| e as usize).collect();
        let buffers: Vec<(String, Buffer)> = kernel
            .pipeline
            .images
            .keys()
            .map(|name| (name.clone(), buffer_from_layout(app, lifted, name)))
            .collect();
        let params: Vec<(String, Value)> = kernel
            .parameter_values
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .collect();
        LiftedRealizeSetup {
            pipeline: kernel.pipeline.clone(),
            buffers,
            params,
            extents,
        }
    }

    /// The lifted kernel's pipeline snapshot — what schedule searches tune.
    pub fn pipeline(&self) -> &helium_halide::Pipeline {
        &self.pipeline
    }

    /// The realize inputs, borrowing the materialized buffers.
    pub fn inputs(&self) -> RealizeInputs<'_> {
        let mut inputs = RealizeInputs::new();
        for (name, buf) in &self.buffers {
            inputs = inputs.with_image(name, buf);
        }
        for (name, value) in &self.params {
            inputs = inputs.with_param(name, *value);
        }
        inputs
    }

    /// Compile the kernel's pipeline for `backend` under `schedule`.
    ///
    /// # Panics
    /// Panics if compilation fails.
    pub fn compile(
        &self,
        schedule: &Schedule,
        backend: helium_halide::ExecBackend,
    ) -> helium_halide::CompiledPipeline {
        let options = helium_halide::CompileOptions {
            backend,
            ..helium_halide::CompileOptions::default()
        };
        self.pipeline.compile(schedule, &options).expect("compile")
    }

    /// Time the compile-once/run-many API over `extents` (defaults to the
    /// kernel's inferred output extents).
    ///
    /// With `cold`, every timed repetition constructs a fresh
    /// `CompiledPipeline` and runs it once — measuring the full uncached cost
    /// (validation, `compute_at` planning, lowering, lane-program
    /// construction, execution). Otherwise the pipeline is compiled and warmed
    /// once up front and only the cached runs are timed — the steady-state
    /// request-rate cost. Inputs are built once, outside every timed region.
    ///
    /// # Panics
    /// Panics if compilation or realization fails.
    pub fn time_compiled(
        &self,
        schedule: &Schedule,
        backend: helium_halide::ExecBackend,
        reps: usize,
        cold: bool,
        extents: Option<&[usize]>,
    ) -> Duration {
        let extents = extents.unwrap_or(&self.extents);
        let inputs = self.inputs();
        let mut best = Duration::MAX;
        if cold {
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let compiled = self.compile(schedule, backend);
                let _ = compiled.run(&inputs, extents).expect("run");
                best = best.min(start.elapsed());
            }
        } else {
            let compiled = self.compile(schedule, backend);
            let _ = compiled.run(&inputs, extents).expect("warm-up run");
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let _ = compiled.run(&inputs, extents).expect("run");
                best = best.min(start.elapsed());
            }
            assert!(
                compiled.cache_stats().hits >= reps.max(1) as u64,
                "timed runs must be cache hits"
            );
        }
        best
    }
}

/// Time the lifted kernel of the first output plane under a schedule.
///
/// # Panics
/// Panics if realization fails.
pub fn time_lifted(
    app: &PhotoFlow,
    lifted: &LiftedStencil,
    schedule: Schedule,
    reps: usize,
) -> Duration {
    time_lifted_on(
        app,
        lifted,
        schedule,
        helium_halide::ExecBackend::default(),
        reps,
    )
}

/// Time the legacy binary running in the VM (the literal analogue of the
/// shipped, bit-rotted executable).
pub fn time_legacy_vm(app: &PhotoFlow, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = app.run_in_vm();
        best = best.min(start.elapsed());
    }
    best
}

/// Time the native scalar port of the legacy algorithm (a conservative upper
/// bound on the original binary's performance).
pub fn time_legacy_native(app: &PhotoFlow, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = app.reference_output();
        best = best.min(start.elapsed());
    }
    best
}

/// Format a duration in milliseconds for the report tables.
pub fn ms(d: Duration) -> String {
    format!("{:9.2}", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------------
// Generic helpers (BatchView, miniGMG and ablation harnesses)
// ---------------------------------------------------------------------------

/// Build a BatchView instance on a deterministic benchmark image and lift its
/// kernel.
///
/// # Panics
/// Panics if lifting fails (benchmarks require a successful lift).
pub fn lift_batchview(
    filter: helium_apps::BatchFilter,
    w: usize,
    h: usize,
) -> (helium_apps::BatchView, LiftedStencil) {
    let app =
        helium_apps::BatchView::new(filter, helium_apps::InterleavedImage::random(w, h, 0x05EED));
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .unwrap_or_else(|e| panic!("lifting {} failed: {e}", filter.name()));
    (app, lifted)
}

/// Lift the miniGMG smooth stencil (generic inference, no known data).
///
/// # Panics
/// Panics if lifting fails (benchmarks require a successful lift).
pub fn lift_minigmg(nx: usize, ny: usize, nz: usize) -> (helium_apps::MiniGmg, LiftedStencil) {
    let app = helium_apps::MiniGmg::new(helium_apps::Grid3D::random(nx, ny, nz, 1, 0x6116));
    let request = LiftRequest {
        known_inputs: vec![],
        known_outputs: vec![],
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .unwrap_or_else(|e| panic!("lifting the miniGMG smooth failed: {e}"));
    (app, lifted)
}

/// The miniGMG smooth stencil as a `Float32` pipeline: the weighted 7-point
/// (3-D) Jacobi smoother over a ghosted grid, with a `cast<float>` after
/// every arithmetic op — the rounding discipline regenerated single-precision
/// SSE code has, and exactly the shape the compiled executor's `[f32; W]`
/// fused lane family covers. Returns the pipeline plus a deterministic
/// ghosted input grid of extents `(nx+2) × (ny+2) × (nz+2)`; realize the
/// output over `[nx, ny, nz]`.
pub fn minigmg_smooth_f32(nx: usize, ny: usize, nz: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{Expr, Func, ImageParam};
    let f32c = |e: Expr| Expr::cast(ScalarType::Float32, e);
    // Interior cell (x, y, z) reads ghosted cell (x+1+dx, y+1+dy, z+1+dz).
    let tap = |dx: i64, dy: i64, dz: i64| {
        Expr::Image(
            "grid".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(1 + dx)),
                Expr::add(Expr::var("x_1"), Expr::int(1 + dy)),
                Expr::add(Expr::var("x_2"), Expr::int(1 + dz)),
            ],
        )
    };
    // Neighbour sum in the legacy kernel's operation order, rounding after
    // every addition.
    let nsum = f32c(Expr::add(
        f32c(Expr::add(
            f32c(Expr::add(
                f32c(Expr::add(
                    f32c(Expr::add(tap(-1, 0, 0), tap(1, 0, 0))),
                    tap(0, -1, 0),
                )),
                tap(0, 1, 0),
            )),
            tap(0, 0, -1),
        )),
        tap(0, 0, 1),
    ));
    let wn = Expr::ConstFloat((1.0f32 / 12.0) as f64, ScalarType::Float32);
    let wc = Expr::ConstFloat(0.5, ScalarType::Float32);
    let value = f32c(Expr::add(
        f32c(Expr::mul(nsum, wn)),
        f32c(Expr::mul(tap(0, 0, 0), wc)),
    ));
    let out = Func::pure("smooth", &["x_0", "x_1", "x_2"], ScalarType::Float32, value);
    let pipeline = Pipeline::new(out, vec![ImageParam::new("grid", ScalarType::Float32, 3)]);

    let mut grid = Buffer::new(ScalarType::Float32, &[nx + 2, ny + 2, nz + 2]);
    let mut s = seed | 1;
    for c in grid.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        grid.set(&c, Value::Float(((s >> 33) % 4096) as f64 / 16.0 - 128.0));
    }
    (pipeline, grid)
}

/// The miniGMG smooth stencil in double precision: the same weighted 7-point
/// Jacobi smoother as [`minigmg_smooth_f32`], but `Float64` end to end and
/// with *no* rounding casts — f64 lanes are the executor's reference
/// representation, so raw adds and multiplies are exact by construction and
/// the pipeline rides the `[f64; W/2]` fused lane family. Returns the
/// pipeline plus a deterministic ghosted input grid of extents
/// `(nx+2) × (ny+2) × (nz+2)`; realize the output over `[nx, ny, nz]`.
pub fn minigmg_smooth_f64(nx: usize, ny: usize, nz: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{Expr, Func, ImageParam};
    let tap = |dx: i64, dy: i64, dz: i64| {
        Expr::Image(
            "grid".into(),
            vec![
                Expr::add(Expr::var("x_0"), Expr::int(1 + dx)),
                Expr::add(Expr::var("x_1"), Expr::int(1 + dy)),
                Expr::add(Expr::var("x_2"), Expr::int(1 + dz)),
            ],
        )
    };
    let nsum = Expr::add(
        Expr::add(
            Expr::add(
                Expr::add(Expr::add(tap(-1, 0, 0), tap(1, 0, 0)), tap(0, -1, 0)),
                tap(0, 1, 0),
            ),
            tap(0, 0, -1),
        ),
        tap(0, 0, 1),
    );
    let wn = Expr::ConstFloat(1.0 / 12.0, ScalarType::Float64);
    let wc = Expr::ConstFloat(0.5, ScalarType::Float64);
    let value = Expr::add(Expr::mul(nsum, wn), Expr::mul(tap(0, 0, 0), wc));
    let out = Func::pure("smooth", &["x_0", "x_1", "x_2"], ScalarType::Float64, value);
    let pipeline = Pipeline::new(out, vec![ImageParam::new("grid", ScalarType::Float64, 3)]);

    let mut grid = Buffer::new(ScalarType::Float64, &[nx + 2, ny + 2, nz + 2]);
    let mut s = seed | 1;
    for c in grid.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        grid.set(&c, Value::Float(((s >> 33) % 4096) as f64 / 16.0 - 128.0));
    }
    (pipeline, grid)
}

/// A histogram-style 64-bit binning pipeline: weighted accumulation of
/// narrow taps into `UInt64` bins, where the i32 family's wrap proofs are
/// vacuous and the `[i64; W/2]` fused lane family applies. Returns the
/// pipeline plus a deterministic `UInt8` input of extents
/// `(w+2) × (h+2)`; realize the output over `[w, h]`.
pub fn hist64_pipeline(w: usize, h: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{BinOp, Expr, Func, ImageParam};
    let u64c = |e: Expr| Expr::cast(ScalarType::UInt64, e);
    let tap = |dx: i64, dy: i64| {
        Expr::cast(
            ScalarType::UInt32,
            Expr::Image(
                "in".into(),
                vec![
                    Expr::add(Expr::var("x_0"), Expr::int(dx)),
                    Expr::add(Expr::var("x_1"), Expr::int(dy)),
                ],
            ),
        )
    };
    // Bin id scaled past 32 bits plus a shifted neighbour count.
    let value = u64c(Expr::add(
        Expr::mul(tap(0, 0), Expr::int(0x1_0000_0001)),
        Expr::bin(
            BinOp::Shl,
            u64c(Expr::add(tap(1, 0), tap(0, 1))),
            Expr::int(33),
        ),
    ));
    let out = Func::pure("hist", &["x_0", "x_1"], ScalarType::UInt64, value);
    let pipeline = Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);

    let mut input = Buffer::new(ScalarType::UInt8, &[w + 2, h + 2]);
    let mut s = seed | 1;
    for c in input.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        input.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    (pipeline, input)
}

/// A two-stage locality pipeline for the sliding-window tier: `blur_x` is a
/// horizontal 5-tap sum and the output folds `blur_x` at rows `y` through
/// `y + 3`, so attaching `blur_x` at the output's row loop makes each
/// iteration's producer region overlap the previous one's by three rows —
/// the shape `with_store_sliding` turns into a rolling 4-row window that
/// computes one fresh row per warm iteration instead of four. Returns the
/// pipeline plus a deterministic `UInt8` input of extents `(w+4) × (h+3)`;
/// realize the output over `[w, h]`.
pub fn two_stage_blur_pipeline(w: usize, h: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{BinOp, Expr, Func, ImageParam};
    let u16c = |e: Expr| Expr::cast(ScalarType::UInt16, e);
    let tap = |dx: i64| {
        u16c(Expr::Image(
            "in".into(),
            vec![Expr::add(Expr::var("x_0"), Expr::int(dx)), Expr::var("x_1")],
        ))
    };
    let hsum = u16c(Expr::add(
        u16c(Expr::add(
            u16c(Expr::add(u16c(Expr::add(tap(0), tap(1))), tap(2))),
            tap(3),
        )),
        tap(4),
    ));
    let blur_x = Func::pure("blur_x", &["x_0", "x_1"], ScalarType::UInt16, hsum);
    let vtap = |dy: i64| {
        Expr::FuncRef(
            "blur_x".into(),
            vec![Expr::var("x_0"), Expr::add(Expr::var("x_1"), Expr::int(dy))],
        )
    };
    let vsum = u16c(Expr::add(
        u16c(Expr::add(u16c(Expr::add(vtap(0), vtap(1))), vtap(2))),
        vtap(3),
    ));
    let out = Func::pure(
        "out",
        &["x_0", "x_1"],
        ScalarType::UInt8,
        Expr::cast(
            ScalarType::UInt8,
            Expr::bin(BinOp::Shr, vsum, Expr::uint(5)),
        ),
    );
    let pipeline =
        Pipeline::new(out, vec![ImageParam::new("in", ScalarType::UInt8, 2)]).with_func(blur_x);

    let mut input = Buffer::new(ScalarType::UInt8, &[w + 4, h + 3]);
    let mut s = seed | 1;
    for c in input.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        input.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    (pipeline, input)
}

/// A pointwise `compose_after` chain of `stages` independently built
/// pipelines, each reading its predecessor's output through a consumed
/// image parameter — the shape multi-output fusion collapses into one
/// shared loop nest (with `compute_root` on every upstream stage plus
/// `with_fuse_outputs`, the chain stops re-walking the image per stage).
/// Returns the pipeline plus a deterministic `UInt8` input of extents
/// `w × h`; realize the output over `[w, h]`.
pub fn pointwise_chain_pipeline(
    w: usize,
    h: usize,
    stages: usize,
    seed: u64,
) -> (Pipeline, Buffer) {
    use helium_halide::{BinOp, Expr, Func, ImageParam};
    assert!(stages >= 2, "a chain needs at least two stages");
    let stage = |name: &str, image: &str, mask: i64| {
        Pipeline::new(
            Func::pure(
                name,
                &["x_0", "x_1"],
                ScalarType::UInt8,
                Expr::cast(
                    ScalarType::UInt8,
                    Expr::bin(
                        BinOp::Xor,
                        Expr::Image(image.into(), vec![Expr::var("x_0"), Expr::var("x_1")]),
                        Expr::int(mask),
                    ),
                ),
            ),
            vec![ImageParam::new(image, ScalarType::UInt8, 2)],
        )
    };
    let mut chain = stage("stage_1", "in", 0xA5);
    for i in 2..=stages {
        let next = stage(&format!("stage_{i}"), "link", (0x11 * i as i64) & 0xFF);
        chain = next.compose_after(&chain, "link");
    }

    let mut input = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut s = seed | 1;
    for c in input.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        input.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    (chain, input)
}

/// A 64-bit histogram with a genuine update definition: `hist(x) = 0;
/// hist[in(r.x, r.y)] = u64(hist[in(r.x, r.y)] + 1)` over the full input —
/// the paper's equalize shape with `UInt64` bins. The data-dependent LHS
/// keeps the lowered nest on the sequential per-op tier (no lane kernel can
/// apply), so this times the guarded-store path against the reduction
/// interpreter. Returns the pipeline plus a deterministic `UInt8` input of
/// extents `w × h`; realize the output over `[256]`.
pub fn hist64_rdom_pipeline(w: usize, h: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{Expr, Func, ImageParam, RDom, UpdateDef};
    let img = ImageParam::new("in", ScalarType::UInt8, 2);
    let rdom = RDom::over_image("r_0", &img);
    let lhs = Expr::Image(
        "in".into(),
        vec![Expr::RVar("r_0.x".into()), Expr::RVar("r_0.y".into())],
    );
    let update = UpdateDef {
        lhs: vec![lhs.clone()],
        value: Expr::cast(
            ScalarType::UInt64,
            Expr::add(Expr::FuncRef("hist".into(), vec![lhs]), Expr::int(1)),
        ),
        rdom,
    };
    let hist = Func::pure("hist", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
    let pipeline = Pipeline::new(hist, vec![img]);

    let mut input = Buffer::new(ScalarType::UInt8, &[w, h]);
    let mut s = seed | 1;
    for c in input.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        input.set(&c, Value::Int(((s >> 33) % 256) as i64));
    }
    (pipeline, input)
}

/// A miniGMG-style residual-norm reduction: `norm(0) = 0; norm(0) = norm(0)
/// + resid(r)²` over the interior of a ghosted 3-D `Int32` grid, where
/// `resid(r) = 6·g(c) − Σ neighbours` is the 7-point residual computed
/// inline in the update value. The LHS is loop-invariant and the added term
/// is integer, so the lowered nest rides the fused `[i64; W/2]` lane family
/// with the in-lane tree-reduce epilogue. Returns the pipeline plus a
/// deterministic ghosted grid of extents `(nx+2) × (ny+2) × (nz+2)`; realize
/// the output over `[1]`.
pub fn minigmg_residual_norm(nx: usize, ny: usize, nz: usize, seed: u64) -> (Pipeline, Buffer) {
    use helium_halide::{BinOp, Expr, Func, ImageParam, RDom, UpdateDef};
    let i64c = |e: Expr| Expr::cast(ScalarType::UInt64, e);
    // Reduction point (r.x, r.y, r.z) reads ghosted cell (r.x+1+dx, ...).
    let tap = |dx: i64, dy: i64, dz: i64| {
        Expr::Image(
            "grid".into(),
            vec![
                Expr::add(Expr::RVar("r_0.x".into()), Expr::int(1 + dx)),
                Expr::add(Expr::RVar("r_0.y".into()), Expr::int(1 + dy)),
                Expr::add(Expr::RVar("r_0.z".into()), Expr::int(1 + dz)),
            ],
        )
    };
    let nsum = Expr::add(
        Expr::add(
            Expr::add(tap(-1, 0, 0), tap(1, 0, 0)),
            Expr::add(tap(0, -1, 0), tap(0, 1, 0)),
        ),
        Expr::add(tap(0, 0, -1), tap(0, 0, 1)),
    );
    let resid = Expr::bin(BinOp::Sub, Expr::mul(Expr::int(6), tap(0, 0, 0)), nsum);
    let update = UpdateDef {
        lhs: vec![Expr::int(0)],
        value: i64c(Expr::add(
            Expr::FuncRef("norm".into(), vec![Expr::int(0)]),
            Expr::mul(resid.clone(), resid),
        )),
        rdom: RDom::with_constant_bounds("r_0", &[(0, nx as i64), (0, ny as i64), (0, nz as i64)]),
    };
    let norm = Func::pure("norm", &["x_0"], ScalarType::UInt64, Expr::int(0)).with_update(update);
    let pipeline = Pipeline::new(norm, vec![ImageParam::new("grid", ScalarType::Int32, 3)]);

    let mut grid = Buffer::new(ScalarType::Int32, &[nx + 2, ny + 2, nz + 2]);
    let mut s = seed | 1;
    for c in grid.coords().collect::<Vec<_>>() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        grid.set(&c, Value::Int(((s >> 33) % 4096) as i64 - 2048));
    }
    (pipeline, grid)
}

/// Materialize a lifted buffer from an arbitrary memory image, honouring the
/// inferred strides and element type.
pub fn buffer_from_memory(
    mem: &helium_machine::Memory,
    lifted: &LiftedStencil,
    name: &str,
    ty: ScalarType,
) -> Buffer {
    let layout = lifted.buffer(name).expect("buffer layout exists");
    let extents: Vec<usize> = layout.extents.iter().map(|&e| e as usize).collect();
    let mut buf = Buffer::new(ty, &extents);
    for coord in buf.coords().collect::<Vec<_>>() {
        let mut addr = layout.base;
        for (d, &i) in coord.iter().enumerate() {
            addr += i as u32 * layout.strides[d];
        }
        let value = match ty {
            ScalarType::Float64 => Value::Float(mem.read_f64(addr)),
            ScalarType::Float32 => Value::Float(mem.read_f32(addr) as f64),
            _ => Value::Int(mem.read_uint(addr, layout.element_size) as i64),
        };
        buf.set(&coord, value);
    }
    buf
}

/// Time the primary lifted kernel against the memory image left by a legacy
/// run, realized over `extents` (or the inferred output extents).
///
/// # Panics
/// Panics if realization fails.
pub fn time_lifted_kernel(
    mem: &helium_machine::Memory,
    lifted: &LiftedStencil,
    schedule: Schedule,
    extents: Option<Vec<usize>>,
    reps: usize,
) -> Duration {
    let kernel = lifted.primary();
    let out_layout = lifted.buffer(&kernel.output).expect("output layout");
    let extents = extents.unwrap_or_else(|| {
        out_layout
            .extents
            .iter()
            .map(|&e| e as usize)
            .collect::<Vec<_>>()
    });
    let buffers: Vec<(String, Buffer)> = kernel
        .pipeline
        .images
        .iter()
        .map(|(name, param)| {
            (
                name.clone(),
                buffer_from_memory(mem, lifted, name, param.ty),
            )
        })
        .collect();
    let mut inputs = RealizeInputs::new();
    for (name, buf) in &buffers {
        inputs = inputs.with_image(name, buf);
    }
    for (name, value) in &kernel.parameter_values {
        inputs = inputs.with_param(name, *value);
    }
    // Fresh realizer per repetition: each timed call pays the full one-shot
    // cost (see `time_lifted_on`).
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let realizer = Realizer::new(schedule.clone());
        let start = Instant::now();
        let _ = realizer
            .realize(&kernel.pipeline, &extents, &inputs)
            .expect("realize");
        best = best.min(start.elapsed());
    }
    best
}

/// Run a legacy application binary in the VM to completion and return its
/// final memory image along with the wall-clock time of the run.
///
/// # Panics
/// Panics if the VM run fails.
pub fn run_legacy(
    program: &helium_machine::Program,
    mut cpu: helium_machine::Cpu,
) -> (helium_machine::Cpu, Duration) {
    let start = Instant::now();
    cpu.run(program, 2_000_000_000, |_, _| {})
        .expect("legacy run completes");
    (cpu, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::{CompileOptions, ExecBackend, Target, Tier};

    #[test]
    fn helpers_produce_consistent_timings() {
        let (app, lifted) = lift_photoflow(PhotoFilter::Invert, 48, 32);
        let legacy = time_legacy_native(&app, 1);
        let lifted_time = time_lifted(&app, &lifted, Schedule::naive(), 1);
        assert!(legacy.as_nanos() > 0);
        assert!(lifted_time.as_nanos() > 0);
        assert!(!ms(legacy).is_empty());
    }

    /// The acceptance gate of the float lane family: miniGMG smooth
    /// (`Float32`) runs on the fused tier and its output is bit-identical to
    /// the interpreter oracle.
    #[test]
    fn minigmg_smooth_f32_runs_fused_and_matches_oracle() {
        let (nx, ny, nz) = (21, 13, 5);
        let (pipeline, grid) = minigmg_smooth_f32(nx, ny, nz, 0x6116);
        let inputs = RealizeInputs::new().with_image("grid", &grid);
        let extents = [nx, ny, nz];
        let schedule = Schedule::stencil_default();
        let compiled = pipeline
            .compile(
                &schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: Some(Target::detect().with_tier(Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let fused = compiled.run(&inputs, &extents).expect("fused run");
        let counts = compiled
            .fused_store_counts(&inputs, &extents)
            .expect("counts");
        assert!(
            counts.lanes_f32 > 0,
            "smooth must run the [f32; W] fused lane family, got {counts:?}"
        );
        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&pipeline, &extents, &inputs)
            .expect("oracle");
        assert_eq!(fused, oracle, "smooth fused output diverged from oracle");
    }

    /// The acceptance gate of the double-precision lane family: miniGMG
    /// smooth (`Float64`, unrounded) runs on the `[f64; W/2]` fused family
    /// and its output is bit-identical to the interpreter oracle.
    #[test]
    fn minigmg_smooth_f64_runs_fused_and_matches_oracle() {
        let (nx, ny, nz) = (21, 13, 5);
        let (pipeline, grid) = minigmg_smooth_f64(nx, ny, nz, 0x6116);
        let inputs = RealizeInputs::new().with_image("grid", &grid);
        let extents = [nx, ny, nz];
        let schedule = Schedule::stencil_default();
        let compiled = pipeline
            .compile(
                &schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: Some(Target::detect().with_tier(Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let fused = compiled.run(&inputs, &extents).expect("fused run");
        let counts = compiled
            .fused_store_counts(&inputs, &extents)
            .expect("counts");
        assert!(
            counts.lanes_f64 > 0,
            "smooth must run the [f64; W/2] fused lane family, got {counts:?}"
        );
        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&pipeline, &extents, &inputs)
            .expect("oracle");
        assert_eq!(
            fused, oracle,
            "f64 smooth fused output diverged from oracle"
        );
    }

    /// The acceptance gate of lowered reductions: the RDom histogram's
    /// update definition executes through the compiled engine (no
    /// `run_update` on the hot path), bit-identical to the interpreter.
    #[test]
    fn hist64_rdom_updates_run_compiled_and_match_oracle() {
        let (pipeline, input) = hist64_rdom_pipeline(41, 13, 0xB16B);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let schedule = Schedule::stencil_default();
        let compiled = pipeline
            .compile(&schedule, &CompileOptions::default())
            .expect("compile");
        let out = compiled.run(&inputs, &[256]).expect("run");
        let counts = compiled.update_counts(&inputs, &[256]).expect("counts");
        assert_eq!(
            counts.interpreted, 0,
            "hist64 updates must not run through run_update: {counts:?}"
        );
        assert_eq!(counts.compiled, 1);
        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&pipeline, &[256], &inputs)
            .expect("oracle");
        assert_eq!(out, oracle, "hist64 compiled updates diverged from oracle");
    }

    /// The residual-norm reduction runs its update compiled, on the fused
    /// tree-reduce, bit-identical to the interpreter.
    #[test]
    fn residual_norm_runs_fused_reduce_and_matches_oracle() {
        let (pipeline, grid) = minigmg_residual_norm(19, 11, 5, 0x6116);
        let inputs = RealizeInputs::new().with_image("grid", &grid);
        let schedule = Schedule::stencil_default();
        let counters = helium_halide::CounterSnapshot::take();
        let compiled = pipeline
            .compile(
                &schedule,
                &CompileOptions {
                    target: Some(Target::detect().with_tier(Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let out = compiled.run(&inputs, &[1]).expect("run");
        let counts = compiled.update_counts(&inputs, &[1]).expect("counts");
        assert_eq!(
            counts.interpreted, 0,
            "the norm update must not run through run_update: {counts:?}"
        );
        assert!(
            counters.delta().reduce_chunks > 0,
            "the norm must ride the fused tree-reduce"
        );
        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&pipeline, &[1], &inputs)
            .expect("oracle");
        assert_eq!(out, oracle, "residual norm diverged from oracle");
    }

    /// The 64-bit binning pipeline rides the [i64; W/2] family, bit-exact.
    #[test]
    fn hist64_runs_fused_and_matches_oracle() {
        let (w, h) = (37, 11);
        let (pipeline, input) = hist64_pipeline(w, h, 0xB16B);
        let inputs = RealizeInputs::new().with_image("in", &input);
        let extents = [w, h];
        let schedule = Schedule::stencil_default();
        let compiled = pipeline
            .compile(
                &schedule,
                &CompileOptions {
                    backend: ExecBackend::Lowered,
                    target: Some(Target::detect().with_tier(Tier::Simd)),
                    ..CompileOptions::default()
                },
            )
            .expect("compile");
        let fused = compiled.run(&inputs, &extents).expect("fused run");
        let counts = compiled
            .fused_store_counts(&inputs, &extents)
            .expect("counts");
        assert!(
            counts.lanes_i64 > 0,
            "hist64 must run the [i64; W/2] fused lane family, got {counts:?}"
        );
        let oracle = Realizer::new(schedule)
            .with_backend(ExecBackend::Interpret)
            .realize(&pipeline, &extents, &inputs)
            .expect("oracle");
        assert_eq!(fused, oracle, "hist64 fused output diverged from oracle");
    }
}
