//! Regenerates the paper's Fig. 6: code localization and extraction
//! statistics for the PhotoFlow (Photoshop-analogue) filters.

use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, BENCH_HEIGHT, BENCH_WIDTH};

fn main() {
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>12} {:>10} {:>12} {:>10}",
        "Filter",
        "total BB",
        "diff BB",
        "filter BB",
        "static ins",
        "mem dump",
        "dyn ins",
        "tree size"
    );
    let filters = [
        PhotoFilter::Invert,
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Sharpen,
        PhotoFilter::SharpenMore,
        PhotoFilter::Threshold,
        PhotoFilter::BoxBlur,
        PhotoFilter::Brightness,
        PhotoFilter::Equalize,
    ];
    for filter in filters {
        let result =
            std::panic::catch_unwind(|| lift_photoflow(filter, BENCH_WIDTH / 2, BENCH_HEIGHT / 2));
        match result {
            Ok((_, lifted)) => {
                let s = &lifted.stats;
                let tree_sizes: Vec<String> = s.tree_sizes.iter().map(|t| t.to_string()).collect();
                println!(
                    "{:<14} {:>9} {:>9} {:>11} {:>12} {:>9}K {:>12} {:>10}",
                    filter.name(),
                    s.total_basic_blocks,
                    s.diff_basic_blocks,
                    s.filter_function_blocks,
                    s.static_instruction_count,
                    s.memory_dump_bytes / 1024,
                    s.dynamic_instruction_count,
                    tree_sizes.join("/")
                );
            }
            Err(_) => {
                println!("{:<14} (not lifted: see EXPERIMENTS.md)", filter.name());
            }
        }
    }
}
