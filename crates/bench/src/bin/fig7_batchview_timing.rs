//! Regenerates the bottom half of the paper's Fig. 7: timing comparison for
//! the BatchView (IrfanView-analogue) filters against the lifted Halide
//! implementations.
//!
//! Two baselines are reported, as for the PhotoFlow table: the legacy binary
//! interpreted in the VM (the analogue of the shipped executable) and a native
//! scalar port of the same algorithm. The lifted kernels are realized with the
//! default stencil schedule (tiled + parallel).

use helium_apps::batchview::BatchFilter;
use helium_bench::{lift_batchview, ms, run_legacy, time_lifted_kernel};
use helium_halide::Schedule;
use std::time::{Duration, Instant};

fn time<F: FnMut()>(mut f: F, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let (w, h) = (192, 128);
    let reps = 3;
    println!(
        "{:<12} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "Filter", "legacy-vm", "native-port", "lifted", "vs vm", "vs native"
    );
    for filter in BatchFilter::ALL {
        let result = std::panic::catch_unwind(|| lift_batchview(filter, w, h));
        let (app, lifted) = match result {
            Ok(v) => v,
            Err(_) => {
                println!("{:<12} (not lifted)", filter.name());
                continue;
            }
        };
        let (cpu, vm) = run_legacy(app.program(), app.fresh_cpu(true));
        let native = time(
            || {
                let _ = app.reference_output();
            },
            reps,
        );
        let lifted_time =
            time_lifted_kernel(&cpu.mem, &lifted, Schedule::stencil_default(), None, reps);
        println!(
            "{:<12} {} {} {} {:>8.2}x {:>8.2}x",
            filter.name(),
            ms(vm),
            ms(native),
            ms(lifted_time),
            vm.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9),
            native.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9),
        );
    }
    println!("\n(all times in milliseconds; interleaved RGB image {w}x{h}; see EXPERIMENTS.md)");
}
