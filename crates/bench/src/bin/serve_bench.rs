//! Standalone driver for the serving stack: throughput and tail latency of
//! `helium-serve` over a mixed warm workload, plus the parallel-reduction
//! split, printed human-readably. The gated machine-readable report is
//! written by `cargo bench --bench serve` (see `benches/serve.rs`); this
//! binary is the quick interactive equivalent.

use helium_bench::{hist64_pipeline, hist64_rdom_pipeline};
use helium_halide::{CompileOptions, RealizeInputs, Schedule};
use helium_serve::{ServeConfig, ServeRequest, Server, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn time<F: FnMut()>(mut f: F, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let requests = 256usize;

    let opts = CompileOptions::default();
    let (pure, pure_in) = hist64_pipeline(126, 94, 0xA11CE);
    let pure = Arc::new(
        pure.compile(&Schedule::stencil_default(), &opts)
            .expect("compile"),
    );
    let pure_in = Arc::new(pure_in);
    let (rdom, rdom_in) = hist64_rdom_pipeline(192, 160, 0xB16B);
    let rdom = Arc::new(
        rdom.compile(&Schedule::stencil_default(), &opts)
            .expect("compile"),
    );
    let rdom_in = Arc::new(rdom_in);

    println!("helium-serve: {workers} workers, {requests} mixed requests");
    let server = Server::start(ServeConfig::default().with_workers(workers));
    let start = Instant::now();
    let tickets: Vec<Ticket> = (0..requests)
        .map(|i| {
            let request = if i % 2 == 0 {
                ServeRequest::new(Arc::clone(&pure), &[126, 94])
                    .with_image("in", Arc::clone(&pure_in))
            } else {
                ServeRequest::new(Arc::clone(&rdom), &[256]).with_image("in", Arc::clone(&rdom_in))
            };
            server.submit(request).expect("submit")
        })
        .collect();
    for t in tickets {
        let _ = t.wait().expect("served run");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    println!(
        "  throughput: {:.0} rps ({requests} requests in {elapsed:.3}s)",
        requests as f64 / elapsed
    );
    println!(
        "  latency: p50={}ns p99={}ns max={}ns over {} samples",
        stats.latency.p50_ns, stats.latency.p99_ns, stats.latency.max_ns, stats.latency.count
    );
    println!(
        "  rdom cache: {:?} compiles={} coalesced={}",
        rdom.cache_stats(),
        rdom.compiles(),
        rdom.coalesced_compiles()
    );
    server.shutdown();

    // Parallel-reduce split on the histogram accumulator nest.
    let (pipeline, input) = hist64_rdom_pipeline(256, 192, 0xB16B);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let serial = pipeline
        .compile(&Schedule::stencil_default().with_parallel(false), &opts)
        .expect("compile serial");
    let parallel = pipeline
        .compile(&Schedule::stencil_default(), &opts)
        .expect("compile parallel");
    assert_eq!(
        serial.run(&inputs, &[256]).expect("serial"),
        parallel.run(&inputs, &[256]).expect("parallel"),
        "schedules must agree bit-for-bit"
    );
    let ts = time(|| drop(serial.run(&inputs, &[256]).expect("run")), 24);
    let tp = time(|| drop(parallel.run(&inputs, &[256]).expect("run")), 24);
    println!(
        "  parallel reduce: serial={ts:?} parallel={tp:?} speedup={:.2}x",
        ts.as_secs_f64() / tp.as_secs_f64().max(1e-12)
    );
}
