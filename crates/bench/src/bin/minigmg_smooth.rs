//! Regenerates the paper's §6.3 miniGMG experiment: the smooth stencil of the
//! multigrid benchmark, legacy versus the lifted-and-rescheduled kernel.
//!
//! The stencil is lifted end to end by `helium-core` using generic inference
//! (no known input/output data, exactly as in the paper), then realized by the
//! helium-halide runtime with a parallel schedule. The legacy baselines are
//! the binary in the VM and the native scalar port.

use helium_apps::Grid3D;
use helium_bench::{lift_minigmg, ms, run_legacy, time_lifted_kernel};
use helium_halide::Schedule;
use std::time::{Duration, Instant};

fn time<F: FnMut()>(mut f: F, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let (nx, ny, nz) = (48, 48, 24);
    let (app, lifted) = lift_minigmg(nx, ny, nz);
    let grid: &Grid3D = app.grid();

    println!(
        "miniGMG smooth stencil ({nx}x{ny}x{nz} interior, ghost=1), lifted via generic inference"
    );
    println!(
        "localization: {} of {} blocks in the coverage difference, {} static instructions",
        lifted.stats.diff_basic_blocks,
        lifted.stats.total_basic_blocks,
        lifted.stats.static_instruction_count
    );

    let (cpu, vm) = run_legacy(app.program(), app.fresh_cpu(true));
    let native = time(
        || {
            let _ = app.reference_output();
        },
        3,
    );
    // Realize over the true interior extents (the inferred innermost extent
    // includes the ghost gap of each scanline).
    let extents = Some(vec![grid.nx, grid.ny, grid.nz]);
    let parallel = Schedule::stencil_default().with_parallel(true);
    let lifted_time = time_lifted_kernel(&cpu.mem, &lifted, parallel.clone(), extents.clone(), 3);
    let scalar_time = time_lifted_kernel(&cpu.mem, &lifted, Schedule::naive(), extents, 3);

    // Correctness: compare a fresh realization against the native reference.
    let reference = app.reference_output();
    let out = {
        let kernel = lifted.primary();
        let input = helium_bench::buffer_from_memory(
            &cpu.mem,
            &lifted,
            "input_1",
            helium_halide::ScalarType::Float64,
        );
        let mut inputs = helium_halide::RealizeInputs::new().with_image("input_1", &input);
        for (name, value) in &kernel.parameter_values {
            inputs = inputs.with_param(name, *value);
        }
        helium_halide::Realizer::new(parallel)
            .realize(&kernel.pipeline, &[grid.nx, grid.ny, grid.nz], &inputs)
            .expect("lifted smooth realizes")
    };
    let mut max_err = 0f64;
    for z in 0..grid.nz {
        for y in 0..grid.ny {
            for x in 0..grid.nx {
                let got = out.get(&[x as i64, y as i64, z as i64]).as_f64();
                max_err = max_err.max((got - reference.get(x, y, z)).abs());
            }
        }
    }

    println!("legacy (VM)          : {} ms", ms(vm));
    println!("legacy (native)      : {} ms", ms(native));
    println!("lifted, naive sched  : {} ms", ms(scalar_time));
    println!("lifted, parallel     : {} ms", ms(lifted_time));
    println!(
        "speedup vs VM        : {:.2}x",
        vm.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9)
    );
    println!(
        "speedup vs native    : {:.2}x",
        native.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9)
    );
    println!("max |error|          : {max_err:e}");
    println!("\n(generated Halide source below)\n");
    println!("{}", lifted.halide_source());
}
