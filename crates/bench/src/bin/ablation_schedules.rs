//! Ablation: how much of the lifted kernels' speedup comes from each schedule
//! feature (the design choices the paper delegates to the Halide autotuner).
//!
//! For each lifted PhotoFlow filter the harness times the same lifted pipeline
//! under a ladder of schedules: fully naive, tiled only, parallel only,
//! vectorized only, the default stencil schedule (all three), and a short
//! autotuning run (the reproduction-scale analogue of the paper's six-hour
//! OpenTuner search).

use helium_apps::photoflow::PhotoFilter;
use helium_bench::{
    buffer_from_layout, lift_photoflow, ms, time_lifted, BENCH_HEIGHT, BENCH_WIDTH,
};
use helium_halide::{autotune, RealizeInputs, Schedule, TuneConfig};
use std::time::Duration;

fn main() {
    let reps = 3;
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  best-tuned-schedule",
        "Filter", "naive", "tiled", "parallel", "vector", "default", "tuned"
    );
    for filter in [
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Sharpen,
        PhotoFilter::Invert,
    ] {
        let (app, lifted) = lift_photoflow(filter, BENCH_WIDTH, BENCH_HEIGHT);

        let naive = time_lifted(&app, &lifted, Schedule::naive(), reps);
        let tiled = time_lifted(
            &app,
            &lifted,
            Schedule::naive().with_tile(Some((64, 32))),
            reps,
        );
        let parallel = time_lifted(&app, &lifted, Schedule::naive().with_parallel(true), reps);
        let vector = time_lifted(&app, &lifted, Schedule::naive().with_vector_width(8), reps);
        let default = time_lifted(&app, &lifted, Schedule::stencil_default(), reps);

        // Autotune on the primary kernel (same inputs the timing helper uses).
        let kernel = lifted.primary();
        let out_layout = lifted.buffer(&kernel.output).expect("output layout");
        let extents: Vec<usize> = out_layout.extents.iter().map(|&e| e as usize).collect();
        let buffers: Vec<(String, helium_halide::Buffer)> = kernel
            .pipeline
            .images
            .keys()
            .map(|name| (name.clone(), buffer_from_layout(&app, &lifted, name)))
            .collect();
        let mut inputs = RealizeInputs::new();
        for (name, buf) in &buffers {
            inputs = inputs.with_image(name, buf);
        }
        for (name, value) in &kernel.parameter_values {
            inputs = inputs.with_param(name, *value);
        }
        let config = TuneConfig {
            max_candidates: 12,
            budget: Duration::from_secs(8),
            repetitions: 2,
            seed: 0x7E57,
        };
        let report = autotune(&kernel.pipeline, &extents, &inputs, &config)
            .expect("autotuning the lifted kernel succeeds");
        let tuned = time_lifted(&app, &lifted, report.best.clone(), reps);

        println!(
            "{:<14} {} {} {} {} {} {}  {}",
            filter.name(),
            ms(naive),
            ms(tiled),
            ms(parallel),
            ms(vector),
            ms(default),
            ms(tuned),
            report.best
        );
    }
    println!(
        "\n(all times in milliseconds, one output plane, {}x{} image;",
        BENCH_WIDTH, BENCH_HEIGHT
    );
    println!(" `tuned` re-times the autotuner's best schedule with the same repetitions)");
}
