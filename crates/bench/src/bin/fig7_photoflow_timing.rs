//! Regenerates the top half of the paper's Fig. 7: timing comparison between
//! the legacy PhotoFlow filters and the lifted Halide implementations.
//!
//! Two baselines are reported (see DESIGN.md §2): the legacy binary running
//! in the VM (the literal analogue of the shipped executable) and a native
//! scalar port of the same algorithm (a conservative upper bound on the
//! original's performance).

use helium_apps::photoflow::PhotoFilter;
use helium_bench::{
    lift_photoflow, ms, time_legacy_native, time_legacy_vm, time_lifted, BENCH_HEIGHT, BENCH_WIDTH,
};
use helium_halide::Schedule;

fn main() {
    let reps = 3;
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "Filter", "legacy-vm", "native-port", "lifted", "vs vm", "vs native"
    );
    for filter in [
        PhotoFilter::Invert,
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Sharpen,
        PhotoFilter::SharpenMore,
        PhotoFilter::Threshold,
        PhotoFilter::BoxBlur,
    ] {
        let result = std::panic::catch_unwind(|| lift_photoflow(filter, BENCH_WIDTH, BENCH_HEIGHT));
        let (app, lifted) = match result {
            Ok(v) => v,
            Err(_) => {
                println!("{:<14} (not lifted)", filter.name());
                continue;
            }
        };
        let vm = time_legacy_vm(&app, 1);
        let native = time_legacy_native(&app, reps);
        let lifted_time = time_lifted(&app, &lifted, Schedule::stencil_default(), reps);
        println!(
            "{:<14} {} {} {} {:>8.2}x {:>8.2}x",
            filter.name(),
            ms(vm),
            ms(native),
            ms(lifted_time),
            vm.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9),
            native.as_secs_f64() / lifted_time.as_secs_f64().max(1e-9),
        );
    }
    println!("\n(all times in milliseconds; one plane timed for the lifted kernels,");
    println!(" three planes for the legacy baselines — see EXPERIMENTS.md)");
}
