//! Regenerates the paper's Fig. 9: in-situ replacement — the lifted kernels
//! patched back into the host application and therefore constrained by the
//! host's tiling decisions.
//!
//! The host constraint is modelled by realizing the lifted kernel one host
//! tile (8 scanlines) at a time instead of over the whole image, which
//! bounds the parallelism and locality the schedule can exploit, exactly the
//! effect the paper reports for the patched Photoshop binaries.

use helium_apps::photoflow::{PhotoFilter, TILE_ROWS};
use helium_bench::{
    buffer_from_layout, lift_photoflow, ms, time_legacy_native, BENCH_HEIGHT, BENCH_WIDTH,
};
use helium_halide::{RealizeInputs, Realizer, Schedule};
use std::time::{Duration, Instant};

fn main() {
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>9}",
        "Filter", "native-port", "standalone", "in-situ", "speedup"
    );
    for filter in [
        PhotoFilter::Invert,
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Sharpen,
        PhotoFilter::SharpenMore,
        PhotoFilter::Threshold,
        PhotoFilter::BoxBlur,
    ] {
        let result = std::panic::catch_unwind(|| lift_photoflow(filter, BENCH_WIDTH, BENCH_HEIGHT));
        let (app, lifted) = match result {
            Ok(v) => v,
            Err(_) => {
                println!("{:<14} (not lifted)", filter.name());
                continue;
            }
        };
        let kernel = lifted.primary();
        let out_layout = lifted.buffer(&kernel.output).expect("layout");
        let extents: Vec<usize> = out_layout.extents.iter().map(|&e| e as usize).collect();
        let input_buffers: Vec<(String, helium_halide::Buffer)> = kernel
            .pipeline
            .images
            .keys()
            .map(|n| (n.clone(), buffer_from_layout(&app, &lifted, n)))
            .collect();
        let mut inputs = RealizeInputs::new();
        for (n, b) in &input_buffers {
            inputs = inputs.with_image(n, b);
        }
        for (n, v) in &kernel.parameter_values {
            inputs = inputs.with_param(n, *v);
        }

        let native = time_legacy_native(&app, 3);

        // Standalone: the full image in one realization, free to parallelize.
        let realizer = Realizer::new(Schedule::stencil_default());
        let mut standalone = Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            let _ = realizer
                .realize(&kernel.pipeline, &extents, &inputs)
                .expect("realize");
            standalone = standalone.min(start.elapsed());
        }

        // In-situ: the host hands the kernel one band of scanlines at a time.
        let tile_realizer = Realizer::new(Schedule::stencil_default().with_threads(2));
        let mut in_situ = Duration::MAX;
        let rows = extents[1];
        for _ in 0..3 {
            let start = Instant::now();
            let mut y = 0;
            while y < rows {
                let band = TILE_ROWS as usize;
                let band_extents = vec![extents[0], band.min(rows - y)];
                let _ = tile_realizer
                    .realize(&kernel.pipeline, &band_extents, &inputs)
                    .expect("tile realize");
                y += band;
            }
            in_situ = in_situ.min(start.elapsed());
        }

        println!(
            "{:<14} {} {} {} {:>8.2}x",
            filter.name(),
            ms(native),
            ms(standalone),
            ms(in_situ),
            native.as_secs_f64() / in_situ.as_secs_f64().max(1e-9)
        );
    }
}
