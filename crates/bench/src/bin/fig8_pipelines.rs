//! Regenerates the paper's Fig. 8: filter-pipeline performance — running the
//! lifted filters separately (materializing every intermediate) versus as one
//! fused Halide pipeline.

use helium_apps::photoflow::PhotoFilter;
use helium_bench::{buffer_from_layout, lift_photoflow, ms, BENCH_HEIGHT, BENCH_WIDTH};
use helium_halide::{RealizeInputs, Realizer, Schedule};
use std::time::Instant;

fn main() {
    // The paper's Photoshop pipeline is blur -> invert -> sharpen more; we
    // fuse the lifted blur and invert stages (sharpen-more composes the same
    // way) and report separate vs fused execution.
    let (blur_app, blur) = lift_photoflow(PhotoFilter::Blur, BENCH_WIDTH, BENCH_HEIGHT);
    let (_, invert) = lift_photoflow(PhotoFilter::Invert, BENCH_WIDTH, BENCH_HEIGHT);

    let blur_kernel = blur.primary();
    let invert_kernel = invert.primary();
    let input_name = blur_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .expect("input");
    let invert_input = invert_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .expect("input");
    let input = buffer_from_layout(&blur_app, &blur, &input_name);
    let extents: Vec<usize> = blur
        .buffer(&blur_kernel.output)
        .expect("output layout")
        .extents
        .iter()
        .map(|&e| e as usize)
        .collect();

    let realizer = Realizer::new(Schedule::stencil_default());
    let reps = 3;

    let mut separate_best = std::time::Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let blurred = realizer
            .realize(
                &blur_kernel.pipeline,
                &extents,
                &RealizeInputs::new().with_image(&input_name, &input),
            )
            .expect("blur realizes");
        let _ = realizer
            .realize(
                &invert_kernel.pipeline,
                &extents,
                &RealizeInputs::new().with_image(&invert_input, &blurred),
            )
            .expect("invert realizes");
        separate_best = separate_best.min(start.elapsed());
    }

    let fused = invert_kernel
        .pipeline
        .compose_after(&blur_kernel.pipeline, &invert_input);
    let mut fused_best = std::time::Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = realizer
            .realize(
                &fused,
                &extents,
                &RealizeInputs::new().with_image(&input_name, &input),
            )
            .expect("fused pipeline realizes");
        fused_best = fused_best.min(start.elapsed());
    }

    println!("pipeline: blur -> invert (lifted kernels, one colour plane)");
    println!("standalone separate : {} ms", ms(separate_best));
    println!("standalone fused    : {} ms", ms(fused_best));
    println!(
        "fusion speedup      : {:.2}x",
        separate_best.as_secs_f64() / fused_best.as_secs_f64().max(1e-9)
    );
}
