//! Interpret-vs-Lowered and cached-vs-uncached comparison on the Fig. 7
//! filter set.
//!
//! Runs the criterion group and additionally writes a machine-readable
//! summary to `BENCH_lowering.json` in the workspace root: per filter, the
//! best-of-N wall-clock time for each backend under the stencil default
//! schedule; for the compile-once/run-many API the uncached (compile + run)
//! and cached (warm `CompiledPipeline::run`) times and the amortization
//! factor between them; and for the execution tiers a `scalar_ns` /
//! `simd_ns` pair — steady-state runs with fused SIMD kernels disabled and
//! enabled — plus the winning vector width of an 8/16/32 sweep
//! (`best_width`), so tier regressions are visible per PR.
//!
//! The report also carries the fused lane families' columns: miniGMG smooth
//! as a `Float32` pipeline timed per-op vs the `[f32; W]` fused tier
//! (`f32_simd_speedup`) and a histogram-style 64-bit binning pipeline timed
//! against the `[i64; W/2]` tier (`i64_simd_speedup`), each verified
//! bit-identical to the interpreter oracle before timing — plus a
//! `reductions` section timing pipelines whose hot path is an *update
//! definition* (the RDom hist64 and a miniGMG residual-norm reduction)
//! end-to-end compiled against the interpreter's `run_update` path
//! (`reduction_speedup`, gated ≥ 1.5× in CI), after asserting the updates
//! really execute through the compiled engine and match the oracle.
//!
//! A `locality` section times the locality tier: sliding-window `compute_at`
//! against plain recompute on a two-stage vertical blur (`window_speedup`,
//! gated ≥ 1.2× in CI, after asserting `window_rows_reused` really fired)
//! and a multi-output fused nest against per-stage `compute_root` nests on a
//! pointwise `compose_after` chain (`multi_output_speedup`, gated ≥ 1.2×,
//! after asserting the chain collapsed into exactly one shared nest) — both
//! bit-identical to the interpreter oracle before any timing counts.
//!
//! Setting `HELIUM_BENCH_SMOKE=1` skips the criterion group and writes the
//! report from a reduced configuration — CI uses this to exercise the cached
//! realize path on every PR without burning minutes.

use criterion::{criterion_group, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{
    hist64_pipeline, hist64_rdom_pipeline, lift_photoflow, minigmg_residual_norm,
    minigmg_smooth_f32, minigmg_smooth_f64, pointwise_chain_pipeline, time_lifted_on,
    two_stage_blur_pipeline, LiftedRealizeSetup,
};
use helium_halide::{
    arch_rows_executed, set_target_override, Buffer, CompileOptions, CounterSnapshot, ExecBackend,
    Feature, Pipeline, RealizeInputs, Realizer, Schedule, Target, Tier,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const FILTERS: [PhotoFilter; 3] = [PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen];

fn smoke_mode() -> bool {
    std::env::var("HELIUM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    group.sample_size(10);
    for filter in FILTERS {
        let (app, lifted) = lift_photoflow(filter, 96, 64);
        for (backend, label) in [
            (ExecBackend::Interpret, "interpret"),
            (ExecBackend::Lowered, "lowered"),
        ] {
            group.bench_function(format!("{}_{label}", filter.name()), |b| {
                b.iter(|| time_lifted_on(&app, &lifted, Schedule::stencil_default(), backend, 1))
            });
        }
        // The compile/run split (input materialization hoisted out of the
        // timed closures): uncached compiles a fresh CompiledPipeline per
        // iteration; cached times only warm runs of one compiled pipeline.
        let setup = LiftedRealizeSetup::new(&app, &lifted);
        let inputs = setup.inputs();
        group.bench_function(format!("{}_uncached", filter.name()), |b| {
            b.iter(|| {
                let compiled = setup.compile(&Schedule::stencil_default(), ExecBackend::Lowered);
                compiled.run(&inputs, &setup.extents).expect("run")
            })
        });
        let compiled = setup.compile(&Schedule::stencil_default(), ExecBackend::Lowered);
        let _ = compiled.run(&inputs, &setup.extents).expect("warm-up run");
        group.bench_function(format!("{}_cached", filter.name()), |b| {
            b.iter(|| compiled.run(&inputs, &setup.extents).expect("run"))
        });
    }
    group.finish();
}

/// Compile a pipeline for the lowered backend with its execution target
/// pinned per [`CompileOptions::target`] (resolved once at compile time).
fn compile_pinned(
    pipeline: &Pipeline,
    schedule: &Schedule,
    target: Target,
) -> helium_halide::CompiledPipeline {
    pipeline
        .compile(
            schedule,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                target: Some(target),
                ..CompileOptions::default()
            },
        )
        .expect("compile")
}

/// Steady-state best-of-`reps` timing of warm runs of a compiled pipeline.
fn time_compiled_runs(
    compiled: &helium_halide::CompiledPipeline,
    inputs: &RealizeInputs<'_>,
    extents: &[usize],
    reps: usize,
) -> Duration {
    let _ = compiled.run(inputs, extents).expect("warm-up run");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents).expect("run");
        best = best.min(start.elapsed());
    }
    best
}

/// Compiled-vs-interpreter split for a pipeline whose hot path is an update
/// (reduction) definition: assert the lowered backend executes every update
/// through the compiled engine (no `run_update` on the hot path) and matches
/// the interpreter oracle bit-for-bit, then time warm runs of both backends.
/// Returns `(interpret, compiled, speedup)`.
fn reduction_split(
    name: &str,
    pipeline: &Pipeline,
    input_name: &str,
    input: &Buffer,
    extents: &[usize],
    reps: usize,
) -> (Duration, Duration, f64) {
    let inputs = RealizeInputs::new().with_image(input_name, input);
    let schedule = Schedule::stencil_default();
    let compiled = pipeline
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Lowered,
                ..CompileOptions::default()
            },
        )
        .expect("compile");
    let out = compiled.run(&inputs, extents).expect("compiled run");
    let counts = compiled.update_counts(&inputs, extents).expect("counts");
    assert_eq!(
        counts.interpreted, 0,
        "{name}: updates must execute compiled, got {counts:?}"
    );
    assert!(
        counts.compiled > 0,
        "{name}: no update definitions compiled"
    );
    let interp_compiled = pipeline
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Interpret,
                ..CompileOptions::default()
            },
        )
        .expect("compile interpreter");
    let oracle = interp_compiled
        .run(&inputs, extents)
        .expect("interpreter run");
    assert_eq!(out, oracle, "{name}: compiled updates diverged from oracle");

    let interpret = time_compiled_runs(&interp_compiled, &inputs, extents, reps);
    let compiled_t = time_compiled_runs(&compiled, &inputs, extents, reps);
    let speedup = interpret.as_secs_f64() / compiled_t.as_secs_f64().max(1e-12);
    println!(
        "lowering: {name:<22} interpret={interpret:?} compiled={compiled_t:?} \
         reduction_speedup={speedup:.2}x"
    );
    (interpret, compiled_t, speedup)
}

/// Per-op tier vs fused lane family for one pipeline: verify the fused
/// output bit-identical to the interpreter oracle, then time the per-op tier
/// and a width sweep of the fused tier. Returns
/// `(scalar, simd, best_width, speedup)`.
fn lane_family_split(
    name: &str,
    pipeline: &Pipeline,
    input_name: &str,
    input: &Buffer,
    extents: &[usize],
    expect_family: &str,
    reps: usize,
) -> (Duration, Duration, usize, f64) {
    let inputs = RealizeInputs::new().with_image(input_name, input);
    let schedule = Schedule::stencil_default();
    // Correctness gate before timing: the fused tier must be active on the
    // expected lane family and bit-identical to the interpreter.
    let compiled = compile_pinned(pipeline, &schedule, Target::detect().with_tier(Tier::Simd));
    let fused = compiled.run(&inputs, extents).expect("fused run");
    let counts = compiled
        .fused_store_counts(&inputs, extents)
        .expect("counts");
    let family_count = match expect_family {
        "f32" => counts.lanes_f32,
        "f64" => counts.lanes_f64,
        "i64" => counts.lanes_i64,
        _ => counts.lanes_i32,
    };
    assert!(
        family_count > 0,
        "{name}: expected the {expect_family} fused lane family, got {counts:?}"
    );
    let oracle = Realizer::new(schedule.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(pipeline, extents, &inputs)
        .expect("oracle");
    assert_eq!(fused, oracle, "{name}: fused output diverged from oracle");

    let scalar_compiled = compile_pinned(
        pipeline,
        &schedule,
        Target::detect().with_tier(Tier::Scalar),
    );
    let scalar = time_compiled_runs(&scalar_compiled, &inputs, extents, reps);
    let (mut best_width, mut simd) = (0usize, Duration::MAX);
    for width in [8usize, 16, 32] {
        // Each swept width compiles a different fused kernel (its own cache
        // key), so every one is pinned to the fused tier and oracle-gated
        // before its timing counts (on the same compiled pipeline).
        let s = schedule.clone().with_vector_width(width);
        let swept = compile_pinned(pipeline, &s, Target::detect().with_tier(Tier::Simd));
        let out = swept.run(&inputs, extents).expect("swept run");
        assert_eq!(out, oracle, "{name}: width {width} diverged from oracle");
        let t = time_compiled_runs(&swept, &inputs, extents, reps);
        if t < simd {
            simd = t;
            best_width = width;
        }
    }
    let speedup = scalar.as_secs_f64() / simd.as_secs_f64().max(1e-12);
    println!(
        "lowering: {name:<18} scalar={scalar:?} simd={simd:?} \
         {expect_family}_simd_speedup={speedup:.2}x best_width={best_width}"
    );
    (scalar, simd, best_width, speedup)
}

/// Portable lane loops vs the hand-written AVX2 `core::arch` kernels on one
/// compiled shape: assert the arch path really executes (run-time counter —
/// equality alone would be vacuous under silent fallback) and is
/// bit-identical to the portable lanes, then time warm runs of both. Returns
/// `(portable, arch, speedup)`, or `None` on hosts without AVX2.
fn arch_split(
    name: &str,
    pipeline: &Pipeline,
    input_name: &str,
    input: &Buffer,
    extents: &[usize],
    reps: usize,
) -> Option<(Duration, Duration, f64)> {
    if !Target::detect().has(Feature::Avx2) {
        println!("lowering: {name}: host does not report AVX2, skipping arch split");
        return None;
    }
    let inputs = RealizeInputs::new().with_image(input_name, input);
    // Serial, widest chunks: the split measures the kernel bodies, and
    // thread-pool coordination noise on a small grid would otherwise swamp
    // the per-chunk delta between the two ISAs.
    let schedule = Schedule::stencil_default()
        .with_parallel(false)
        .with_vector_width(32);
    let portable_c = compile_pinned(
        pipeline,
        &schedule,
        Target::portable().with_tier(Tier::Simd),
    );
    let arch_c = compile_pinned(
        pipeline,
        &schedule,
        Target::with_features(&[Feature::Avx2]).with_tier(Tier::Simd),
    );
    let portable_out = portable_c.run(&inputs, extents).expect("portable run");
    let before = arch_rows_executed();
    let arch_out = arch_c.run(&inputs, extents).expect("arch run");
    assert!(
        arch_rows_executed() > before,
        "{name}: the AVX2 kernels must actually execute"
    );
    assert_eq!(
        arch_out, portable_out,
        "{name}: arch kernels diverged from the portable lanes"
    );
    let portable = time_compiled_runs(&portable_c, &inputs, extents, reps);
    let arch = time_compiled_runs(&arch_c, &inputs, extents, reps);
    let speedup = portable.as_secs_f64() / arch.as_secs_f64().max(1e-12);
    println!("lowering: {name:<18} portable={portable:?} arch={arch:?} arch_speedup={speedup:.2}x");
    Some((portable, arch, speedup))
}

/// Sliding-window `compute_at` vs plain `compute_at` on the two-stage
/// vertical blur: oracle-gate both variants, assert the window really
/// compiles and re-uses rows at run time (non-vacuity), then time warm runs
/// of each. Returns `(plain, sliding, speedup)`.
fn window_split(
    name: &str,
    pipeline: &Pipeline,
    input: &Buffer,
    extents: &[usize],
    reps: usize,
) -> (Duration, Duration, f64) {
    let inputs = RealizeInputs::new().with_image("in", input);
    // Serial attach loop: every iteration after the first is warm, so the
    // measured delta is pure recompute-vs-reuse (parallel chunks would
    // restart the window cold per chunk).
    let base = Schedule::naive()
        .with_vector_width(8)
        .with_compute_at("blur_x", "x_1");
    let slid = base.clone().with_store_sliding("blur_x");
    let opts = CompileOptions {
        backend: ExecBackend::Lowered,
        ..CompileOptions::default()
    };
    let plain_c = pipeline.compile(&base, &opts).expect("compile plain");
    let slid_c = pipeline.compile(&slid, &opts).expect("compile sliding");
    // Correctness gate before timing: both variants bit-identical to the
    // interpreter oracle.
    let oracle = Realizer::new(base.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(pipeline, extents, &inputs)
        .expect("oracle");
    let plain_out = plain_c.run(&inputs, extents).expect("plain run");
    assert_eq!(plain_out, oracle, "{name}: plain compute_at diverged");
    assert_eq!(
        plain_c.sliding_windows(&inputs, extents).expect("windows"),
        0,
        "{name}: plain schedule must not slide"
    );
    // Non-vacuity gate: the sliding schedule compiles exactly one window and
    // actually re-uses rows across attach iterations.
    let before = CounterSnapshot::take();
    let slid_out = slid_c.run(&inputs, extents).expect("sliding run");
    let reused = before.delta().window_rows_reused;
    assert_eq!(slid_out, oracle, "{name}: sliding window diverged");
    assert_eq!(
        slid_c.sliding_windows(&inputs, extents).expect("windows"),
        1,
        "{name}: the sliding schedule must compile one window"
    );
    assert!(
        reused > 0,
        "{name}: no rows re-used — the window is vacuous"
    );

    let plain = time_compiled_runs(&plain_c, &inputs, extents, reps);
    let sliding = time_compiled_runs(&slid_c, &inputs, extents, reps);
    let speedup = plain.as_secs_f64() / sliding.as_secs_f64().max(1e-12);
    println!(
        "lowering: {name:<18} plain={plain:?} sliding={sliding:?} \
         window_speedup={speedup:.2}x rows_reused={reused}"
    );
    (plain, sliding, speedup)
}

/// Multi-output fusion vs per-stage nests on the pointwise `compose_after`
/// chain: `compute_root` every upstream stage in both variants, oracle-gate
/// both, assert the fused variant really collapses into one shared nest
/// (non-vacuity), then time warm runs of each. Returns
/// `(unfused, fused, speedup)`.
fn multi_output_split(
    name: &str,
    pipeline: &Pipeline,
    input: &Buffer,
    extents: &[usize],
    reps: usize,
) -> (Duration, Duration, f64) {
    let inputs = RealizeInputs::new().with_image("in", input);
    // Parallel outer loop: the unfused chain spawns one worker set per
    // stage nest, the fused nest spawns once — exactly the re-walk the
    // locality tier removes.
    let mut base = Schedule::naive().with_vector_width(32).with_parallel(true);
    for func in pipeline.funcs.keys().filter(|n| **n != pipeline.output) {
        base = base.with_compute_root(func);
    }
    let fused_s = base.clone().with_fuse_outputs(true);
    let opts = CompileOptions {
        backend: ExecBackend::Lowered,
        ..CompileOptions::default()
    };
    let unfused_c = pipeline.compile(&base, &opts).expect("compile unfused");
    let fused_c = pipeline.compile(&fused_s, &opts).expect("compile fused");
    let oracle = Realizer::new(base.clone())
        .with_backend(ExecBackend::Interpret)
        .realize(pipeline, extents, &inputs)
        .expect("oracle");
    let unfused_out = unfused_c.run(&inputs, extents).expect("unfused run");
    assert_eq!(unfused_out, oracle, "{name}: unfused chain diverged");
    assert_eq!(
        unfused_c
            .multi_output_nests(&inputs, extents)
            .expect("nests"),
        0,
        "{name}: the unfused schedule must not fuse"
    );
    // Non-vacuity gate: the fused program holds one shared nest and every
    // run executes it as a multi-output dispatch.
    let before = CounterSnapshot::take();
    let fused_out = fused_c.run(&inputs, extents).expect("fused run");
    let nests = before.delta().multi_output_nests;
    assert_eq!(fused_out, oracle, "{name}: fused nest diverged");
    assert_eq!(
        fused_c.multi_output_nests(&inputs, extents).expect("nests"),
        1,
        "{name}: the chain must collapse into one shared nest"
    );
    assert!(nests >= 1, "{name}: the fused nest never executed");

    let unfused = time_compiled_runs(&unfused_c, &inputs, extents, reps);
    let fused = time_compiled_runs(&fused_c, &inputs, extents, reps);
    let speedup = unfused.as_secs_f64() / fused.as_secs_f64().max(1e-12);
    println!(
        "lowering: {name:<18} unfused={unfused:?} fused={fused:?} \
         multi_output_speedup={speedup:.2}x nests_per_run={nests}"
    );
    (unfused, fused, speedup)
}

fn write_report(reps: usize, width: usize, height: usize) {
    let mut entries = String::new();
    for (i, filter) in FILTERS.iter().enumerate() {
        let (app, lifted) = lift_photoflow(*filter, width, height);
        let schedule = Schedule::stencil_default();
        let interpret = time_lifted_on(
            &app,
            &lifted,
            schedule.clone(),
            ExecBackend::Interpret,
            reps,
        );
        let lowered = time_lifted_on(&app, &lifted, schedule.clone(), ExecBackend::Lowered, reps);
        // Cache amortization at request-rate granularity: small realizes over
        // the same lifted kernel, where per-call execution is cheap enough
        // that redoing planning/lowering per call would dominate.
        let setup = LiftedRealizeSetup::new(&app, &lifted);
        let small: Vec<usize> = setup.extents.iter().map(|&e| (e / 4).max(8)).collect();
        let uncached =
            setup.time_compiled(&schedule, ExecBackend::Lowered, reps, true, Some(&small));
        let cached =
            setup.time_compiled(&schedule, ExecBackend::Lowered, reps, false, Some(&small));
        // Execution-tier split at full extents, steady state: the per-op
        // tier (fused kernels disabled) against the fused SIMD tier, with a
        // vector-width sweep — widths now generate different fused kernels.
        // Targets resolve once at compile time, and `time_compiled` compiles
        // inside the pinned region, so the process-wide override pins each
        // measurement's tier — an inherited HELIUM_FORCE_* environment
        // variable cannot silently make both columns measure the same tier.
        set_target_override(Some(Target::detect().with_tier(Tier::Scalar)));
        let scalar = setup.time_compiled(&schedule, ExecBackend::Lowered, reps, false, None);
        set_target_override(Some(Target::detect()));
        let (mut best_width, mut simd) = (0usize, std::time::Duration::MAX);
        for width in [8usize, 16, 32] {
            let s = schedule.clone().with_vector_width(width);
            let t = setup.time_compiled(&s, ExecBackend::Lowered, reps, false, None);
            if t < simd {
                simd = t;
                best_width = width;
            }
        }
        set_target_override(None);
        let speedup = interpret.as_secs_f64() / lowered.as_secs_f64().max(1e-12);
        let cache_speedup = uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12);
        let simd_speedup = scalar.as_secs_f64() / simd.as_secs_f64().max(1e-12);
        if i > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"filter\": \"{}\", \"interpret_ns\": {}, \"lowered_ns\": {}, \"speedup\": {:.3}, \
             \"cache_extents\": [{}, {}], \"uncached_ns\": {}, \"cached_ns\": {}, \"cache_speedup\": {:.3}, \
             \"scalar_ns\": {}, \"simd_ns\": {}, \"simd_speedup\": {:.3}, \"best_width\": {}}}",
            filter.name(),
            interpret.as_nanos(),
            lowered.as_nanos(),
            speedup,
            small[0],
            small.get(1).copied().unwrap_or(1),
            uncached.as_nanos(),
            cached.as_nanos(),
            cache_speedup,
            scalar.as_nanos(),
            simd.as_nanos(),
            simd_speedup,
            best_width
        );
        println!(
            "lowering: {:<10} interpret={interpret:?} lowered={lowered:?} speedup={speedup:.2}x \
             uncached={uncached:?} cached={cached:?} cache_speedup={cache_speedup:.2}x \
             scalar={scalar:?} simd={simd:?} simd_speedup={simd_speedup:.2}x best_width={best_width}",
            filter.name()
        );
    }
    // The fused lane families beyond the 32-bit integer one: miniGMG smooth
    // as a Float32 pipeline ([f32; W]) and 64-bit histogram binning
    // ([i64; W/2]), each oracle-verified before timing.
    let smoke = smoke_mode();
    let (nx, ny, nz) = if smoke { (32, 32, 6) } else { (64, 64, 12) };
    let (smooth, grid) = minigmg_smooth_f32(nx, ny, nz, 0x6116);
    let (s_scalar, s_simd, s_width, f32_speedup) = lane_family_split(
        "minigmg_smooth_f32",
        &smooth,
        "grid",
        &grid,
        &[nx, ny, nz],
        "f32",
        reps,
    );
    let (hw, hh) = if smoke { (96, 64) } else { (192, 128) };
    let (hist, hist_in) = hist64_pipeline(hw, hh, 0xB16B);
    let (h_scalar, h_simd, h_width, i64_speedup) =
        lane_family_split("hist64", &hist, "in", &hist_in, &[hw, hh], "i64", reps);
    // Double precision rides the [f64; W/2] family — no rounding casts, f64
    // lanes are the reference representation.
    let (dsmooth, dgrid) = minigmg_smooth_f64(nx, ny, nz, 0x6116);
    let (d_scalar, d_simd, d_width, f64_speedup) = lane_family_split(
        "minigmg_smooth_f64",
        &dsmooth,
        "grid",
        &dgrid,
        &[nx, ny, nz],
        "f64",
        reps,
    );
    // The explicit AVX2 core::arch kernels vs the portable lane loops, on
    // the same fused shapes (oracle-verified + counter-guarded inside the
    // split). `arch_speedup` is the best demonstrated arch win; 0.0 with
    // `avx2_detected: 0` means the host has no AVX2 and the column is moot.
    let avx2_detected = Target::detect().has(Feature::Avx2);
    // Dedicated grid for the arch splits, even in smoke mode: the smoke grid
    // is small enough that fixed per-run overhead hides the kernel delta the
    // split exists to measure (still well under a second per column).
    let (anx, any, anz) = (64, 64, 16);
    let arch_f32 = {
        let (p, g) = minigmg_smooth_f32(anx, any, anz, 0x6116);
        arch_split(
            "smooth_f32_arch",
            &p,
            "grid",
            &g,
            &[anx, any, anz],
            reps.max(30),
        )
    };
    let arch_f64 = {
        let (p, g) = minigmg_smooth_f64(anx, any, anz, 0x6116);
        arch_split(
            "smooth_f64_arch",
            &p,
            "grid",
            &g,
            &[anx, any, anz],
            reps.max(30),
        )
    };
    let arch_i32 = {
        let (chain_p, chain_in) = pointwise_chain_pipeline(hw, hh, 4, 0xC4A1);
        arch_split(
            "chain_i32_arch",
            &chain_p,
            "in",
            &chain_in,
            &[hw, hh],
            reps.max(30),
        )
    };
    let arch_speedup = [arch_f32, arch_f64, arch_i32]
        .iter()
        .flatten()
        .map(|(_, _, sp)| *sp)
        .fold(0.0f64, f64::max);

    // Lowered reductions: pipelines whose hot path is an update definition,
    // run end-to-end compiled (no `run_update`) against the interpreter.
    let (rw, rh) = if smoke { (96, 64) } else { (256, 192) };
    let (hist_rdom, hist_rdom_in) = hist64_rdom_pipeline(rw, rh, 0xB16B);
    let (hr_interp, hr_compiled, hist_speedup) =
        reduction_split("hist64_rdom", &hist_rdom, "in", &hist_rdom_in, &[256], reps);
    let (gx, gy, gz) = if smoke { (32, 32, 8) } else { (64, 64, 32) };
    let (norm, norm_grid) = minigmg_residual_norm(gx, gy, gz, 0x6116);
    let (n_interp, n_compiled, norm_speedup) = reduction_split(
        "minigmg_residual_norm",
        &norm,
        "grid",
        &norm_grid,
        &[1],
        reps,
    );
    let reduction_speedup = hist_speedup.min(norm_speedup);

    // The locality tier: sliding-window compute_at reuse and multi-output
    // fused nests, each oracle-gated and non-vacuity-checked before timing.
    let (ww, wh) = if smoke { (256, 160) } else { (768, 512) };
    let (window_p, window_in) = two_stage_blur_pipeline(ww, wh, 0x51DE);
    let (w_plain, w_sliding, window_speedup) =
        window_split("blur_window", &window_p, &window_in, &[ww, wh], reps.max(3));
    // Request-rate-sized realizes: per-nest worker spawning is the overhead
    // fusion removes, so the split runs where that overhead is visible and
    // takes best-of-many to keep the µs-scale measurement stable.
    let (cw, ch, stages) = if smoke { (96, 64, 8) } else { (128, 96, 8) };
    let (chain_p, chain_in) = pointwise_chain_pipeline(cw, ch, stages, 0xC4A1);
    let (m_unfused, m_fused, multi_output_speedup) = multi_output_split(
        "pointwise_chain",
        &chain_p,
        &chain_in,
        &[cw, ch],
        reps.max(12),
    );
    let locality = format!(
        "    {{\"pipeline\": \"two_stage_blur\", \"extents\": [{ww}, {wh}], \
         \"plain_ns\": {}, \"sliding_ns\": {}, \"window_speedup\": {window_speedup:.3}}},\n    \
         {{\"pipeline\": \"pointwise_chain\", \"extents\": [{cw}, {ch}], \"stages\": {stages}, \
         \"unfused_ns\": {}, \"fused_ns\": {}, \"multi_output_speedup\": {multi_output_speedup:.3}}}",
        w_plain.as_nanos(),
        w_sliding.as_nanos(),
        m_unfused.as_nanos(),
        m_fused.as_nanos(),
    );
    let reductions = format!(
        "    {{\"pipeline\": \"hist64_rdom\", \"extents\": [{rw}, {rh}], \"bins\": 256, \
         \"interpret_ns\": {}, \"compiled_ns\": {}, \"reduction_speedup\": {hist_speedup:.3}}},\n    \
         {{\"pipeline\": \"minigmg_residual_norm\", \"extents\": [{gx}, {gy}, {gz}], \
         \"interpret_ns\": {}, \"compiled_ns\": {}, \"reduction_speedup\": {norm_speedup:.3}}}",
        hr_interp.as_nanos(),
        hr_compiled.as_nanos(),
        n_interp.as_nanos(),
        n_compiled.as_nanos(),
    );
    let lane_families = format!(
        "    {{\"pipeline\": \"minigmg_smooth_f32\", \"family\": \"f32\", \"extents\": [{nx}, {ny}, {nz}], \
         \"scalar_ns\": {}, \"simd_ns\": {}, \"f32_simd_speedup\": {f32_speedup:.3}, \"best_width\": {s_width}}},\n    \
         {{\"pipeline\": \"hist64\", \"family\": \"i64\", \"extents\": [{hw}, {hh}], \
         \"scalar_ns\": {}, \"simd_ns\": {}, \"i64_simd_speedup\": {i64_speedup:.3}, \"best_width\": {h_width}}},\n    \
         {{\"pipeline\": \"minigmg_smooth_f64\", \"family\": \"f64\", \"extents\": [{nx}, {ny}, {nz}], \
         \"scalar_ns\": {}, \"simd_ns\": {}, \"f64_simd_speedup\": {f64_speedup:.3}, \"best_width\": {d_width}}}",
        s_scalar.as_nanos(),
        s_simd.as_nanos(),
        h_scalar.as_nanos(),
        h_simd.as_nanos(),
        d_scalar.as_nanos(),
        d_simd.as_nanos(),
    );
    let arch_entries = [
        ("smooth_f32_arch", arch_f32),
        ("smooth_f64_arch", arch_f64),
        ("chain_i32_arch", arch_i32),
    ]
    .iter()
    .filter_map(|(n, v)| {
        v.map(|(p, a, _)| {
            format!(
                "    {{\"pipeline\": \"{n}\", \"portable_ns\": {}, \"arch_ns\": {}}}",
                p.as_nanos(),
                a.as_nanos()
            )
        })
    })
    .collect::<Vec<_>>()
    .join(",\n");

    let json = format!(
        "{{\n  \"benchmark\": \"fig7_interpret_vs_lowered\",\n  \"schedule\": \"stencil_default\",\n  \"image\": [{width}, {height}],\n  \"reps\": {reps},\n  \"results\": [\n{entries}\n  ],\n  \"lane_families\": [\n{lane_families}\n  ],\n  \"reductions\": [\n{reductions}\n  ],\n  \"locality\": [\n{locality}\n  ],\n  \"arch\": [\n{arch_entries}\n  ],\n  \"avx2_detected\": {},\n  \"f32_simd_speedup\": {f32_speedup:.3},\n  \"i64_simd_speedup\": {i64_speedup:.3},\n  \"f64_simd_speedup\": {f64_speedup:.3},\n  \"arch_speedup\": {arch_speedup:.3},\n  \"reduction_speedup\": {reduction_speedup:.3},\n  \"window_speedup\": {window_speedup:.3},\n  \"multi_output_speedup\": {multi_output_speedup:.3}\n}}\n",
        u8::from(avx2_detected),
    );
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lowering.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("lowering: wrote {}", path.display()),
        Err(e) => eprintln!("lowering: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_lowering);

fn main() {
    if smoke_mode() {
        // CI smoke: small image, few reps, no criterion group — still lifts
        // all three filters and exercises both the cold and the cached
        // realize paths end to end.
        println!("lowering: HELIUM_BENCH_SMOKE set, running reduced report only");
        write_report(2, 48, 32);
    } else {
        benches();
        write_report(7, 96, 64);
    }
}
