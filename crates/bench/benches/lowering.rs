//! Interpret-vs-Lowered comparison on the Fig. 7 filter set.
//!
//! Runs the criterion group and additionally writes a machine-readable
//! summary to `BENCH_lowering.json` in the current directory: per filter, the
//! best-of-N wall-clock time for each backend under the stencil default
//! schedule, plus the speedup factor.

use criterion::{criterion_group, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, time_lifted_on};
use helium_halide::{ExecBackend, Schedule};
use std::fmt::Write as _;

const FILTERS: [PhotoFilter; 3] = [PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen];
const REPS: usize = 7;

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    group.sample_size(10);
    for filter in FILTERS {
        let (app, lifted) = lift_photoflow(filter, 96, 64);
        for (backend, label) in [
            (ExecBackend::Interpret, "interpret"),
            (ExecBackend::Lowered, "lowered"),
        ] {
            group.bench_function(format!("{}_{label}", filter.name()), |b| {
                b.iter(|| time_lifted_on(&app, &lifted, Schedule::stencil_default(), backend, 1))
            });
        }
    }
    group.finish();
}

fn write_report() {
    let mut entries = String::new();
    for (i, filter) in FILTERS.iter().enumerate() {
        let (app, lifted) = lift_photoflow(*filter, 96, 64);
        let schedule = Schedule::stencil_default();
        let interpret = time_lifted_on(
            &app,
            &lifted,
            schedule.clone(),
            ExecBackend::Interpret,
            REPS,
        );
        let lowered = time_lifted_on(&app, &lifted, schedule, ExecBackend::Lowered, REPS);
        let speedup = interpret.as_secs_f64() / lowered.as_secs_f64().max(1e-12);
        if i > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"filter\": \"{}\", \"interpret_ns\": {}, \"lowered_ns\": {}, \"speedup\": {:.3}}}",
            filter.name(),
            interpret.as_nanos(),
            lowered.as_nanos(),
            speedup
        );
        println!(
            "lowering: {:<10} interpret={interpret:?} lowered={lowered:?} speedup={speedup:.2}x",
            filter.name()
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"fig7_interpret_vs_lowered\",\n  \"schedule\": \"stencil_default\",\n  \"image\": [96, 64],\n  \"reps\": {REPS},\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lowering.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("lowering: wrote {}", path.display()),
        Err(e) => eprintln!("lowering: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_lowering);

fn main() {
    benches();
    write_report();
}
