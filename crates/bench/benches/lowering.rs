//! Interpret-vs-Lowered and cached-vs-uncached comparison on the Fig. 7
//! filter set.
//!
//! Runs the criterion group and additionally writes a machine-readable
//! summary to `BENCH_lowering.json` in the workspace root: per filter, the
//! best-of-N wall-clock time for each backend under the stencil default
//! schedule; for the compile-once/run-many API the uncached (compile + run)
//! and cached (warm `CompiledPipeline::run`) times and the amortization
//! factor between them; and for the execution tiers a `scalar_ns` /
//! `simd_ns` pair — steady-state runs with fused SIMD kernels disabled and
//! enabled — plus the winning vector width of an 8/16/32 sweep
//! (`best_width`), so tier regressions are visible per PR.
//!
//! Setting `HELIUM_BENCH_SMOKE=1` skips the criterion group and writes the
//! report from a reduced configuration — CI uses this to exercise the cached
//! realize path on every PR without burning minutes.

use criterion::{criterion_group, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, time_lifted_on, LiftedRealizeSetup};
use helium_halide::{set_simd_mode, ExecBackend, Schedule, SimdMode};
use std::fmt::Write as _;

const FILTERS: [PhotoFilter; 3] = [PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen];

fn smoke_mode() -> bool {
    std::env::var("HELIUM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    group.sample_size(10);
    for filter in FILTERS {
        let (app, lifted) = lift_photoflow(filter, 96, 64);
        for (backend, label) in [
            (ExecBackend::Interpret, "interpret"),
            (ExecBackend::Lowered, "lowered"),
        ] {
            group.bench_function(format!("{}_{label}", filter.name()), |b| {
                b.iter(|| time_lifted_on(&app, &lifted, Schedule::stencil_default(), backend, 1))
            });
        }
        // The compile/run split (input materialization hoisted out of the
        // timed closures): uncached compiles a fresh CompiledPipeline per
        // iteration; cached times only warm runs of one compiled pipeline.
        let setup = LiftedRealizeSetup::new(&app, &lifted);
        let inputs = setup.inputs();
        group.bench_function(format!("{}_uncached", filter.name()), |b| {
            b.iter(|| {
                let compiled = setup.compile(&Schedule::stencil_default(), ExecBackend::Lowered);
                compiled.run(&inputs, &setup.extents).expect("run")
            })
        });
        let compiled = setup.compile(&Schedule::stencil_default(), ExecBackend::Lowered);
        let _ = compiled.run(&inputs, &setup.extents).expect("warm-up run");
        group.bench_function(format!("{}_cached", filter.name()), |b| {
            b.iter(|| compiled.run(&inputs, &setup.extents).expect("run"))
        });
    }
    group.finish();
}

fn write_report(reps: usize, width: usize, height: usize) {
    let mut entries = String::new();
    for (i, filter) in FILTERS.iter().enumerate() {
        let (app, lifted) = lift_photoflow(*filter, width, height);
        let schedule = Schedule::stencil_default();
        let interpret = time_lifted_on(
            &app,
            &lifted,
            schedule.clone(),
            ExecBackend::Interpret,
            reps,
        );
        let lowered = time_lifted_on(&app, &lifted, schedule.clone(), ExecBackend::Lowered, reps);
        // Cache amortization at request-rate granularity: small realizes over
        // the same lifted kernel, where per-call execution is cheap enough
        // that redoing planning/lowering per call would dominate.
        let setup = LiftedRealizeSetup::new(&app, &lifted);
        let small: Vec<usize> = setup.extents.iter().map(|&e| (e / 4).max(8)).collect();
        let uncached =
            setup.time_compiled(&schedule, ExecBackend::Lowered, reps, true, Some(&small));
        let cached =
            setup.time_compiled(&schedule, ExecBackend::Lowered, reps, false, Some(&small));
        // Execution-tier split at full extents, steady state: the per-op
        // tier (fused kernels disabled) against the fused SIMD tier, with a
        // vector-width sweep — widths now generate different fused kernels.
        // Pin each measurement's tier explicitly so an inherited
        // HELIUM_FORCE_* environment variable cannot silently make both
        // columns measure the same tier.
        set_simd_mode(Some(SimdMode::ForceScalar));
        let scalar = setup.time_compiled(&schedule, ExecBackend::Lowered, reps, false, None);
        set_simd_mode(Some(SimdMode::Auto));
        let (mut best_width, mut simd) = (0usize, std::time::Duration::MAX);
        for width in [8usize, 16, 32] {
            let s = schedule.clone().with_vector_width(width);
            let t = setup.time_compiled(&s, ExecBackend::Lowered, reps, false, None);
            if t < simd {
                simd = t;
                best_width = width;
            }
        }
        set_simd_mode(None);
        let speedup = interpret.as_secs_f64() / lowered.as_secs_f64().max(1e-12);
        let cache_speedup = uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12);
        let simd_speedup = scalar.as_secs_f64() / simd.as_secs_f64().max(1e-12);
        if i > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"filter\": \"{}\", \"interpret_ns\": {}, \"lowered_ns\": {}, \"speedup\": {:.3}, \
             \"cache_extents\": [{}, {}], \"uncached_ns\": {}, \"cached_ns\": {}, \"cache_speedup\": {:.3}, \
             \"scalar_ns\": {}, \"simd_ns\": {}, \"simd_speedup\": {:.3}, \"best_width\": {}}}",
            filter.name(),
            interpret.as_nanos(),
            lowered.as_nanos(),
            speedup,
            small[0],
            small.get(1).copied().unwrap_or(1),
            uncached.as_nanos(),
            cached.as_nanos(),
            cache_speedup,
            scalar.as_nanos(),
            simd.as_nanos(),
            simd_speedup,
            best_width
        );
        println!(
            "lowering: {:<10} interpret={interpret:?} lowered={lowered:?} speedup={speedup:.2}x \
             uncached={uncached:?} cached={cached:?} cache_speedup={cache_speedup:.2}x \
             scalar={scalar:?} simd={simd:?} simd_speedup={simd_speedup:.2}x best_width={best_width}",
            filter.name()
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"fig7_interpret_vs_lowered\",\n  \"schedule\": \"stencil_default\",\n  \"image\": [{width}, {height}],\n  \"reps\": {reps},\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lowering.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("lowering: wrote {}", path.display()),
        Err(e) => eprintln!("lowering: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_lowering);

fn main() {
    if smoke_mode() {
        // CI smoke: small image, few reps, no criterion group — still lifts
        // all three filters and exercises both the cold and the cached
        // realize paths end to end.
        println!("lowering: HELIUM_BENCH_SMOKE set, running reduced report only");
        write_report(2, 48, 32);
    } else {
        benches();
        write_report(7, 96, 64);
    }
}
