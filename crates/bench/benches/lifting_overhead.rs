//! Criterion micro-benchmark of the lifting pipeline itself (code
//! localization + expression extraction), an ablation not reported in the
//! paper but useful for tracking the cost of the analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{photoflow_app, photoflow_request};
use helium_core::Lifter;

fn bench_lifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifting_overhead");
    group.sample_size(10);
    for filter in [PhotoFilter::Invert, PhotoFilter::Blur] {
        let app = photoflow_app(filter, 48, 32);
        let request = photoflow_request(&app);
        group.bench_function(format!("lift_{}", filter.name()), |b| {
            b.iter(|| {
                Lifter::new()
                    .lift(app.program(), &request, |with| app.fresh_cpu(with))
                    .expect("lift succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lifting);
criterion_main!(benches);
