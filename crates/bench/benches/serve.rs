//! Serving-stack benchmark: request throughput and tail latency through
//! `helium-serve`, plus the parallel-reduction accumulation split and an
//! overload scenario exercising deadlines, admission quotas, and p99-driven
//! load shedding.
//!
//! Writes a machine-readable summary to `BENCH_serve.json` in the workspace
//! root with the gated columns:
//!
//! * `serve_throughput_rps` — completed requests per second for a mixed
//!   warm workload (a pure i64-lane stencil and the RDom histogram over
//!   varying extents) pushed through a [`Server`] and collected via tickets;
//! * `p50_ns` / `p99_ns` — submit→complete latency quantiles from the
//!   server's HDR-style histogram;
//! * `parallel_reduce_speedup` — warm-run time of the hist64_rdom pipeline
//!   under `parallel = false` over the time under the default parallel
//!   schedule, whose integer accumulator nest runs the privatize-then-merge
//!   deferred-accumulation path. Both runs are asserted bit-identical to the
//!   interpreter oracle (and the deferred path asserted active) before any
//!   timing counts;
//! * `shed_p99_improvement` — a sustained burst paced past worker
//!   saturation (4×, escalating under scheduler noise) is pushed through
//!   two identical servers, one with a p99 shedding target and one without;
//!   the column is `baseline p99 / shed p99` and must stay ≥ 1.0 (shedding
//!   never makes the tail worse, and every accepted ticket still
//!   completes);
//! * `expired_completed_fraction` — already-expired requests queued behind
//!   busy workers must all resolve with `DeadlineExceeded` (never hang,
//!   never burn a realize); the column is `resolved expired / expired
//!   counter` and must equal 1.0.
//!
//! Setting `HELIUM_BENCH_SMOKE=1` skips the criterion group and writes the
//! report from a reduced configuration — the CI `serve` job uses this and
//! gates the columns via `.github/scripts/bench_gate.py`.

use criterion::{criterion_group, Criterion};
use helium_bench::{hist64_pipeline, hist64_rdom_pipeline};
use helium_halide::{
    Buffer, CompileOptions, CompiledPipeline, CounterSnapshot, ExecBackend, RealizeError,
    RealizeInputs, Schedule,
};
use helium_serve::{ServeConfig, ServeRequest, Server, SubmitError, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::var("HELIUM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Steady-state best-of-`reps` timing of warm runs of a compiled pipeline.
fn time_compiled_runs(
    compiled: &CompiledPipeline,
    inputs: &RealizeInputs<'_>,
    extents: &[usize],
    reps: usize,
) -> Duration {
    let _ = compiled.run(inputs, extents).expect("warm-up run");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents).expect("run");
        best = best.min(start.elapsed());
    }
    best
}

/// Serial-vs-parallel split for the RDom histogram's accumulator nest:
/// assert both schedules bit-identical to the interpreter oracle and the
/// deferred privatize-then-merge path active, then time warm runs of both.
/// Returns `(serial, parallel, speedup)`.
fn parallel_reduce_split(rw: usize, rh: usize, reps: usize) -> (Duration, Duration, f64) {
    let (pipeline, input) = hist64_rdom_pipeline(rw, rh, 0xB16B);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let opts = CompileOptions::default();
    let serial = pipeline
        .compile(&Schedule::stencil_default().with_parallel(false), &opts)
        .expect("compile serial");
    let parallel = pipeline
        .compile(&Schedule::stencil_default(), &opts)
        .expect("compile parallel");
    let oracle = pipeline
        .compile(
            &Schedule::stencil_default(),
            &CompileOptions {
                backend: ExecBackend::Interpret,
                ..CompileOptions::default()
            },
        )
        .expect("compile oracle")
        .run(&inputs, &[256])
        .expect("oracle run");
    assert_eq!(
        serial.run(&inputs, &[256]).expect("serial run"),
        oracle,
        "serial schedule diverged from the oracle"
    );
    let counters = CounterSnapshot::take();
    assert_eq!(
        parallel.run(&inputs, &[256]).expect("parallel run"),
        oracle,
        "parallel schedule diverged from the oracle"
    );
    assert!(
        counters.delta().parallel_reduce_merges >= 1,
        "the deferred privatize-then-merge path must be active"
    );
    let serial_t = time_compiled_runs(&serial, &inputs, &[256], reps);
    let parallel_t = time_compiled_runs(&parallel, &inputs, &[256], reps);
    let speedup = serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-12);
    println!(
        "serve: hist64_rdom [{rw}, {rh}] serial={serial_t:?} parallel={parallel_t:?} \
         parallel_reduce_speedup={speedup:.2}x"
    );
    (serial_t, parallel_t, speedup)
}

struct Workload {
    compiled: Arc<CompiledPipeline>,
    input: Arc<Buffer>,
    input_name: &'static str,
    extents: Vec<Vec<usize>>,
}

/// The mixed request set: the pure i64-lane histogram stencil and the RDom
/// histogram reduction, each over several extents (distinct cache keys).
fn workloads(smoke: bool) -> Vec<Workload> {
    let opts = CompileOptions::default();
    let (pw, ph) = if smoke { (62, 46) } else { (126, 94) };
    let (pure, pure_in) = hist64_pipeline(pw, ph, 0xA11CE);
    let (rw, rh) = if smoke { (96, 64) } else { (192, 160) };
    let (rdom, rdom_in) = hist64_rdom_pipeline(rw, rh, 0xB16B);
    vec![
        Workload {
            compiled: Arc::new(
                pure.compile(&Schedule::stencil_default(), &opts)
                    .expect("compile pure"),
            ),
            input: Arc::new(pure_in),
            input_name: "in",
            extents: vec![vec![pw, ph], vec![pw / 2, ph / 2]],
        },
        Workload {
            compiled: Arc::new(
                rdom.compile(&Schedule::stencil_default(), &opts)
                    .expect("compile rdom"),
            ),
            input: Arc::new(rdom_in),
            input_name: "in",
            extents: vec![vec![256], vec![128]],
        },
    ]
}

fn request_for(w: &Workload, i: usize) -> ServeRequest {
    ServeRequest::new(Arc::clone(&w.compiled), &w.extents[i % w.extents.len()])
        .with_image(w.input_name, Arc::clone(&w.input))
}

/// Push `requests` mixed requests through a server and collect every
/// ticket; returns `(throughput_rps, latency digest)`. The caches are
/// warmed by a preliminary round so the timed burst measures steady-state
/// serving, not first-touch compilation.
fn serve_throughput(
    workers: usize,
    queue_depth: usize,
    requests: usize,
) -> (f64, helium_serve::LatencySummary) {
    let workloads = workloads(smoke_mode());
    // Warm every (pipeline, extents) key once, directly.
    for w in &workloads {
        for e in &w.extents {
            let inputs = RealizeInputs::new().with_image(w.input_name, &w.input);
            let _ = w.compiled.run(&inputs, e).expect("warm-up");
        }
    }
    let server = Server::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_queue_depth(queue_depth),
    );
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(requests);
    for i in 0..requests {
        let w = &workloads[i % workloads.len()];
        tickets.push(
            server
                .submit(request_for(w, i / workloads.len()))
                .expect("submit"),
        );
    }
    for t in tickets {
        let _ = t.wait().expect("served run");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-12);
    let stats = server.stats();
    assert_eq!(stats.completed, requests as u64);
    assert_eq!(stats.failed, 0);
    let rps = requests as f64 / elapsed;
    println!(
        "serve: {requests} requests on {} workers in {:.3}s -> {rps:.0} rps \
         (p50={}ns p99={}ns max={}ns)",
        server.worker_count(),
        elapsed,
        stats.latency.p50_ns,
        stats.latency.p99_ns,
        stats.latency.max_ns
    );
    let latency = stats.latency;
    server.shutdown();
    // Cache reconciliation on the served pipelines (sanity, not timing):
    // sharded stats must sum to the aggregate and every miss must be a
    // build or a coalesced wait.
    for w in &workloads {
        let stats = w.compiled.cache_stats();
        let shards = w.compiled.cache_shard_stats();
        assert_eq!(stats.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(stats.misses, shards.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(
            stats.misses,
            w.compiled.compiles() + w.compiled.coalesced_compiles()
        );
    }
    (rps, latency)
}

/// What the overload scenario measured; feeds the `overload` JSON section
/// and the two gated columns derived from it.
struct OverloadReport {
    workers: usize,
    paced_requests: usize,
    service_ns: u64,
    /// Arrival rate over drain rate for the paced burst that separated.
    saturation_factor: u32,
    baseline_p99_ns: u64,
    baseline_completed: u64,
    shed_p99_ns: u64,
    shed_completed: u64,
    shed_count: u64,
    shed_target_ns: u64,
    expired: u64,
    resolved_expired: u64,
    quota: usize,
    quota_rejected: u64,
    /// `baseline_p99 / shed_p99` — gated ≥ 1.0.
    shed_p99_improvement: f64,
    /// `resolved_expired / expired` — gated == 1.0.
    expired_completed_fraction: f64,
}

/// Submissions between pacing sleeps. Sleeping (rather than spin-waiting)
/// is what makes the burst meaningful on a single core: it yields the CPU
/// to the workers, so deliveries — and the live-p99 signal shedding reads —
/// interleave with submissions regardless of core count.
const BURST_BATCH: usize = 8;

/// One paced burst at `interval` per request through a fresh server.
/// Returns `(p99_ns, completed, shed)`. Every accepted ticket must
/// complete — the overload contract is "reject at the door, never strand
/// past it".
fn paced_burst(
    w: &Workload,
    workers: usize,
    interval: Duration,
    requests: usize,
    p99_target: Option<Duration>,
) -> (u64, u64, u64) {
    let mut config = ServeConfig::default()
        .with_workers(workers)
        .with_queue_depth(requests + 16);
    if let Some(target) = p99_target {
        config = config.with_p99_target(target);
    }
    let server = Server::start(config);
    // Prime the latency histogram past the shedding minimum with unloaded
    // round trips (identical for both legs, so the comparison is fair).
    for _ in 0..32 {
        let _ = server
            .submit(request_for(w, 0))
            .expect("priming submit")
            .wait()
            .expect("priming ticket");
    }
    let mut tickets: Vec<Ticket> = Vec::with_capacity(requests);
    let mut shed = 0u64;
    for i in 0..requests {
        if i % BURST_BATCH == 0 && i > 0 {
            std::thread::sleep(interval * BURST_BATCH as u32);
        }
        match server.try_submit(request_for(w, 0)) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Shed(_)) => shed += 1,
            Err(e) => panic!("unexpected rejection during paced burst: {e:?}"),
        }
    }
    for t in tickets {
        let _ = t.wait().expect("every accepted overload ticket completes");
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(
        stats.completed, stats.submitted,
        "accepted work all drained"
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.expired, 0);
    assert_eq!(
        stats.shed, shed,
        "shed counter reconciles with observations"
    );
    (stats.latency.p99_ns, stats.completed, shed)
}

/// The overload scenario: a 2×-saturation paced burst with and without a
/// p99 shedding target, a deadline leg (already-expired requests behind a
/// busy worker), and a quota leg (admission control at the door).
fn overload_legs(requests: usize) -> OverloadReport {
    let workloads = workloads(smoke_mode());
    let w = &workloads[0];
    let inputs = RealizeInputs::new().with_image(w.input_name, &w.input);
    // Pure service time (no serve-layer overhead) sets the pacing: arrival
    // interval t/(F·workers) is F× what the workers can drain. Start at 4×
    // saturation and escalate if scheduler noise (sleep overshoot, a busy
    // runner) dilutes the pressure below the point where shedding engages
    // and separates the tails.
    let service = time_compiled_runs(&w.compiled, &inputs, &w.extents[0], 16);
    let service_ns = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX).max(1);
    let workers = 2usize;
    let shed_target = service * 4;
    let mut factor = 4u32;
    let (baseline_p99_ns, baseline_completed, shed_p99_ns, shed_completed, shed_count) = loop {
        let interval = service / (factor * workers as u32);
        let (baseline_p99_ns, baseline_completed, baseline_shed) =
            paced_burst(w, workers, interval, requests, None);
        assert_eq!(baseline_shed, 0, "no target, no shedding");
        let (shed_p99_ns, shed_completed, shed_count) =
            paced_burst(w, workers, interval, requests, Some(shed_target));
        if shed_count > 0 && shed_p99_ns <= baseline_p99_ns {
            break (
                baseline_p99_ns,
                baseline_completed,
                shed_p99_ns,
                shed_completed,
                shed_count,
            );
        }
        assert!(
            factor < 32,
            "a {factor}x-saturation burst against a {shed_target:?} p99 target must shed \
             and improve the tail (shed={shed_count}, shed_p99={shed_p99_ns}ns, \
             baseline_p99={baseline_p99_ns}ns)"
        );
        println!(
            "serve: overload at {factor}x did not separate (shed={shed_count}, \
             shed_p99={shed_p99_ns}ns vs baseline={baseline_p99_ns}ns); escalating"
        );
        factor *= 2;
    };
    let shed_p99_improvement = baseline_p99_ns as f64 / (shed_p99_ns as f64).max(1.0);
    println!(
        "serve: overload {factor}x-saturation x{requests} (service={service:?}): \
         baseline p99={baseline_p99_ns}ns, shed p99={shed_p99_ns}ns \
         ({shed_count} shed) -> improvement {shed_p99_improvement:.2}x"
    );

    // Deadline leg: occupy the lone worker, then queue already-expired
    // requests behind it. Each must resolve `DeadlineExceeded` without
    // burning a realize, never hang.
    let expired_n = 24usize;
    let server = Server::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(expired_n + 16),
    );
    let lookups_before = {
        let s = w.compiled.cache_stats();
        s.hits + s.misses
    };
    let busy: Vec<Ticket> = (0..8)
        .map(|_| server.submit(request_for(w, 0)).expect("busy submit"))
        .collect();
    let doomed: Vec<Ticket> = (0..expired_n)
        .map(|_| {
            server
                .submit(request_for(w, 0).with_deadline(Instant::now()))
                .expect("doomed submit")
        })
        .collect();
    let mut resolved_expired = 0u64;
    for t in doomed {
        match t.wait() {
            Err(RealizeError::DeadlineExceeded) => resolved_expired += 1,
            Ok(_) => panic!("an already-expired request must not realize"),
            Err(e) => panic!("unexpected error on expired ticket: {e}"),
        }
    }
    for t in busy {
        let _ = t.wait().expect("busy ticket");
    }
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.expired, expired_n as u64);
    assert_eq!(stats.completed, stats.submitted, "expiries still complete");
    assert_eq!(stats.failed, 0, "expiries are not failures");
    let lookups_after = {
        let s = w.compiled.cache_stats();
        s.hits + s.misses
    };
    assert_eq!(
        lookups_after - lookups_before,
        8,
        "expired requests never reach the program cache"
    );
    let expired_completed_fraction = resolved_expired as f64 / (stats.expired as f64).max(1.0);
    println!(
        "serve: deadline leg: {}/{} expired tickets resolved (fraction {:.3})",
        resolved_expired, stats.expired, expired_completed_fraction
    );

    // Quota leg: fill a per-pipeline quota with blocking submits on a lone
    // worker, then burst try_submits — admission control must reject at the
    // door while accepted work drains normally.
    let quota = 2usize;
    let server = Server::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(64)
            .with_pipeline_quota(quota),
    );
    let held: Vec<Ticket> = (0..quota)
        .map(|_| server.submit(request_for(w, 0)).expect("fill quota"))
        .collect();
    let mut quota_rejected = 0u64;
    let mut burst_accepted: Vec<Ticket> = Vec::new();
    for _ in 0..16 {
        match server.try_submit(request_for(w, 0)) {
            Ok(t) => burst_accepted.push(t),
            Err(SubmitError::QuotaExceeded(_)) => quota_rejected += 1,
            Err(e) => panic!("unexpected rejection during quota burst: {e:?}"),
        }
    }
    for t in held.into_iter().chain(burst_accepted) {
        let _ = t.wait().expect("quota-admitted ticket");
    }
    let stats = server.stats();
    server.shutdown();
    assert!(quota_rejected >= 1, "the burst must trip the quota");
    assert_eq!(stats.quota_rejected, quota_rejected, "counter reconciles");
    assert_eq!(
        stats.completed, stats.submitted,
        "admitted work all drained"
    );
    println!("serve: quota leg: {quota_rejected}/16 burst submits quota-rejected");

    OverloadReport {
        workers,
        paced_requests: requests,
        service_ns,
        saturation_factor: factor,
        baseline_p99_ns,
        baseline_completed,
        shed_p99_ns,
        shed_completed,
        shed_count,
        shed_target_ns: u64::try_from(shed_target.as_nanos()).unwrap_or(u64::MAX),
        expired: expired_n as u64,
        resolved_expired,
        quota,
        quota_rejected,
        shed_p99_improvement,
        expired_completed_fraction,
    }
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let workloads = workloads(false);
    let server = Server::start(ServeConfig::default().with_workers(2));
    for (name, w) in [
        ("hist64_pure", &workloads[0]),
        ("hist64_rdom", &workloads[1]),
    ] {
        // Warm the key so the group times steady-state round trips.
        let _ = server
            .submit(request_for(w, 0))
            .expect("submit")
            .wait()
            .expect("warm");
        group.bench_function(format!("{name}_round_trip"), |b| {
            b.iter(|| {
                server
                    .submit(request_for(w, 0))
                    .expect("submit")
                    .wait()
                    .expect("served run")
            })
        });
    }
    group.finish();
}

fn write_report(reps: usize, requests: usize) {
    let smoke = smoke_mode();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let (rps, latency) = serve_throughput(workers, requests.max(16), requests);
    let (rw, rh) = if smoke { (96, 64) } else { (256, 192) };
    let (serial, parallel, speedup) = parallel_reduce_split(rw, rh, reps);
    let ov = overload_legs(if smoke { 256 } else { 512 });
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"smoke\": {smoke},\n  \"workers\": {workers},\n  \
         \"requests\": {requests},\n  \"serve_throughput_rps\": {rps:.3},\n  \
         \"p50_ns\": {},\n  \"p99_ns\": {},\n  \"max_ns\": {},\n  \
         \"parallel_reduce\": {{\"pipeline\": \"hist64_rdom\", \"extents\": [{rw}, {rh}], \
         \"bins\": 256, \"serial_ns\": {}, \"parallel_ns\": {}}},\n  \
         \"parallel_reduce_speedup\": {speedup:.3},\n  \
         \"overload\": {{\n    \"workers\": {}, \"paced_requests\": {}, \"service_ns\": {}, \
         \"saturation_factor\": {},\n    \
         \"baseline\": {{\"p99_ns\": {}, \"completed\": {}}},\n    \
         \"shed\": {{\"p99_ns\": {}, \"completed\": {}, \"shed\": {}, \"p99_target_ns\": {}}},\n    \
         \"deadline\": {{\"expired\": {}, \"resolved_expired\": {}}},\n    \
         \"quota\": {{\"quota\": {}, \"rejected\": {}}}\n  }},\n  \
         \"shed_p99_improvement\": {:.3},\n  \
         \"expired_completed_fraction\": {:.3}\n}}\n",
        latency.p50_ns,
        latency.p99_ns,
        latency.max_ns,
        serial.as_nanos(),
        parallel.as_nanos(),
        ov.workers,
        ov.paced_requests,
        ov.service_ns,
        ov.saturation_factor,
        ov.baseline_p99_ns,
        ov.baseline_completed,
        ov.shed_p99_ns,
        ov.shed_completed,
        ov.shed_count,
        ov.shed_target_ns,
        ov.expired,
        ov.resolved_expired,
        ov.quota,
        ov.quota_rejected,
        ov.shed_p99_improvement,
        ov.expired_completed_fraction,
    );
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("serve: wrote {}", path.display()),
        Err(e) => eprintln!("serve: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_serve);

fn main() {
    if smoke_mode() {
        println!("serve: HELIUM_BENCH_SMOKE set, running reduced report only");
        write_report(8, 64);
    } else {
        benches();
        write_report(24, 256);
    }
}
