//! Serving-stack benchmark: request throughput and tail latency through
//! `helium-serve`, plus the parallel-reduction accumulation split.
//!
//! Writes a machine-readable summary to `BENCH_serve.json` in the workspace
//! root with four gated columns:
//!
//! * `serve_throughput_rps` — completed requests per second for a mixed
//!   warm workload (a pure i64-lane stencil and the RDom histogram over
//!   varying extents) pushed through a [`Server`] and collected via tickets;
//! * `p50_ns` / `p99_ns` — submit→complete latency quantiles from the
//!   server's HDR-style histogram;
//! * `parallel_reduce_speedup` — warm-run time of the hist64_rdom pipeline
//!   under `parallel = false` over the time under the default parallel
//!   schedule, whose integer accumulator nest runs the privatize-then-merge
//!   deferred-accumulation path. Both runs are asserted bit-identical to the
//!   interpreter oracle (and the deferred path asserted active) before any
//!   timing counts.
//!
//! Setting `HELIUM_BENCH_SMOKE=1` skips the criterion group and writes the
//! report from a reduced configuration — the CI `serve` job uses this and
//! gates the four columns via `.github/scripts/bench_gate.py`.

use criterion::{criterion_group, Criterion};
use helium_bench::{hist64_pipeline, hist64_rdom_pipeline};
use helium_halide::{
    Buffer, CompileOptions, CompiledPipeline, CounterSnapshot, ExecBackend, RealizeInputs, Schedule,
};
use helium_serve::{ServeConfig, ServeRequest, Server, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::var("HELIUM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Steady-state best-of-`reps` timing of warm runs of a compiled pipeline.
fn time_compiled_runs(
    compiled: &CompiledPipeline,
    inputs: &RealizeInputs<'_>,
    extents: &[usize],
    reps: usize,
) -> Duration {
    let _ = compiled.run(inputs, extents).expect("warm-up run");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents).expect("run");
        best = best.min(start.elapsed());
    }
    best
}

/// Serial-vs-parallel split for the RDom histogram's accumulator nest:
/// assert both schedules bit-identical to the interpreter oracle and the
/// deferred privatize-then-merge path active, then time warm runs of both.
/// Returns `(serial, parallel, speedup)`.
fn parallel_reduce_split(rw: usize, rh: usize, reps: usize) -> (Duration, Duration, f64) {
    let (pipeline, input) = hist64_rdom_pipeline(rw, rh, 0xB16B);
    let inputs = RealizeInputs::new().with_image("in", &input);
    let opts = CompileOptions::default();
    let serial = pipeline
        .compile(&Schedule::stencil_default().with_parallel(false), &opts)
        .expect("compile serial");
    let parallel = pipeline
        .compile(&Schedule::stencil_default(), &opts)
        .expect("compile parallel");
    let oracle = pipeline
        .compile(
            &Schedule::stencil_default(),
            &CompileOptions {
                backend: ExecBackend::Interpret,
                ..CompileOptions::default()
            },
        )
        .expect("compile oracle")
        .run(&inputs, &[256])
        .expect("oracle run");
    assert_eq!(
        serial.run(&inputs, &[256]).expect("serial run"),
        oracle,
        "serial schedule diverged from the oracle"
    );
    let counters = CounterSnapshot::take();
    assert_eq!(
        parallel.run(&inputs, &[256]).expect("parallel run"),
        oracle,
        "parallel schedule diverged from the oracle"
    );
    assert!(
        counters.delta().parallel_reduce_merges >= 1,
        "the deferred privatize-then-merge path must be active"
    );
    let serial_t = time_compiled_runs(&serial, &inputs, &[256], reps);
    let parallel_t = time_compiled_runs(&parallel, &inputs, &[256], reps);
    let speedup = serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-12);
    println!(
        "serve: hist64_rdom [{rw}, {rh}] serial={serial_t:?} parallel={parallel_t:?} \
         parallel_reduce_speedup={speedup:.2}x"
    );
    (serial_t, parallel_t, speedup)
}

struct Workload {
    compiled: Arc<CompiledPipeline>,
    input: Arc<Buffer>,
    input_name: &'static str,
    extents: Vec<Vec<usize>>,
}

/// The mixed request set: the pure i64-lane histogram stencil and the RDom
/// histogram reduction, each over several extents (distinct cache keys).
fn workloads(smoke: bool) -> Vec<Workload> {
    let opts = CompileOptions::default();
    let (pw, ph) = if smoke { (62, 46) } else { (126, 94) };
    let (pure, pure_in) = hist64_pipeline(pw, ph, 0xA11CE);
    let (rw, rh) = if smoke { (96, 64) } else { (192, 160) };
    let (rdom, rdom_in) = hist64_rdom_pipeline(rw, rh, 0xB16B);
    vec![
        Workload {
            compiled: Arc::new(
                pure.compile(&Schedule::stencil_default(), &opts)
                    .expect("compile pure"),
            ),
            input: Arc::new(pure_in),
            input_name: "in",
            extents: vec![vec![pw, ph], vec![pw / 2, ph / 2]],
        },
        Workload {
            compiled: Arc::new(
                rdom.compile(&Schedule::stencil_default(), &opts)
                    .expect("compile rdom"),
            ),
            input: Arc::new(rdom_in),
            input_name: "in",
            extents: vec![vec![256], vec![128]],
        },
    ]
}

fn request_for(w: &Workload, i: usize) -> ServeRequest {
    ServeRequest::new(Arc::clone(&w.compiled), &w.extents[i % w.extents.len()])
        .with_image(w.input_name, Arc::clone(&w.input))
}

/// Push `requests` mixed requests through a server and collect every
/// ticket; returns `(throughput_rps, latency digest)`. The caches are
/// warmed by a preliminary round so the timed burst measures steady-state
/// serving, not first-touch compilation.
fn serve_throughput(
    workers: usize,
    queue_depth: usize,
    requests: usize,
) -> (f64, helium_serve::LatencySummary) {
    let workloads = workloads(smoke_mode());
    // Warm every (pipeline, extents) key once, directly.
    for w in &workloads {
        for e in &w.extents {
            let inputs = RealizeInputs::new().with_image(w.input_name, &w.input);
            let _ = w.compiled.run(&inputs, e).expect("warm-up");
        }
    }
    let server = Server::start(
        ServeConfig::default()
            .with_workers(workers)
            .with_queue_depth(queue_depth),
    );
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(requests);
    for i in 0..requests {
        let w = &workloads[i % workloads.len()];
        tickets.push(
            server
                .submit(request_for(w, i / workloads.len()))
                .expect("submit"),
        );
    }
    for t in tickets {
        let _ = t.wait().expect("served run");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-12);
    let stats = server.stats();
    assert_eq!(stats.completed, requests as u64);
    assert_eq!(stats.failed, 0);
    let rps = requests as f64 / elapsed;
    println!(
        "serve: {requests} requests on {} workers in {:.3}s -> {rps:.0} rps \
         (p50={}ns p99={}ns max={}ns)",
        server.worker_count(),
        elapsed,
        stats.latency.p50_ns,
        stats.latency.p99_ns,
        stats.latency.max_ns
    );
    let latency = stats.latency;
    server.shutdown();
    // Cache reconciliation on the served pipelines (sanity, not timing):
    // sharded stats must sum to the aggregate and every miss must be a
    // build or a coalesced wait.
    for w in &workloads {
        let stats = w.compiled.cache_stats();
        let shards = w.compiled.cache_shard_stats();
        assert_eq!(stats.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(stats.misses, shards.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(
            stats.misses,
            w.compiled.compiles() + w.compiled.coalesced_compiles()
        );
    }
    (rps, latency)
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let workloads = workloads(false);
    let server = Server::start(ServeConfig::default().with_workers(2));
    for (name, w) in [
        ("hist64_pure", &workloads[0]),
        ("hist64_rdom", &workloads[1]),
    ] {
        // Warm the key so the group times steady-state round trips.
        let _ = server
            .submit(request_for(w, 0))
            .expect("submit")
            .wait()
            .expect("warm");
        group.bench_function(format!("{name}_round_trip"), |b| {
            b.iter(|| {
                server
                    .submit(request_for(w, 0))
                    .expect("submit")
                    .wait()
                    .expect("served run")
            })
        });
    }
    group.finish();
}

fn write_report(reps: usize, requests: usize) {
    let smoke = smoke_mode();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let (rps, latency) = serve_throughput(workers, requests.max(16), requests);
    let (rw, rh) = if smoke { (96, 64) } else { (256, 192) };
    let (serial, parallel, speedup) = parallel_reduce_split(rw, rh, reps);
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"smoke\": {smoke},\n  \"workers\": {workers},\n  \
         \"requests\": {requests},\n  \"serve_throughput_rps\": {rps:.3},\n  \
         \"p50_ns\": {},\n  \"p99_ns\": {},\n  \"max_ns\": {},\n  \
         \"parallel_reduce\": {{\"pipeline\": \"hist64_rdom\", \"extents\": [{rw}, {rh}], \
         \"bins\": 256, \"serial_ns\": {}, \"parallel_ns\": {}}},\n  \
         \"parallel_reduce_speedup\": {speedup:.3}\n}}\n",
        latency.p50_ns,
        latency.p99_ns,
        latency.max_ns,
        serial.as_nanos(),
        parallel.as_nanos(),
    );
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("serve: wrote {}", path.display()),
        Err(e) => eprintln!("serve: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_serve);

fn main() {
    if smoke_mode() {
        println!("serve: HELIUM_BENCH_SMOKE set, running reduced report only");
        write_report(8, 64);
    } else {
        benches();
        write_report(24, 256);
    }
}
