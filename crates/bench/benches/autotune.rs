//! Guided-vs-random autotuning benchmark on the Fig. 7 filter set.
//!
//! Measures what the cost model buys: how many *timed trials* each strategy
//! needs before it finds a schedule within 5% of the best known one. Every
//! distinct candidate schedule is timed once into a shared table (steady-state
//! best-of-reps warm runs, each first asserted bit-identical to the
//! interpreter oracle), so both strategies consume identical measurements and
//! differ only in *order*: guided walks the model's ranking, random walks
//! seed-shuffled permutations (averaged over several seeds).
//!
//! Writes `BENCH_autotune.json` in the workspace root with two gated
//! columns:
//!
//! * `guided_vs_random_speedup` — geometric mean over filters of
//!   (random timed trials to within-5%) / (guided timed trials to
//!   within-5%), floored at 1.2× in CI;
//! * `warm_start_zero_trials` — 1.0 when a second search against a
//!   `ScheduleCache` round-tripped through its on-disk format performs zero
//!   timed trials, 0.0 otherwise (floored at 1.0).
//!
//! Per filter the report also records `time_to_5pct_ns` for both strategies:
//! the timing budget (trial time × repetitions, summed along the search
//! order) spent reaching the 5% band.
//!
//! Setting `HELIUM_BENCH_SMOKE=1` skips the criterion group and writes the
//! report from a reduced configuration — the CI `autotune` job uses this and
//! gates the columns via `.github/scripts/bench_gate.py`.

use criterion::{criterion_group, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, LiftedRealizeSetup};
use helium_halide::cache::fingerprint_schedule;
use helium_halide::{CompileOptions, ExecBackend, Pipeline, RealizeInputs, Realizer, Schedule};
use helium_tune::{
    enumerate_candidates, guided_search_cached, rank_candidates, ScheduleCache, SearchConfig, Trial,
};
use rand::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::var("HELIUM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Steady-state best-of-`reps` timing of one candidate, gated on
/// correctness: the warm-up run must be bit-identical to `oracle`.
fn time_candidate(
    pipeline: &Pipeline,
    schedule: &Schedule,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    oracle: &helium_halide::Buffer,
    reps: usize,
) -> Duration {
    let compiled = pipeline
        .compile(schedule, &CompileOptions::default())
        .expect("compile candidate");
    let warm = compiled.run(inputs, extents).expect("warm-up run");
    assert_eq!(
        &warm, oracle,
        "candidate schedule [{schedule}] diverged from the interpreter oracle"
    );
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents).expect("run");
        best = best.min(start.elapsed());
    }
    best
}

/// Trials until the first schedule within `tol` of the best lands, walking
/// `order`, plus the timing budget spent getting there.
fn trials_to_within(
    order: impl Iterator<Item = u64>,
    times: &BTreeMap<u64, Duration>,
    threshold: Duration,
    reps: usize,
) -> (usize, u128) {
    let mut spent: u128 = 0;
    for (i, fp) in order.enumerate() {
        let t = times[&fp];
        // A timed trial costs the warm-up plus `reps` measured runs.
        spent += t.as_nanos() * (reps as u128 + 1);
        if t <= threshold {
            return (i + 1, spent);
        }
    }
    (times.len(), spent)
}

struct FilterSplit {
    name: &'static str,
    candidates: usize,
    best_ns: u128,
    guided_trials: usize,
    guided_time_ns: u128,
    random_trials: f64,
    random_time_ns: f64,
    speedup: f64,
}

/// The guided-vs-random split for one lifted filter: shared timing table,
/// then trials-to-within-5% along the model ranking versus along random
/// permutations.
fn tune_split(filter: PhotoFilter, w: usize, h: usize, reps: usize, seeds: u64) -> FilterSplit {
    let (app, lifted) = lift_photoflow(filter, w, h);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let pipeline = setup.pipeline();
    let extents = setup.extents.clone();

    let candidates = enumerate_candidates(pipeline, 40);
    let ranked: Vec<Trial> =
        rank_candidates(pipeline, &extents, &inputs, &candidates).expect("rank candidates");
    // Non-vacuity: the model must be working with real tier information.
    assert!(
        ranked.iter().any(|t| t.features.fused_stores > 0),
        "no candidate fused any store — the dry-run profile is vacuous"
    );

    let oracle = Realizer::new(Schedule::naive())
        .with_backend(ExecBackend::Interpret)
        .realize(pipeline, &extents, &inputs)
        .expect("interpreter oracle");
    let times: BTreeMap<u64, Duration> = ranked
        .iter()
        .map(|t| {
            (
                t.fingerprint,
                time_candidate(pipeline, &t.schedule, &extents, &inputs, &oracle, reps),
            )
        })
        .collect();

    let best = *times.values().min().expect("non-empty table");
    let threshold = Duration::from_nanos((best.as_nanos() as f64 * 1.05) as u64);

    let (guided_trials, guided_time_ns) = trials_to_within(
        ranked.iter().map(|t| t.fingerprint),
        &times,
        threshold,
        reps,
    );

    let mut fps: Vec<u64> = ranked.iter().map(|t| t.fingerprint).collect();
    let (mut random_total, mut random_time_total) = (0usize, 0u128);
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0xBA5E ^ seed);
        // Fisher–Yates: the shim rand has gen_range but no shuffle.
        for i in (1..fps.len()).rev() {
            fps.swap(i, rng.gen_range(0..i + 1));
        }
        let (n, t) = trials_to_within(fps.iter().copied(), &times, threshold, reps);
        random_total += n;
        random_time_total += t;
    }
    let random_trials = random_total as f64 / seeds as f64;
    let speedup = random_trials / guided_trials as f64;
    println!(
        "autotune: {} [{w}, {h}] candidates={} best={best:?} guided_trials={guided_trials} \
         random_trials={random_trials:.1} guided_vs_random={speedup:.2}x",
        filter.name(),
        times.len(),
    );
    FilterSplit {
        name: filter.name(),
        candidates: times.len(),
        best_ns: best.as_nanos(),
        guided_trials,
        guided_time_ns,
        random_trials,
        random_time_ns: random_time_total as f64 / seeds as f64,
        speedup,
    }
}

/// Round-trip the schedule cache through its on-disk format and verify the
/// second (fresh) search performs zero timed trials. Returns 1.0 on success.
fn warm_start_split(w: usize, h: usize) -> f64 {
    let (app, lifted) = lift_photoflow(PhotoFilter::Invert, w, h);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let config = SearchConfig {
        top_k: 3,
        repetitions: 1,
        max_candidates: 24,
        budget: Duration::from_secs(60),
    };
    let mut cache = ScheduleCache::new();
    let cold = guided_search_cached(
        setup.pipeline(),
        &setup.extents,
        &inputs,
        &config,
        &mut cache,
    )
    .expect("cold search");
    let path = std::env::temp_dir().join(format!("helium_bench_schedules_{}", std::process::id()));
    cache.save(&path).expect("persist schedule cache");
    let mut fresh = ScheduleCache::load(&path).expect("reload schedule cache");
    let hot = guided_search_cached(
        setup.pipeline(),
        &setup.extents,
        &inputs,
        &config,
        &mut fresh,
    )
    .expect("warm search");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        fingerprint_schedule(&hot.best),
        fingerprint_schedule(&cold.best),
        "the cached winner must round-trip exactly"
    );
    println!(
        "autotune: warm start cold_trials={} hot_trials={} (cache round-tripped through disk)",
        cold.timed_trials, hot.timed_trials
    );
    if cold.timed_trials >= 1 && hot.timed_trials == 0 {
        1.0
    } else {
        0.0
    }
}

fn bench_autotune(c: &mut Criterion) {
    let mut group = c.benchmark_group("autotune");
    group.sample_size(10);
    let (app, lifted) = lift_photoflow(PhotoFilter::Blur, 96, 64);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let candidates = enumerate_candidates(setup.pipeline(), 24);
    group.bench_function("model_rank_blur", |b| {
        b.iter(|| {
            rank_candidates(setup.pipeline(), &setup.extents, &inputs, &candidates)
                .expect("rank")
                .len()
        })
    });
    group.finish();
}

fn write_report(reps: usize, seeds: u64) {
    let smoke = smoke_mode();
    let (w, h) = if smoke { (96, 64) } else { (192, 128) };
    let filters: &[PhotoFilter] = if smoke {
        &[PhotoFilter::Invert, PhotoFilter::Blur]
    } else {
        &[PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen]
    };
    let splits: Vec<FilterSplit> = filters
        .iter()
        .map(|&f| tune_split(f, w, h, reps, seeds))
        .collect();
    let speedup = (splits.iter().map(|s| s.speedup.ln()).sum::<f64>() / splits.len() as f64).exp();
    let warm_zero = warm_start_split(w, h);

    let mut rows = String::new();
    for (i, s) in splits.iter().enumerate() {
        let sep = if i + 1 == splits.len() { "" } else { "," };
        let _ = write!(
            rows,
            "\n    {{\"filter\": \"{}\", \"candidates\": {}, \"best_ns\": {}, \
             \"guided_trials\": {}, \"guided_time_to_5pct_ns\": {}, \
             \"random_trials\": {:.2}, \"random_time_to_5pct_ns\": {:.0}, \
             \"speedup\": {:.3}}}{sep}",
            s.name,
            s.candidates,
            s.best_ns,
            s.guided_trials,
            s.guided_time_ns,
            s.random_trials,
            s.random_time_ns,
            s.speedup,
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"autotune\",\n  \"smoke\": {smoke},\n  \
         \"extents\": [{w}, {h}],\n  \"repetitions\": {reps},\n  \
         \"random_seeds\": {seeds},\n  \"filters\": [{rows}\n  ],\n  \
         \"guided_vs_random_speedup\": {speedup:.3},\n  \
         \"warm_start_zero_trials\": {warm_zero:.1}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_autotune.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("autotune: wrote {}", path.display()),
        Err(e) => eprintln!("autotune: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_autotune);

fn main() {
    if smoke_mode() {
        println!("autotune: HELIUM_BENCH_SMOKE set, running reduced report only");
        write_report(2, 3);
    } else {
        benches();
        write_report(4, 5);
    }
}
