//! Criterion micro-benchmarks backing Fig. 7: per-filter comparison of the
//! legacy native port against the lifted, rescheduled kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, time_legacy_native, time_lifted_on};
use helium_halide::{ExecBackend, Schedule};

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_filters");
    group.sample_size(10);
    for filter in [PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen] {
        let (app, lifted) = lift_photoflow(filter, 96, 64);
        group.bench_function(format!("{}_legacy_native", filter.name()), |b| {
            b.iter(|| time_legacy_native(&app, 1))
        });
        // Both execution backends, so regressions in either are visible.
        group.bench_function(format!("{}_lifted_interpret", filter.name()), |b| {
            b.iter(|| {
                time_lifted_on(
                    &app,
                    &lifted,
                    Schedule::stencil_default(),
                    ExecBackend::Interpret,
                    1,
                )
            })
        });
        group.bench_function(format!("{}_lifted_lowered", filter.name()), |b| {
            b.iter(|| {
                time_lifted_on(
                    &app,
                    &lifted,
                    Schedule::stencil_default(),
                    ExecBackend::Lowered,
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
