//! Criterion micro-benchmarks backing Fig. 7: per-filter comparison of the
//! legacy native port against the lifted, rescheduled kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, time_lifted, time_legacy_native};
use helium_halide::Schedule;

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_filters");
    group.sample_size(10);
    for filter in [PhotoFilter::Invert, PhotoFilter::Blur, PhotoFilter::Sharpen] {
        let (app, lifted) = lift_photoflow(filter, 96, 64);
        group.bench_function(format!("{}_legacy_native", filter.name()), |b| {
            b.iter(|| time_legacy_native(&app, 1))
        });
        group.bench_function(format!("{}_lifted_scheduled", filter.name()), |b| {
            b.iter(|| time_lifted(&app, &lifted, Schedule::stencil_default(), 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
