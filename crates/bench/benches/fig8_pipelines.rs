//! Criterion micro-benchmarks backing Fig. 8: separate versus fused execution
//! of a two-stage lifted pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{buffer_from_layout, lift_photoflow};
use helium_halide::{ExecBackend, RealizeInputs, Realizer, Schedule};

fn bench_pipelines(c: &mut Criterion) {
    let (blur_app, blur) = lift_photoflow(PhotoFilter::Blur, 96, 64);
    let (_, invert) = lift_photoflow(PhotoFilter::Invert, 96, 64);
    let blur_kernel = blur.primary();
    let invert_kernel = invert.primary();
    let input_name = blur_kernel.pipeline.images.keys().next().cloned().unwrap();
    let invert_input = invert_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .unwrap();
    let input = buffer_from_layout(&blur_app, &blur, &input_name);
    let extents: Vec<usize> = blur
        .buffer(&blur_kernel.output)
        .unwrap()
        .extents
        .iter()
        .map(|&e| e as usize)
        .collect();
    let realizer = Realizer::new(Schedule::stencil_default());
    let interpreter =
        Realizer::new(Schedule::stencil_default()).with_backend(ExecBackend::Interpret);
    let fused = invert_kernel
        .pipeline
        .compose_after(&blur_kernel.pipeline, &invert_input);

    let mut group = c.benchmark_group("fig8_pipelines");
    group.sample_size(10);
    group.bench_function("separate", |b| {
        b.iter(|| {
            let blurred = realizer
                .realize(
                    &blur_kernel.pipeline,
                    &extents,
                    &RealizeInputs::new().with_image(&input_name, &input),
                )
                .unwrap();
            realizer
                .realize(
                    &invert_kernel.pipeline,
                    &extents,
                    &RealizeInputs::new().with_image(&invert_input, &blurred),
                )
                .unwrap()
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            realizer
                .realize(
                    &fused,
                    &extents,
                    &RealizeInputs::new().with_image(&input_name, &input),
                )
                .unwrap()
        })
    });
    // The same fused pipeline on the interpreter oracle, so the lowering
    // engine's contribution to Fig. 8 stays measurable.
    group.bench_function("fused_interpret", |b| {
        b.iter(|| {
            interpreter
                .realize(
                    &fused,
                    &extents,
                    &RealizeInputs::new().with_image(&input_name, &input),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
