//! Halide code generation from symbolic clusters (paper §4.11).
//!
//! Each cluster's computational tree becomes a Halide expression; clusters
//! guarded by predicates are combined with a chain of `select`s; recursive
//! clusters become reduction (`RDom`) update definitions. The result is both
//! an executable [`helium_halide::Pipeline`] and Halide C++ source text.

use crate::layout::{BufferLayout, BufferRole};
use crate::symbolic::SymbolicCluster;
use crate::trees::{AffineIndex, Leaf, PredicateCmp, Tree, TreeNode, TreeOp};
use helium_halide::expr::{BinOp, CmpOp, Expr, ExternCall};
use helium_halide::func::{Func, ImageParam, Pipeline, RDom, UpdateDef};
use helium_halide::types::{ScalarType, Value};
use helium_halide::{CompileOptions, CompiledPipeline, ExecBackend};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Errors raised during code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The symbolic cluster set was empty.
    Empty,
    /// A tree node could not be translated.
    Untranslatable(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Empty => write!(f, "no symbolic clusters to generate code from"),
            CodegenError::Untranslatable(s) => write!(f, "cannot translate tree node: {s}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// One generated kernel: the pipeline for a single output buffer, plus the
/// default values discovered for its scalar parameters.
///
/// The kernel holds its [`CompiledPipeline`]s (one per schedule × backend,
/// shared across clones), so repeated [`GeneratedKernel::realize_on`] and
/// [`GeneratedKernel::realize_checked`] calls run cached programs instead of
/// re-planning and re-lowering — the lift-once/run-forever contract.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// Name of the output buffer (and of the pipeline's output func).
    pub output: String,
    /// The executable pipeline.
    pub pipeline: Pipeline,
    /// Observed values of the scalar parameters referenced by the pipeline.
    pub parameter_values: BTreeMap<String, Value>,
    /// Compiled pipelines memoized per (pipeline fingerprint, schedule
    /// fingerprint, backend).
    compiled: CompiledMemo,
}

/// Memoized compiled pipelines, keyed by (pipeline fingerprint, schedule
/// fingerprint, backend) and shared across kernel clones. The pipeline
/// fingerprint is part of the key because `pipeline` is a public field: a
/// caller that mutates it must not be served programs compiled from the
/// pre-mutation snapshot.
type CompiledMemo = Arc<Mutex<BTreeMap<(u64, u64, ExecBackend), Arc<CompiledPipeline>>>>;

/// Bound on the memo: entries are heavy (a pipeline snapshot plus a program
/// cache), and schedule sweeps (autotuning a long-lived kernel) would
/// otherwise grow it without limit. When full, the entry with the smallest
/// key is evicted — deterministic and cheap; sweeps simply recompile.
const COMPILED_MEMO_CAPACITY: usize = 16;

impl GeneratedKernel {
    /// Create a kernel; compilation happens lazily on first realize.
    pub fn new(
        output: String,
        pipeline: Pipeline,
        parameter_values: BTreeMap<String, Value>,
    ) -> GeneratedKernel {
        GeneratedKernel {
            output,
            pipeline,
            parameter_values,
            compiled: Arc::default(),
        }
    }

    /// The compiled pipeline for `schedule` on `backend`, compiling and
    /// memoizing it on first use.
    ///
    /// # Errors
    /// Propagates compilation errors (undefined funcs, ...).
    pub fn compiled(
        &self,
        schedule: &helium_halide::Schedule,
        backend: ExecBackend,
    ) -> Result<Arc<CompiledPipeline>, helium_halide::RealizeError> {
        let key = (
            helium_halide::cache::fingerprint_pipeline(&self.pipeline),
            helium_halide::cache::fingerprint_schedule(schedule),
            backend,
        );
        let mut memo = self.compiled.lock().expect("compiled kernel mutex");
        if let Some(compiled) = memo.get(&key) {
            return Ok(Arc::clone(compiled));
        }
        let options = CompileOptions {
            backend,
            ..CompileOptions::default()
        };
        let compiled = Arc::new(self.pipeline.compile(schedule, &options)?);
        if memo.len() >= COMPILED_MEMO_CAPACITY {
            if let Some(oldest) = memo.keys().next().cloned() {
                memo.remove(&oldest);
            }
        }
        memo.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Realize the kernel over `extents` with the given image bindings, under
    /// `schedule` on `backend`, automatically binding the scalar parameter
    /// values observed during lifting. Runs the held [`CompiledPipeline`];
    /// only the first call per (schedule, backend, extents, bindings)
    /// compiles.
    ///
    /// # Errors
    /// Propagates realization errors (missing inputs, undefined funcs, ...).
    pub fn realize_on(
        &self,
        extents: &[usize],
        images: &BTreeMap<String, &helium_halide::Buffer>,
        schedule: &helium_halide::Schedule,
        backend: helium_halide::ExecBackend,
    ) -> Result<helium_halide::Buffer, helium_halide::RealizeError> {
        let mut inputs = helium_halide::RealizeInputs::new();
        for (name, buf) in images {
            inputs = inputs.with_image(name, buf);
        }
        for (name, value) in &self.parameter_values {
            inputs = inputs.with_param(name, *value);
        }
        self.compiled(schedule, backend)?.run(&inputs, extents)
    }

    /// Differential self-check: realize the kernel on both execution backends
    /// and return the buffer if they agree bit-for-bit.
    ///
    /// The lifting pipeline's guarantee is bit-exactness against the legacy
    /// binary; this check extends the guarantee across the execution engines,
    /// so a lifted kernel can be shipped on the fast lowered backend with the
    /// interpreter acting as the oracle.
    ///
    /// # Errors
    /// Propagates realization errors; returns
    /// [`CodegenError::Untranslatable`] if the backends disagree.
    pub fn realize_checked(
        &self,
        extents: &[usize],
        images: &BTreeMap<String, &helium_halide::Buffer>,
        schedule: &helium_halide::Schedule,
    ) -> Result<helium_halide::Buffer, CodegenError> {
        let interpreted = self
            .realize_on(
                extents,
                images,
                schedule,
                helium_halide::ExecBackend::Interpret,
            )
            .map_err(|e| CodegenError::Untranslatable(e.to_string()))?;
        let lowered = self
            .realize_on(
                extents,
                images,
                schedule,
                helium_halide::ExecBackend::Lowered,
            )
            .map_err(|e| CodegenError::Untranslatable(e.to_string()))?;
        if interpreted != lowered {
            return Err(CodegenError::Untranslatable(format!(
                "execution backends disagree for kernel `{}` under [{schedule}]",
                self.output
            )));
        }
        Ok(lowered)
    }
}

fn width_to_type(width: u32, float: bool) -> ScalarType {
    match (width, float) {
        (_, true) if width >= 8 => ScalarType::Float64,
        (_, true) => ScalarType::Float32,
        (1, _) => ScalarType::UInt8,
        (2, _) => ScalarType::UInt16,
        (8, _) => ScalarType::UInt64,
        _ => ScalarType::UInt32,
    }
}

fn affine_to_expr(a: &AffineIndex) -> Expr {
    let mut terms: Vec<Expr> = Vec::new();
    for (d, &c) in a.coefficients.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let var = Expr::var(&format!("x_{d}"));
        terms.push(if c == 1 {
            var
        } else {
            Expr::mul(Expr::int(c), var)
        });
    }
    let mut expr = match terms.len() {
        0 => Expr::int(a.constant),
        _ => {
            let mut it = terms.into_iter();
            let first = it.next().expect("non-empty");
            let sum = it.fold(first, Expr::add);
            if a.constant != 0 {
                Expr::add(sum, Expr::int(a.constant))
            } else {
                sum
            }
        }
    };
    if a.coefficients.iter().all(|&c| c == 0) {
        expr = Expr::int(a.constant);
    }
    expr
}

/// Translate a symbolic tree into a Halide expression.
fn tree_to_expr(
    tree: &Tree,
    node: usize,
    buffers: &BTreeMap<String, BufferLayout>,
    params: &mut BTreeMap<String, Value>,
    output_name: &str,
) -> Result<Expr, CodegenError> {
    match &tree.nodes[node] {
        TreeNode::Leaf(leaf) => leaf_to_expr(leaf, buffers, params, output_name),
        TreeNode::Op {
            op,
            children,
            width,
        } => {
            let mut child_exprs = Vec::with_capacity(children.len());
            for &c in children {
                child_exprs.push(tree_to_expr(tree, c, buffers, params, output_name)?);
            }
            let ty = width_to_type(*width, op.is_float());
            let e = match op {
                TreeOp::Add | TreeOp::FAdd => fold_bin(BinOp::Add, child_exprs),
                TreeOp::Sub | TreeOp::FSub => fold_bin(BinOp::Sub, child_exprs),
                TreeOp::Mul | TreeOp::FMul => fold_bin(BinOp::Mul, child_exprs),
                TreeOp::FDiv => fold_bin(BinOp::Div, child_exprs),
                TreeOp::And => fold_bin(BinOp::And, child_exprs),
                TreeOp::Or => fold_bin(BinOp::Or, child_exprs),
                TreeOp::Xor => fold_bin(BinOp::Xor, child_exprs),
                TreeOp::Shr => fold_bin(BinOp::Shr, child_exprs),
                TreeOp::Sar => fold_bin(BinOp::Shr, child_exprs),
                TreeOp::Shl => fold_bin(BinOp::Shl, child_exprs),
                TreeOp::Neg => Expr::bin(
                    BinOp::Sub,
                    Expr::int(0),
                    child_exprs.into_iter().next().expect("neg child"),
                ),
                TreeOp::Not => Expr::bin(
                    BinOp::Xor,
                    child_exprs.into_iter().next().expect("not child"),
                    Expr::int(-1),
                ),
                TreeOp::Move | TreeOp::SignExtend => {
                    child_exprs.into_iter().next().expect("move child")
                }
                TreeOp::Downcast => {
                    return Ok(Expr::cast(
                        width_to_type(*width, false),
                        child_exprs.into_iter().next().expect("downcast child"),
                    ))
                }
                TreeOp::IntToFloat => {
                    return Ok(Expr::cast(
                        ScalarType::Float64,
                        child_exprs.into_iter().next().expect("itof child"),
                    ))
                }
                TreeOp::FloatToIntRound => {
                    // Round to nearest even, as fistp does: floor(x/2)*2 based
                    // rounding is approximated with floor(x + 0.5) which
                    // matches for non-tie values; ties are rare in practice
                    // and the paper accepts low-order-bit differences here.
                    return Ok(Expr::cast(
                        ScalarType::Int32,
                        Expr::Call(
                            ExternCall::Floor,
                            vec![Expr::add(
                                child_exprs.into_iter().next().expect("round child"),
                                Expr::float(0.5),
                            )],
                        ),
                    ));
                }
                TreeOp::Extern(f) => {
                    let call = match f {
                        helium_machine::ExternFn::Sqrt => ExternCall::Sqrt,
                        helium_machine::ExternFn::Floor => ExternCall::Floor,
                        helium_machine::ExternFn::Ceil => ExternCall::Ceil,
                        helium_machine::ExternFn::Fabs => ExternCall::Abs,
                        helium_machine::ExternFn::Exp => ExternCall::Exp,
                        helium_machine::ExternFn::Log => ExternCall::Log,
                        helium_machine::ExternFn::Pow => ExternCall::Pow,
                    };
                    return Ok(Expr::Call(call, child_exprs));
                }
                TreeOp::IndirectLoad => {
                    // children = [table leaf, index expression]; the table leaf
                    // has already been turned into an Image/Func access with a
                    // placeholder index (possibly wrapped in widening casts) —
                    // rebuild it around the real index expression.
                    let mut it = child_exprs.into_iter();
                    let table = it.next().expect("table child");
                    let index = Expr::cast(ScalarType::Int32, it.next().expect("index child"));
                    return Ok(reindex_table_access(table, &index));
                }
            };
            // Keep integer arithmetic at the instruction's width so wrapping
            // legacy arithmetic is reproduced bit-for-bit.
            if op.is_float() || matches!(op, TreeOp::Move | TreeOp::SignExtend) {
                Ok(e)
            } else {
                Ok(Expr::cast(ty, e))
            }
        }
    }
}

/// Replace the index arguments of the innermost `Image`/`FuncRef` of a table
/// access with `index`, preserving any widening casts wrapped around it.
fn reindex_table_access(table: Expr, index: &Expr) -> Expr {
    match table {
        Expr::Image(name, _) => Expr::Image(name, vec![index.clone()]),
        Expr::FuncRef(name, _) => Expr::FuncRef(name, vec![index.clone()]),
        Expr::Cast(ty, inner) => Expr::Cast(ty, Box::new(reindex_table_access(*inner, index))),
        other => other,
    }
}

fn fold_bin(op: BinOp, exprs: Vec<Expr>) -> Expr {
    let mut it = exprs.into_iter();
    let first = it.next().expect("at least one operand");
    it.fold(first, |acc, e| Expr::bin(op, acc, e))
}

fn leaf_to_expr(
    leaf: &Leaf,
    buffers: &BTreeMap<String, BufferLayout>,
    params: &mut BTreeMap<String, Value>,
    output_name: &str,
) -> Result<Expr, CodegenError> {
    Ok(match leaf {
        Leaf::SymbolicRef {
            buffer,
            index_exprs,
        } => {
            let args: Vec<Expr> = index_exprs.iter().map(affine_to_expr).collect();
            let base = Expr::Image(buffer.clone(), args);
            // Loads widen to 32 bits in the original code (movzx), so cast.
            match buffers.get(buffer) {
                Some(b) if b.element_size == 1 => Expr::cast(ScalarType::UInt32, base),
                _ => base,
            }
        }
        Leaf::BufferRef { buffer, indices } => {
            let args: Vec<Expr> = indices.iter().map(|&i| Expr::int(i)).collect();
            Expr::Image(buffer.clone(), args)
        }
        Leaf::Const(v) => Expr::uint(*v),
        Leaf::ConstF(v) => Expr::float(*v),
        Leaf::Param {
            name,
            value,
            width,
            is_float,
        } => {
            let (ty, val) = if *is_float {
                (ScalarType::Float64, Value::Float(f64::from_bits(*value)))
            } else {
                let _ = width;
                (ScalarType::UInt32, Value::Int(*value as i64))
            };
            params.insert(name.clone(), val);
            Expr::Param(name.clone(), ty)
        }
        Leaf::RecursiveRef { buffer } => {
            // A self-reference: generated as a FuncRef to the output func with
            // the same indices the update writes (filled in by the caller).
            Expr::FuncRef(buffer.clone(), Vec::new())
        }
        Leaf::Mem { addr, .. } => {
            return Err(CodegenError::Untranslatable(format!(
                "unabstracted memory leaf {addr:#x} (buffer inference incomplete)"
            )));
        }
    })
    .map(|e| rename_output_refs(e, output_name))
}

fn rename_output_refs(e: Expr, _output_name: &str) -> Expr {
    e
}

fn cmp_to_halide(cmp: PredicateCmp) -> CmpOp {
    match cmp {
        PredicateCmp::Eq => CmpOp::Eq,
        PredicateCmp::Ne => CmpOp::Ne,
        PredicateCmp::Gt => CmpOp::Gt,
        PredicateCmp::Ge => CmpOp::Ge,
        PredicateCmp::Lt => CmpOp::Lt,
        PredicateCmp::Le => CmpOp::Le,
    }
}

/// Generate one kernel per output buffer from the symbolic clusters.
///
/// # Errors
/// Returns [`CodegenError`] if the clusters are empty or contain nodes that
/// cannot be expressed in the DSL.
pub fn generate_kernels(
    clusters: &[SymbolicCluster],
    buffers: &[BufferLayout],
) -> Result<Vec<GeneratedKernel>, CodegenError> {
    if clusters.is_empty() {
        return Err(CodegenError::Empty);
    }
    let buffer_map: BTreeMap<String, BufferLayout> = buffers
        .iter()
        .map(|b| (b.name.clone(), b.clone()))
        .collect();

    // Group clusters by output buffer.
    let mut by_output: BTreeMap<String, Vec<&SymbolicCluster>> = BTreeMap::new();
    for c in clusters {
        by_output
            .entry(c.output_buffer.clone())
            .or_default()
            .push(c);
    }

    let mut kernels = Vec::new();
    for (output, group) in by_output {
        let out_layout = buffer_map.get(&output).ok_or(CodegenError::Empty)?;
        let dims = out_layout.dims();
        let vars: Vec<String> = (0..dims).map(|d| format!("x_{d}")).collect();
        let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
        let out_type = width_to_type(
            out_layout.element_size,
            group.iter().any(|c| {
                c.tree
                    .nodes
                    .iter()
                    .any(|n| matches!(n, TreeNode::Op{op,..} if op.is_float()))
            }) && out_layout.element_size == 8,
        );
        let mut params = BTreeMap::new();

        // Referenced input buffers become image parameters (computational
        // trees and predicate trees alike).
        let mut images: BTreeMap<String, ImageParam> = BTreeMap::new();
        let mut referenced_trees: Vec<&Tree> = Vec::new();
        for c in group.iter() {
            referenced_trees.push(&c.tree);
            for (_, lhs, rhs) in &c.predicates {
                referenced_trees.push(lhs);
                referenced_trees.push(rhs);
            }
        }
        for tree in referenced_trees {
            for leaf in tree.leaves_in_order() {
                if let Leaf::SymbolicRef {
                    buffer,
                    index_exprs,
                } = leaf
                {
                    if buffer != &output {
                        let layout = buffer_map.get(buffer);
                        let ty = layout
                            .map(|l| {
                                width_to_type(
                                    l.element_size,
                                    l.element_size == 8 && out_type.is_float(),
                                )
                            })
                            .unwrap_or(ScalarType::UInt8);
                        images
                            .entry(buffer.clone())
                            .or_insert_with(|| ImageParam::new(buffer, ty, index_exprs.len()));
                    }
                }
            }
        }

        let recursive: Vec<&&SymbolicCluster> = group.iter().filter(|c| c.recursive).collect();
        let pure: Vec<&&SymbolicCluster> = group.iter().filter(|c| !c.recursive).collect();

        let func = if recursive.is_empty() {
            // Pure clusters: build a select chain over the predicates
            // (paper Fig. 5), most-specific (predicated) clusters first.
            let mut expr: Option<Expr> = None;
            let mut ordered = pure.clone();
            ordered.sort_by_key(|c| std::cmp::Reverse(c.predicates.len()));
            for c in ordered.iter().rev() {
                let value = Expr::cast(
                    out_type,
                    tree_to_expr(&c.tree, c.tree.root, &buffer_map, &mut params, &output)?,
                );
                expr = Some(match expr {
                    None => value,
                    Some(prev) => {
                        let mut cond: Option<Expr> = None;
                        for (cmp, lhs, rhs) in &c.predicates {
                            let l = tree_to_expr(lhs, lhs.root, &buffer_map, &mut params, &output)?;
                            let r = tree_to_expr(rhs, rhs.root, &buffer_map, &mut params, &output)?;
                            let this = Expr::cmp(cmp_to_halide(*cmp), l, r);
                            cond = Some(match cond {
                                None => this,
                                Some(c0) => Expr::bin(BinOp::And, c0, this),
                            });
                        }
                        match cond {
                            Some(c0) => Expr::select(c0, value, prev),
                            None => value,
                        }
                    }
                });
            }
            Func::pure(
                &output,
                &var_refs,
                out_type,
                expr.ok_or(CodegenError::Empty)?,
            )
        } else {
            // Recursive clusters: pure definition from the non-recursive
            // cluster (the initialization), update definition from the
            // recursive one over the inferred reduction domain (paper Fig. 4).
            let init = match pure.first() {
                Some(c) => Expr::cast(
                    out_type,
                    tree_to_expr(&c.tree, c.tree.root, &buffer_map, &mut params, &output)?,
                ),
                None => Expr::int(0),
            };
            let mut func = Func::pure(&output, &var_refs, out_type, init);
            for c in &recursive {
                let over = c.reduction_over.clone().unwrap_or_else(|| {
                    images
                        .keys()
                        .next()
                        .cloned()
                        .unwrap_or_else(|| output.clone())
                });
                let over_image = images
                    .get(&over)
                    .cloned()
                    .unwrap_or_else(|| ImageParam::new(&over, ScalarType::UInt8, 2));
                images
                    .entry(over.clone())
                    .or_insert_with(|| over_image.clone());
                let rdom = RDom::over_image("r_0", &over_image);
                // The LHS index: the indirect index expression of the root's
                // own access — the value of the driving buffer at the RDom
                // point.
                let rvar_args: Vec<Expr> = (0..over_image.dims)
                    .map(|d| Expr::RVar(format!("r_0.{}", helium_halide::func::dim_letter(d))))
                    .collect();
                let driving = Expr::Image(over.clone(), rvar_args);
                let lhs_index = Expr::cast(ScalarType::Int32, driving.clone());
                // The update value: translate the tree, rewriting recursive
                // references into reads of the func at the same index.
                let raw = tree_to_expr(&c.tree, c.tree.root, &buffer_map, &mut params, &output)?;
                let value = rewrite_recursive(&raw, &output, &lhs_index);
                func = func.with_update(UpdateDef {
                    lhs: vec![lhs_index],
                    value: Expr::cast(out_type, value),
                    rdom,
                });
            }
            func
        };

        // Clean up instruction-selection artifacts (cancelled sliding-window
        // terms, widening-cast chains, multiplications by one) so the emitted
        // Halide code reads like hand-written source. Simplification is
        // value-preserving, so the bit-exactness guarantees are unaffected.
        let pipeline =
            helium_halide::simplify_pipeline(&Pipeline::new(func, images.into_values().collect()));
        kernels.push(GeneratedKernel::new(output, pipeline, params));
    }
    Ok(kernels)
}

/// Replace empty-argument references to the output func (recursive refs) and
/// any image access that drives the reduction with the update's index.
fn rewrite_recursive(e: &Expr, output: &str, lhs_index: &Expr) -> Expr {
    match e {
        // A recursive self-reference always reads the location being updated:
        // re-index it at the LHS index (paper Fig. 4), discarding whatever
        // concrete index the abstract template tree carried.
        Expr::FuncRef(name, _) if name == output => {
            Expr::FuncRef(name.clone(), vec![lhs_index.clone()])
        }
        Expr::FuncRef(name, args) => Expr::FuncRef(
            name.clone(),
            args.iter()
                .map(|a| rewrite_recursive(a, output, lhs_index))
                .collect(),
        ),
        Expr::Image(name, args) => Expr::Image(
            name.clone(),
            args.iter()
                .map(|a| rewrite_recursive(a, output, lhs_index))
                .collect(),
        ),
        Expr::Cast(ty, inner) => {
            Expr::Cast(*ty, Box::new(rewrite_recursive(inner, output, lhs_index)))
        }
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            rewrite_recursive(a, output, lhs_index),
            rewrite_recursive(b, output, lhs_index),
        ),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            rewrite_recursive(a, output, lhs_index),
            rewrite_recursive(b, output, lhs_index),
        ),
        Expr::Select(c, t, o) => Expr::select(
            rewrite_recursive(c, output, lhs_index),
            rewrite_recursive(t, output, lhs_index),
            rewrite_recursive(o, output, lhs_index),
        ),
        Expr::Call(c, args) => Expr::Call(
            *c,
            args.iter()
                .map(|a| rewrite_recursive(a, output, lhs_index))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Map a buffer role to the conventional lifted name prefix.
pub fn role_prefix(role: BufferRole) -> &'static str {
    match role {
        BufferRole::Input => "input",
        BufferRole::Output => "output",
        BufferRole::Table => "buffer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::AffineIndex;

    fn simple_layouts() -> Vec<BufferLayout> {
        vec![
            BufferLayout {
                name: "input_1".into(),
                role: BufferRole::Input,
                base: 0x1000,
                end: 0x2000,
                element_size: 1,
                strides: vec![1, 64],
                extents: vec![64, 64],
            },
            BufferLayout {
                name: "output_1".into(),
                role: BufferRole::Output,
                base: 0x4000,
                end: 0x5000,
                element_size: 1,
                strides: vec![1, 64],
                extents: vec![64, 64],
            },
        ]
    }

    fn symbolic_add_cluster() -> SymbolicCluster {
        // output(x0,x1) = in(x0+1,x1) + in(x0,x1)
        let mut tree = Tree {
            nodes: Vec::new(),
            root: 0,
            output: Leaf::SymbolicRef {
                buffer: "output_1".into(),
                index_exprs: vec![
                    AffineIndex::identity(0, 2, 0),
                    AffineIndex::identity(1, 2, 0),
                ],
            },
            output_width: 1,
        };
        let a = tree.push(TreeNode::Leaf(Leaf::SymbolicRef {
            buffer: "input_1".into(),
            index_exprs: vec![
                AffineIndex::identity(0, 2, 1),
                AffineIndex::identity(1, 2, 0),
            ],
        }));
        let b = tree.push(TreeNode::Leaf(Leaf::SymbolicRef {
            buffer: "input_1".into(),
            index_exprs: vec![
                AffineIndex::identity(0, 2, 0),
                AffineIndex::identity(1, 2, 0),
            ],
        }));
        let root = tree.push(TreeNode::Op {
            op: TreeOp::Add,
            children: vec![a, b],
            width: 4,
        });
        tree.root = root;
        SymbolicCluster {
            output_buffer: "output_1".into(),
            tree,
            predicates: vec![],
            recursive: false,
            reduction_over: None,
            support: 100,
        }
    }

    #[test]
    fn generates_pipeline_and_source() {
        let kernels = generate_kernels(&[symbolic_add_cluster()], &simple_layouts()).unwrap();
        assert_eq!(kernels.len(), 1);
        let k = &kernels[0];
        assert_eq!(k.output, "output_1");
        assert_eq!(k.pipeline.output_func().dims(), 2);
        let src = helium_halide::generate_halide_source(
            &k.pipeline,
            &helium_halide::CodegenOptions::default(),
        );
        assert!(src.contains("ImageParam input_1"));
        assert!(src.contains("output_1(x_0,x_1)"));
        assert!(src.contains("(x_0 + 1)"));
    }

    #[test]
    fn generated_kernels_agree_across_backends() {
        let kernels = generate_kernels(&[symbolic_add_cluster()], &simple_layouts()).unwrap();
        let k = &kernels[0];
        let mut input = helium_halide::Buffer::new(ScalarType::UInt8, &[64, 64]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 5 + c[1] * 11) % 256));
        }
        let mut images = BTreeMap::new();
        images.insert("input_1".to_string(), &input);
        for schedule in [
            helium_halide::Schedule::naive(),
            helium_halide::Schedule::stencil_default(),
            helium_halide::Schedule::naive().with_compute_at("input", "x_1"),
        ] {
            let out = k.realize_checked(&[63, 64], &images, &schedule).unwrap();
            assert_eq!(out.extents(), &[63, 64]);
            // Spot-check one interior element: in(x0+1,x1) + in(x0,x1).
            let expect = (input.get(&[11, 9]).as_i64() + input.get(&[10, 9]).as_i64()) & 0xff;
            assert_eq!(out.get(&[10, 9]).as_i64(), expect);
        }
    }

    #[test]
    fn affine_expr_rendering() {
        let a = AffineIndex {
            coefficients: vec![1, 0],
            constant: 2,
        };
        assert_eq!(affine_to_expr(&a).to_string(), "(x_0 + 2)");
        let c = AffineIndex::constant(7, 2);
        assert_eq!(affine_to_expr(&c).to_string(), "7");
        let m = AffineIndex {
            coefficients: vec![3, 1],
            constant: 0,
        };
        assert_eq!(affine_to_expr(&m).to_string(), "((3 * x_0) + x_1)");
    }

    #[test]
    fn empty_clusters_are_an_error() {
        assert_eq!(
            generate_kernels(&[], &simple_layouts()).unwrap_err(),
            CodegenError::Empty
        );
    }
}
