//! # helium-core
//!
//! The Helium pipeline itself: lifting high-performance stencil kernels from
//! dynamic traces of stripped binaries up to Halide DSL code (PLDI 2015).
//!
//! The crate mirrors the two stages of the paper:
//!
//! * **Code localization** (paper §3): [`localize`] combines coverage
//!   differencing, [`regions`] (buffer structure reconstruction, Fig. 3) and
//!   dynamic-CFG-based filter-function selection.
//! * **Expression extraction** (paper §4): [`extract`] preprocesses the
//!   instruction trace (registers mapped to memory, x87 stack renamed), runs
//!   the forward analysis for input-dependent conditionals and indirect
//!   accesses, and builds concrete data-dependency [`trees`]; [`symbolic`]
//!   clusters and abstracts them and solves the affine index functions with
//!   [`linalg`]; [`codegen`] finally emits `helium-halide` pipelines and
//!   Halide C++ source.
//!
//! The [`Lifter`] type orchestrates the five instrumented runs end to end.

#![warn(missing_docs)]

pub mod codegen;
pub mod extract;
pub mod layout;
pub mod lift;
pub mod linalg;
pub mod localize;
pub mod regions;
pub mod symbolic;
pub mod trees;

pub use codegen::GeneratedKernel;
pub use layout::{BufferLayout, BufferRole, KnownData};
pub use lift::{LiftError, LiftRequest, LiftStats, LiftedStencil, Lifter};
pub use localize::{Localization, LocalizationStats};
pub use symbolic::SymbolicCluster;
pub use trees::{GuardedTree, Tree};
