//! The end-to-end lifting driver (paper §2, Fig. 1).
//!
//! The user runs the program five times per lifted stencil: two coverage runs
//! (with and without the kernel), one profiling run of the coverage
//! difference, and the detailed instruction-trace run of the filter function
//! (plus the original, uninstrumented run that produced the known output
//! data). [`Lifter::lift`] orchestrates those runs over `helium-dbi`, performs
//! code localization and expression extraction, and returns a
//! [`LiftedStencil`] carrying both the Halide C++ source text and executable
//! [`helium_halide::Pipeline`]s.

use crate::codegen::{generate_kernels, CodegenError, GeneratedKernel};
use crate::extract::{ExtractError, PreparedTrace, TreeBuilder};
use crate::layout::{infer_from_known_data, infer_generic, BufferLayout, BufferRole, KnownData};
use crate::localize::{localize, Localization, LocalizeError};
use crate::regions::reconstruct_filtered;
use crate::symbolic::{
    abstract_guarded, cluster_trees, solve_cluster, SymbolicCluster, SymbolicError,
};
use crate::trees::GuardedTree;
use helium_dbi::{InstrumentError, Instrumenter, MemTraceEntry};
use helium_halide::{CodegenOptions, Pipeline};
use helium_machine::program::Program;
use helium_machine::Cpu;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;

/// Everything the lifter needs to know about the target program.
#[derive(Debug, Clone, Default)]
pub struct LiftRequest {
    /// Known input data (one entry per input buffer), if available.
    pub known_inputs: Vec<KnownData>,
    /// Known output data (one entry per output buffer), if available.
    pub known_outputs: Vec<KnownData>,
    /// Estimated size of the data the kernel processes (used to pick candidate
    /// instructions; always available: the user knows roughly how big their
    /// image or grid is).
    pub approx_data_size: usize,
}

/// Errors produced by the lifting pipeline.
#[derive(Debug)]
pub enum LiftError {
    /// An instrumented execution failed.
    Instrument(InstrumentError),
    /// Code localization failed.
    Localize(LocalizeError),
    /// Expression extraction failed.
    Extract(ExtractError),
    /// Symbolic tree generation failed.
    Symbolic(SymbolicError),
    /// Halide code generation failed.
    Codegen(CodegenError),
    /// No output buffers could be identified.
    NoOutputBuffers,
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            LiftError::Localize(e) => write!(f, "code localization failed: {e}"),
            LiftError::Extract(e) => write!(f, "expression extraction failed: {e}"),
            LiftError::Symbolic(e) => write!(f, "symbolic tree generation failed: {e}"),
            LiftError::Codegen(e) => write!(f, "code generation failed: {e}"),
            LiftError::NoOutputBuffers => write!(f, "no output buffers identified"),
        }
    }
}

impl std::error::Error for LiftError {}

impl From<InstrumentError> for LiftError {
    fn from(e: InstrumentError) -> Self {
        LiftError::Instrument(e)
    }
}
impl From<LocalizeError> for LiftError {
    fn from(e: LocalizeError) -> Self {
        LiftError::Localize(e)
    }
}
impl From<ExtractError> for LiftError {
    fn from(e: ExtractError) -> Self {
        LiftError::Extract(e)
    }
}
impl From<SymbolicError> for LiftError {
    fn from(e: SymbolicError) -> Self {
        LiftError::Symbolic(e)
    }
}
impl From<CodegenError> for LiftError {
    fn from(e: CodegenError) -> Self {
        LiftError::Codegen(e)
    }
}

/// Statistics mirroring the paper's Fig. 6 columns.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LiftStats {
    /// Total static basic blocks executed.
    pub total_basic_blocks: usize,
    /// Basic blocks surviving coverage differencing.
    pub diff_basic_blocks: usize,
    /// Basic blocks in the selected filter function.
    pub filter_function_blocks: usize,
    /// Static instructions in the filter function.
    pub static_instruction_count: usize,
    /// Size of the memory dump in bytes.
    pub memory_dump_bytes: usize,
    /// Dynamic instructions captured in the filter-function trace.
    pub dynamic_instruction_count: usize,
    /// Node counts of representative computational trees, one per cluster.
    pub tree_sizes: Vec<usize>,
}

/// The result of lifting one stencil.
#[derive(Debug, Clone)]
pub struct LiftedStencil {
    /// The generated kernels, one per output buffer.
    pub kernels: Vec<GeneratedKernel>,
    /// The symbolic clusters the kernels were generated from.
    pub clusters: Vec<SymbolicCluster>,
    /// The inferred buffer layouts.
    pub buffers: Vec<BufferLayout>,
    /// Localization and extraction statistics (paper Fig. 6).
    pub stats: LiftStats,
    /// The code-localization result.
    pub localization: Localization,
}

impl LiftedStencil {
    /// The Halide C++ source text for all lifted kernels (paper Fig. 2(h)).
    pub fn halide_source(&self) -> String {
        let mut out = String::new();
        for (i, k) in self.kernels.iter().enumerate() {
            let options = CodegenOptions {
                output_name: format!("halide_out_{i}"),
                emit_main: i == 0,
            };
            out.push_str(&helium_halide::generate_halide_source(
                &k.pipeline,
                &options,
            ));
            out.push('\n');
        }
        out
    }

    /// The executable pipelines, keyed by output buffer name.
    pub fn pipelines(&self) -> BTreeMap<String, &Pipeline> {
        self.kernels
            .iter()
            .map(|k| (k.output.clone(), &k.pipeline))
            .collect()
    }

    /// The primary (first) generated kernel.
    ///
    /// # Panics
    /// Panics if no kernels were generated (construction guarantees at least one).
    pub fn primary(&self) -> &GeneratedKernel {
        self.kernels
            .first()
            .expect("lifting produces at least one kernel")
    }

    /// Layout of the buffer with the given lifted name.
    pub fn buffer(&self, name: &str) -> Option<&BufferLayout> {
        self.buffers.iter().find(|b| b.name == name)
    }
}

/// The lifting driver.
#[derive(Debug, Clone)]
pub struct Lifter {
    instrumenter: Instrumenter,
    seed: u64,
    min_table_bytes: u32,
}

impl Default for Lifter {
    fn default() -> Self {
        Lifter::new()
    }
}

impl Lifter {
    /// Create a lifter with default settings.
    pub fn new() -> Lifter {
        Lifter {
            instrumenter: Instrumenter::new(),
            seed: 0x48_45_4c_49,
            min_table_bytes: 128,
        }
    }

    /// Use a specific random seed for the §4.10 tree sampling.
    pub fn with_seed(mut self, seed: u64) -> Lifter {
        self.seed = seed;
        self
    }

    /// Set the minimum region size treated as a buffer rather than a parameter.
    pub fn with_min_table_bytes(mut self, bytes: u32) -> Lifter {
        self.min_table_bytes = bytes;
        self
    }

    /// Lift the kernel from `program`.
    ///
    /// `make_cpu(with_kernel)` prepares one run of the program (the analogue
    /// of the user clicking through the GUI with or without applying the
    /// filter); it is invoked once per instrumented execution.
    ///
    /// # Errors
    /// Returns a [`LiftError`] describing which stage failed.
    pub fn lift(
        &self,
        program: &Program,
        request: &LiftRequest,
        mut make_cpu: impl FnMut(bool) -> Cpu,
    ) -> Result<LiftedStencil, LiftError> {
        // Runs 1 & 2: coverage with and without the kernel (paper §3.1).
        let with = self.instrumenter.coverage(program, &mut make_cpu(true))?;
        let without = self.instrumenter.coverage(program, &mut make_cpu(false))?;
        let diff = with.difference(&without);
        // Run 3: profiling of the difference blocks.
        let profile = self
            .instrumenter
            .profile(program, &mut make_cpu(true), &diff)?;
        let localization = localize(program, &with, &without, &profile, request.approx_data_size)?;

        // Run 4: instruction trace + memory dump of the filter function.
        let (trace, dump) = self.instrumenter.function_trace(
            program,
            &mut make_cpu(true),
            localization.filter_function,
            &localization.candidate_instructions,
        )?;

        // Buffer structure reconstruction over the filter-function accesses
        // (paper §4.2), excluding the stack.
        let trace_entries: Vec<MemTraceEntry> = trace
            .records
            .iter()
            .flat_map(|r| {
                r.mem.iter().map(move |m| MemTraceEntry {
                    instr_addr: r.addr,
                    addr: m.addr,
                    width: m.width,
                    is_write: m.is_write,
                })
            })
            .collect();
        let stack_top = helium_machine::cpu::DEFAULT_STACK_TOP;
        let regions = reconstruct_filtered(&trace_entries, |e| {
            e.addr < stack_top - 0x10_0000 || e.addr > stack_top
        });

        // Dimensionality / stride / extent inference (paper §4.3) and
        // input/output buffer selection (paper §4.4).
        let mut buffers: Vec<BufferLayout> = Vec::new();
        let mut input_count = 0usize;
        let mut output_count = 0usize;
        for known in &request.known_inputs {
            input_count += 1;
            if let Some(layout) = infer_from_known_data(
                known,
                &dump,
                &regions,
                false,
                &format!("input_{input_count}"),
                BufferRole::Input,
            ) {
                buffers.push(layout);
            }
        }
        for known in &request.known_outputs {
            output_count += 1;
            if let Some(layout) = infer_from_known_data(
                known,
                &dump,
                &regions,
                true,
                &format!("output_{output_count}"),
                BufferRole::Output,
            ) {
                buffers.push(layout);
            }
        }
        // Fragmented inputs (paper §4.3, generic inference for grids with
        // ghost zones): a stencil's read set can leave gaps inside the input
        // buffer, splitting it into many small read-only regions none of which
        // individually looks data-sized. Group nearby unclaimed read-only
        // fragments and, when a group's span is data-sized, fall back to a
        // linear layout over the whole span (flat offsets are still affine in
        // the output coordinates, so the §4.10 solve remains exact).
        let mut table_count = 0usize;
        {
            const SPAN_GAP: u32 = 4096;
            let big = |len: u32| len as f64 >= request.approx_data_size as f64 * 0.5;
            let mut fragments: Vec<&crate::regions::Region> = regions
                .iter()
                .filter(|r| {
                    r.read
                        && !r.written
                        && !big(r.len())
                        && r.len() >= 16
                        && !buffers.iter().any(|b| b.contains(r.start))
                })
                .collect();
            fragments.sort_by_key(|r| r.start);
            let mut group: Vec<&crate::regions::Region> = Vec::new();
            let flush = |group: &mut Vec<&crate::regions::Region>,
                         buffers: &mut Vec<BufferLayout>,
                         input_count: &mut usize| {
                if group.len() >= 2 {
                    let start = group.first().expect("non-empty").start;
                    let end = group.last().expect("non-empty").end;
                    if big(end - start) {
                        *input_count += 1;
                        buffers.push(crate::layout::infer_linear_span(
                            group,
                            &format!("input_{input_count}"),
                            BufferRole::Input,
                        ));
                    }
                }
                group.clear();
            };
            for region in &fragments {
                match group.last() {
                    Some(prev) if region.start.saturating_sub(prev.end) <= SPAN_GAP => {
                        group.push(region);
                    }
                    Some(_) => {
                        flush(&mut group, &mut buffers, &mut input_count);
                        group.push(region);
                    }
                    None => group.push(region),
                }
            }
            flush(&mut group, &mut buffers, &mut input_count);

            // Lookup tables touched sparsely (paper §4.6/§4.7, indirect buffer
            // access): a table indexed by data values is only read at the
            // entries the input happens to select, so its trace fragments into
            // small pieces with tiny gaps. Merge read-only fragments separated
            // by less than one cache line into a single table buffer when the
            // combined span is table-sized.
            const TABLE_GAP: u32 = 64;
            let mut table_group: Vec<&crate::regions::Region> = Vec::new();
            let flush_table = |group: &mut Vec<&crate::regions::Region>,
                               buffers: &mut Vec<BufferLayout>,
                               table_count: &mut usize| {
                if group.len() >= 2 {
                    let start = group.first().expect("non-empty").start;
                    let end = group.last().expect("non-empty").end;
                    if end - start >= self.min_table_bytes && !big(end - start) {
                        *table_count += 1;
                        buffers.push(crate::layout::infer_linear_span(
                            group,
                            &format!("buffer_{table_count}"),
                            BufferRole::Table,
                        ));
                    }
                }
                group.clear();
            };
            let unclaimed: Vec<&crate::regions::Region> = fragments
                .iter()
                .copied()
                .filter(|r| !buffers.iter().any(|b| b.contains(r.start)))
                .collect();
            for region in &unclaimed {
                match table_group.last() {
                    Some(prev) if region.start.saturating_sub(prev.end) <= TABLE_GAP => {
                        table_group.push(region);
                    }
                    Some(_) => {
                        flush_table(&mut table_group, &mut buffers, &mut table_count);
                        table_group.push(region);
                    }
                    None => table_group.push(region),
                }
            }
            flush_table(&mut table_group, &mut buffers, &mut table_count);
        }

        // Remaining data-sized or table-sized regions not covered by known
        // data: classify generically.
        for region in &regions {
            if buffers.iter().any(|b| b.contains(region.start)) {
                continue;
            }
            if region.len() < self.min_table_bytes {
                continue;
            }
            let big = region.len() as f64 >= request.approx_data_size as f64 * 0.5;
            if region.written && big {
                output_count += 1;
                buffers.push(infer_generic(
                    region,
                    &format!("output_{output_count}"),
                    BufferRole::Output,
                ));
            } else if region.read && !region.written && big {
                input_count += 1;
                buffers.push(infer_generic(
                    region,
                    &format!("input_{input_count}"),
                    BufferRole::Input,
                ));
            } else if region.read && !region.written {
                table_count += 1;
                buffers.push(infer_generic(
                    region,
                    &format!("buffer_{table_count}"),
                    BufferRole::Table,
                ));
            } else if region.written && region.len() >= self.min_table_bytes {
                // Small written regions (e.g. histograms) are outputs too.
                output_count += 1;
                buffers.push(infer_generic(
                    region,
                    &format!("output_{output_count}"),
                    BufferRole::Output,
                ));
            }
        }
        if !buffers.iter().any(|b| b.role == BufferRole::Output) {
            return Err(LiftError::NoOutputBuffers);
        }

        // Expression extraction (paper §4.5–§4.7).
        let input_layouts: Vec<BufferLayout> = buffers
            .iter()
            .filter(|b| b.role != BufferRole::Output)
            .cloned()
            .collect();
        let prepared: PreparedTrace = crate::extract::prepare_trace(&trace, &input_layouts)?;
        let builder = TreeBuilder::new(&prepared, &buffers);
        let writes = builder.output_writes();
        if writes.is_empty() {
            return Err(LiftError::Extract(ExtractError::NoOutputs));
        }
        let mut guarded: Vec<GuardedTree> = Vec::new();
        for (i, d) in writes {
            if let Some(tree) = builder.build_output_tree(i, d) {
                guarded.push(abstract_guarded(&tree, &buffers));
            }
        }

        // Clustering and symbolic tree generation (paper §4.8–§4.10).
        let clusters = cluster_trees(guarded);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut symbolic = Vec::new();
        let mut tree_sizes = Vec::new();
        for c in &clusters {
            let s = solve_cluster(c, &buffers, &mut rng)?;
            tree_sizes.push(s.tree.node_count());
            symbolic.push(s);
        }

        // Halide code generation (paper §4.11).
        let kernels = generate_kernels(&symbolic, &buffers)?;

        let stats = LiftStats {
            total_basic_blocks: localization.total_blocks,
            diff_basic_blocks: localization.diff_blocks.len(),
            filter_function_blocks: localization.filter_blocks.len(),
            static_instruction_count: localization.filter_static_instructions,
            memory_dump_bytes: dump.size_bytes(),
            dynamic_instruction_count: trace.len(),
            tree_sizes,
        };

        Ok(LiftedStencil {
            kernels,
            clusters: symbolic,
            buffers,
            stats,
            localization,
        })
    }
}
