//! Code localization (paper §3): coverage differencing, candidate-instruction
//! detection and filter-function selection.

use crate::regions::{reconstruct, Region};
use helium_dbi::{CoverageReport, ProfileReport};
use helium_machine::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Fraction of the estimated data size a region must reach to be considered a
/// candidate input/output buffer (the paper looks for regions "of size
/// comparable to or larger than the input and output data sizes").
pub const CANDIDATE_SIZE_FRACTION: f64 = 0.5;

/// Result of code localization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Localization {
    /// Basic blocks surviving coverage differencing.
    pub diff_blocks: BTreeSet<u32>,
    /// Reconstructed memory regions from the profiling memory trace.
    pub regions: Vec<Region>,
    /// Static instructions that touch candidate (data-sized) regions.
    pub candidate_instructions: BTreeSet<u32>,
    /// Entry address of the selected filter function.
    pub filter_function: u32,
    /// Basic blocks attributed to the filter function.
    pub filter_blocks: BTreeSet<u32>,
    /// Static instruction count of the filter function's blocks.
    pub filter_static_instructions: usize,
    /// Total static basic blocks executed in the "with kernel" run.
    pub total_blocks: usize,
}

/// Statistics echoing the columns of the paper's Fig. 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizationStats {
    /// Total static basic blocks executed.
    pub total_basic_blocks: usize,
    /// Basic blocks surviving the coverage difference.
    pub diff_basic_blocks: usize,
    /// Basic blocks in the selected filter function.
    pub filter_function_blocks: usize,
    /// Static instructions in the filter function.
    pub static_instruction_count: usize,
}

impl Localization {
    /// Summarize as Fig. 6-style statistics.
    pub fn stats(&self) -> LocalizationStats {
        LocalizationStats {
            total_basic_blocks: self.total_blocks,
            diff_basic_blocks: self.diff_blocks.len(),
            filter_function_blocks: self.filter_blocks.len(),
            static_instruction_count: self.filter_static_instructions,
        }
    }
}

/// Errors raised during localization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalizeError {
    /// The coverage difference was empty (the two runs were identical).
    EmptyDifference,
    /// No candidate instructions touched data-sized regions.
    NoCandidates,
}

impl std::fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizeError::EmptyDifference => {
                write!(
                    f,
                    "coverage difference is empty; the kernel did not execute"
                )
            }
            LocalizeError::NoCandidates => {
                write!(
                    f,
                    "no instructions touch regions comparable to the data size"
                )
            }
        }
    }
}

impl std::error::Error for LocalizeError {}

/// Perform localization from the three instrumented runs' results.
///
/// * `with` / `without` — coverage of the run with and without the kernel
///   (paper §3.1),
/// * `profile` — detailed profile of the difference blocks (counts,
///   predecessors, call targets, memory trace),
/// * `approx_data_size` — estimated size of the image/grid data, used to pick
///   candidate instructions,
/// * `program` — the loaded program (used to attribute instructions to blocks).
///
/// # Errors
/// Returns [`LocalizeError`] when the difference is empty or no candidate
/// instructions exist.
pub fn localize(
    program: &Program,
    with: &CoverageReport,
    without: &CoverageReport,
    profile: &ProfileReport,
    approx_data_size: usize,
) -> Result<Localization, LocalizeError> {
    let diff_blocks = with.difference(without);
    if diff_blocks.is_empty() {
        return Err(LocalizeError::EmptyDifference);
    }

    // Buffer structure reconstruction over the profiling memory trace.
    let regions = reconstruct(&profile.memory_trace);

    // Candidate instructions: those accessing regions comparable to the data.
    let threshold = ((approx_data_size as f64) * CANDIDATE_SIZE_FRACTION) as u32;
    let mut candidate_instructions = BTreeSet::new();
    for region in &regions {
        if region.len() >= threshold.max(1) {
            candidate_instructions.extend(region.instructions.iter().copied());
        }
    }
    if candidate_instructions.is_empty() {
        return Err(LocalizeError::NoCandidates);
    }

    // Filter function selection: the function containing the most candidate
    // static instructions (paper §3.3), using the dynamic CFG's block-to-
    // function attribution.
    let leaders = program.block_leaders();
    let mut function_votes: BTreeMap<u32, usize> = BTreeMap::new();
    for &instr in &candidate_instructions {
        let block = program.block_leader_of(instr, &leaders);
        if let Some(func) = profile.block_function.get(&block) {
            *function_votes.entry(*func).or_insert(0) += 1;
        }
    }
    let filter_function = function_votes
        .iter()
        .max_by_key(|(_, votes)| **votes)
        .map(|(f, _)| *f)
        .ok_or(LocalizeError::NoCandidates)?;

    // Blocks and instruction count attributed to the filter function (and its
    // callees observed in the dynamic CFG).
    let mut filter_functions = BTreeSet::new();
    filter_functions.insert(filter_function);
    // Include dynamic callees whose call sites live in the filter function.
    for (site, targets) in &profile.call_targets {
        let block = program.block_leader_of(*site, &leaders);
        if profile.block_function.get(&block) == Some(&filter_function) {
            filter_functions.extend(targets.iter().copied());
        }
    }
    let filter_blocks: BTreeSet<u32> = profile
        .block_function
        .iter()
        .filter(|(_, f)| filter_functions.contains(f))
        .map(|(b, _)| *b)
        .collect();
    let filter_static_instructions = profile
        .instr_counts
        .keys()
        .filter(|i| {
            let block = program.block_leader_of(**i, &leaders);
            filter_blocks.contains(&block)
        })
        .count();

    Ok(Localization {
        diff_blocks,
        regions,
        candidate_instructions,
        filter_function,
        filter_blocks,
        filter_static_instructions,
        total_blocks: with.static_block_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_apps::photoflow::{PhotoFilter, PhotoFlow};
    use helium_apps::PlanarImage;
    use helium_dbi::Instrumenter;

    #[test]
    fn localizes_the_blur_filter_function() {
        let image = PlanarImage::random(24, 13, 1, 16, 5);
        let app = PhotoFlow::new(PhotoFilter::Blur, image);
        let instr = Instrumenter::new();
        let with = instr
            .coverage(app.program(), &mut app.fresh_cpu(true))
            .unwrap();
        let without = instr
            .coverage(app.program(), &mut app.fresh_cpu(false))
            .unwrap();
        let diff = with.difference(&without);
        let profile = instr
            .profile(app.program(), &mut app.fresh_cpu(true), &diff)
            .unwrap();
        let loc = localize(
            app.program(),
            &with,
            &without,
            &profile,
            app.approx_data_size(),
        )
        .expect("localization succeeds");
        assert_eq!(
            loc.filter_function,
            app.filter_entry_for_reference(),
            "the stencil function should be selected"
        );
        assert!(loc.stats().diff_basic_blocks < loc.stats().total_basic_blocks);
        assert!(loc.stats().static_instruction_count > 10);
        assert!(!loc.candidate_instructions.is_empty());
    }

    #[test]
    fn empty_difference_is_an_error() {
        let image = PlanarImage::random(16, 8, 1, 16, 5);
        let app = PhotoFlow::new(PhotoFilter::Invert, image);
        let instr = Instrumenter::new();
        let with = instr
            .coverage(app.program(), &mut app.fresh_cpu(false))
            .unwrap();
        let without = instr
            .coverage(app.program(), &mut app.fresh_cpu(false))
            .unwrap();
        let profile = instr
            .profile(app.program(), &mut app.fresh_cpu(false), &BTreeSet::new())
            .unwrap();
        let err = localize(
            app.program(),
            &with,
            &without,
            &profile,
            app.approx_data_size(),
        )
        .unwrap_err();
        assert_eq!(err, LocalizeError::EmptyDifference);
    }
}
