//! Buffer layouts and dimensionality / stride / extent inference
//! (paper §4.3 and §4.4).
//!
//! A [`BufferLayout`] describes the shape of a buffer in memory well enough to
//! convert absolute addresses into logical index vectors (buffer inference,
//! paper §4.8). Layouts are produced three ways, as in the paper:
//!
//! * from *known input/output data* located in the memory dump (search for the
//!   supplied scanlines, derive the base and the scanline stride, detect
//!   alignment padding);
//! * *generically* from the recursive grouping structure of buffer structure
//!   reconstruction (one dimension per grouping level, plus the contiguous
//!   innermost dimension) — used when no known data is available (miniGMG);
//! * the *pointwise fallback*: a linear, stride-1 buffer.

use crate::regions::Region;
use helium_dbi::MemoryDump;
use serde::{Deserialize, Serialize};

/// How a buffer is used by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BufferRole {
    /// Read, never written, not indexed by data values: an input.
    Input,
    /// Written with values derived from inputs: an output.
    Output,
    /// Read-only table accessed through data-dependent indices.
    Table,
}

/// The reconstructed shape of one buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferLayout {
    /// Identifier (assigned in discovery order: `input_1`, `output_1`, ...).
    pub name: String,
    /// Role of the buffer.
    pub role: BufferRole,
    /// Base address used for index decomposition.
    pub base: u32,
    /// One past the last byte of the buffer.
    pub end: u32,
    /// Element size in bytes.
    pub element_size: u32,
    /// Stride of each dimension in bytes, innermost first.
    pub strides: Vec<u32>,
    /// Extent of each dimension in elements, innermost first.
    pub extents: Vec<u32>,
}

impl BufferLayout {
    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.strides.len()
    }

    /// Returns `true` if `addr` falls inside the buffer.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end
    }

    /// Convert an absolute address to a logical index vector (innermost
    /// dimension first). Returns `None` when the address is outside the
    /// buffer or not element-aligned for the outermost decomposition.
    pub fn index_of(&self, addr: u32) -> Option<Vec<i64>> {
        if !self.contains(addr) {
            return None;
        }
        let mut offset = (addr - self.base) as i64;
        let mut indices = vec![0i64; self.dims()];
        // Decompose from the outermost (largest stride) dimension down.
        let mut order: Vec<usize> = (0..self.dims()).collect();
        order.sort_by_key(|&d| std::cmp::Reverse(self.strides[d]));
        for &d in &order {
            let stride = self.strides[d] as i64;
            if stride == 0 {
                continue;
            }
            indices[d] = offset / stride;
            offset -= indices[d] * stride;
        }
        Some(indices)
    }

    /// Size of the buffer in bytes.
    pub fn byte_len(&self) -> u32 {
        self.end - self.base
    }
}

/// Known data for one buffer: the logical scanlines as they would appear
/// contiguously in memory (the user-supplied image contents).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnownData {
    /// Scanlines, outermost dimension last (row-major).
    pub rows: Vec<Vec<u8>>,
    /// Element size in bytes (1 for 8-bit image channels).
    pub element_size: u32,
}

impl KnownData {
    /// Known 8-bit image data from its scanlines.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> KnownData {
        KnownData {
            rows,
            element_size: 1,
        }
    }
}

/// Infer a layout from known data located in a memory dump (paper §4.3,
/// "inference using input and output data").
///
/// Searches the dump for the first two scanlines to obtain the buffer start
/// and the scanline stride (which exposes any alignment padding), validates
/// the remaining scanlines, and anchors the base at the start of the
/// reconstructed region containing the data so padded borders resolve to
/// non-negative indices.
pub fn infer_from_known_data(
    known: &KnownData,
    dump: &MemoryDump,
    regions: &[Region],
    in_written_pages: bool,
    name: &str,
    role: BufferRole,
) -> Option<BufferLayout> {
    if known.rows.len() < 2 {
        return None;
    }
    let find = |needle: &[u8]| {
        if in_written_pages {
            dump.find_in_written_pages(needle)
        } else {
            dump.find_in_read_pages(needle)
        }
    };
    // Locate two *interior* scanlines. The first scanline is often duplicated
    // into a replicated-edge padding row, so when at least three scanlines are
    // known the stride is derived from rows 1 and 2 (which only occur once)
    // and row 0's true location is recovered from it.
    let row_len = known.rows[0].len() as u32;
    let (row0, stride) = if known.rows.len() >= 3 {
        let r1 = find(&known.rows[1])?;
        let r2 = find(&known.rows[2])?;
        if r2 <= r1 {
            return None;
        }
        let stride = r2 - r1;
        (r1.checked_sub(stride)?, stride)
    } else {
        let r0 = find(&known.rows[0])?;
        let r1 = find(&known.rows[1])?;
        if r1 <= r0 {
            return None;
        }
        (r0, r1 - r0)
    };
    if stride < row_len {
        return None;
    }
    // Detect edge padding by comparing the bytes just before each located
    // scanline against the supplied data: image editors replicate the edge
    // pixel into the padding ring, so `pad` bytes equal to the first pixel of
    // every row indicate a padded border (paper §4.3: "It detects alignment
    // padding by comparing against the given input and output data").
    let read_byte = |addr: u32| -> Option<u8> {
        if in_written_pages {
            dump.read_u8(addr)
        } else {
            // Prefer the read-page snapshot for inputs.
            dump.read_u8(addr)
        }
    };
    let check_rows = known.rows.len().min(4);
    let mut pad = 0u32;
    'pads: for candidate in 1..=8u32 {
        for (r, row) in known.rows.iter().take(check_rows).enumerate() {
            let row_addr = row0 + r as u32 * stride;
            if row_addr < candidate {
                break 'pads;
            }
            match read_byte(row_addr - candidate) {
                Some(b) if b == row[0] => {}
                _ => break 'pads,
            }
        }
        pad = candidate;
    }
    // Anchor the base at the start of the padded buffer so every access the
    // kernel performs (including the padding ring) decomposes into
    // non-negative, wrap-free indices. The buffer covers the known scanlines
    // plus the detected padding ring; neighbouring buffers (other colour
    // planes) must not be swallowed even when the reconstruction linked them
    // into one strided region.
    let base = row0.saturating_sub(pad * stride + pad * known.element_size);
    let end = row0 + stride * (known.rows.len() as u32 + pad);
    let rows_total = (end - base).div_ceil(stride);
    let _ = regions;
    let _ = row_len;
    Some(BufferLayout {
        name: name.to_string(),
        role,
        base,
        end,
        element_size: known.element_size,
        strides: vec![known.element_size, stride],
        extents: vec![stride / known.element_size, rows_total],
    })
}

/// Generic inference from the recursive grouping structure of a region
/// (paper §4.3, "generic inference"). One dimension per grouping level plus
/// the contiguous innermost dimension.
pub fn infer_generic(region: &Region, name: &str, role: BufferRole) -> BufferLayout {
    let elem = region.element_width.max(1);
    let mut strides = vec![elem];
    let mut extents = Vec::new();
    // Extent of the innermost dimension: contiguous bytes before the first
    // grouping stride (or the whole region if there is no grouping).
    let inner_bytes = region
        .group_strides
        .first()
        .map(|(s, _)| *s)
        .unwrap_or(region.len())
        .min(region.len());
    // The innermost run is bounded by the actual data, not the stride gap.
    let inner_extent = inner_bytes / elem;
    extents.push(inner_extent.max(1));
    for (stride, count) in &region.group_strides {
        strides.push(*stride);
        extents.push(*count);
    }
    BufferLayout {
        name: name.to_string(),
        role,
        base: region.start,
        end: region.end,
        element_size: elem,
        strides,
        extents,
    }
}

/// Infer a *linear* layout covering a span of fragmented regions.
///
/// Stencils over grids with ghost zones (the miniGMG smooth) read an irregular
/// subset of the input grid: the union of the shifted interiors. Buffer
/// structure reconstruction then yields many small read-only regions with gaps
/// between them, none of which individually looks like the input buffer. The
/// paper's fallback for such cases is to treat the buffer as linear; the flat
/// element offset of a multi-dimensional grid cell is still an affine function
/// of the output coordinates, so the §4.10 linear solve recovers a correct
/// (flattened) index expression.
///
/// `regions` must be non-empty; the resulting buffer spans from the lowest
/// start to the highest end, with the most common element width.
///
/// # Panics
/// Panics if `regions` is empty.
pub fn infer_linear_span(regions: &[&Region], name: &str, role: BufferRole) -> BufferLayout {
    assert!(!regions.is_empty(), "a span needs at least one region");
    let start = regions.iter().map(|r| r.start).min().expect("non-empty");
    let end = regions.iter().map(|r| r.end).max().expect("non-empty");
    // Majority vote over the fragments' element widths, weighted by length.
    let mut votes: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for r in regions {
        *votes.entry(r.element_width.max(1)).or_insert(0) += r.len() as u64;
    }
    let elem = votes
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(w, _)| *w)
        .unwrap_or(1);
    BufferLayout {
        name: name.to_string(),
        role,
        base: start,
        end,
        element_size: elem,
        strides: vec![elem],
        extents: vec![(end - start) / elem],
    }
}

/// The pointwise fallback: a linear buffer with stride 1 (paper §4.3,
/// "when inference is unnecessary").
pub fn infer_linear(region: &Region, name: &str, role: BufferRole) -> BufferLayout {
    let elem = region.element_width.max(1);
    BufferLayout {
        name: name.to_string(),
        role,
        base: region.start,
        end: region.end,
        element_size: elem,
        strides: vec![elem],
        extents: vec![region.len() / elem],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn region(start: u32, end: u32, strides: Vec<(u32, u32)>, elem: u32) -> Region {
        Region {
            start,
            end,
            instructions: BTreeSet::new(),
            element_width: elem,
            read: true,
            written: false,
            group_strides: strides,
        }
    }

    #[test]
    fn index_decomposition_two_dims() {
        let layout = BufferLayout {
            name: "input_1".into(),
            role: BufferRole::Input,
            base: 0x1000,
            end: 0x1000 + 48 * 34,
            element_size: 1,
            strides: vec![1, 48],
            extents: vec![48, 34],
        };
        assert_eq!(layout.index_of(0x1000), Some(vec![0, 0]));
        assert_eq!(layout.index_of(0x1000 + 48 * 3 + 7), Some(vec![7, 3]));
        assert_eq!(layout.index_of(0x0fff), None);
        assert_eq!(layout.dims(), 2);
        assert_eq!(layout.byte_len(), 48 * 34);
    }

    #[test]
    fn generic_inference_builds_dims_from_groupings() {
        let r = region(0xB000, 0xB000 + 240 * 3, vec![(48, 4), (240, 3)], 8);
        let layout = infer_generic(&r, "input_1", BufferRole::Input);
        assert_eq!(layout.dims(), 3);
        assert_eq!(layout.strides, vec![8, 48, 240]);
        assert_eq!(layout.extents[0], 6);
        assert_eq!(layout.extents[1], 4);
        assert_eq!(layout.extents[2], 3);
        assert_eq!(
            layout.index_of(0xB000 + 240 + 48 * 2 + 16),
            Some(vec![2, 2, 1])
        );
    }

    #[test]
    fn linear_fallback() {
        let r = region(0x4000, 0x4100, vec![], 1);
        let layout = infer_linear(&r, "input_1", BufferRole::Input);
        assert_eq!(layout.dims(), 1);
        assert_eq!(layout.extents, vec![0x100]);
        assert_eq!(layout.index_of(0x4050), Some(vec![0x50]));
    }

    #[test]
    fn known_data_inference_finds_stride_and_padding() {
        use helium_dbi::MemoryDump;
        // Build a fake dump: rows of 8 bytes at stride 16 starting at 0x2010,
        // with the containing region starting at 0x2000.
        let mut page = vec![0u8; 4096];
        let rows: Vec<Vec<u8>> = (0..4u8)
            .map(|r| (0..8u8).map(|x| r * 10 + x + 1).collect())
            .collect();
        for (r, row) in rows.iter().enumerate() {
            page[0x10 + r * 16..0x10 + r * 16 + 8].copy_from_slice(row);
        }
        let mut dump = MemoryDump::default();
        dump.read_pages.insert(0x2000, page);
        let reg = region(0x2000, 0x2000 + 0x10 + 4 * 16, vec![(16, 4)], 1);
        let layout = infer_from_known_data(
            &KnownData::from_rows(rows),
            &dump,
            &[reg],
            false,
            "input_1",
            BufferRole::Input,
        )
        .expect("layout");
        assert_eq!(layout.strides, vec![1, 16]);
        // No replicated-edge padding precedes the data, so the base is the
        // located data itself.
        assert_eq!(layout.base, 0x2010);
        assert_eq!(layout.index_of(0x2010), Some(vec![0, 0]));
        assert_eq!(layout.index_of(0x2010 + 16 + 3), Some(vec![3, 1]));
        assert_eq!(layout.role, BufferRole::Input);
    }
}
