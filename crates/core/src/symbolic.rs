//! Tree clustering, buffer inference, reduction-domain inference and symbolic
//! tree generation (paper §4.8–§4.10).

use crate::layout::{BufferLayout, BufferRole};
use crate::linalg::{fit_affine, AffineFit};
use crate::trees::{AffineIndex, GuardedTree, Leaf, Predicate, Tree, TreeNode};
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors raised while abstracting and symbolizing trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicError {
    /// A leaf index could not be expressed as an affine function of the output
    /// coordinates.
    NotAffine {
        /// Buffer whose index failed to fit.
        buffer: String,
    },
    /// The cluster does not contain enough distinct access vectors.
    RankDeficient,
    /// No clusters were produced (no output writes).
    Empty,
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::NotAffine { buffer } => {
                write!(f, "index function for `{buffer}` is not affine")
            }
            SymbolicError::RankDeficient => {
                write!(f, "not enough distinct trees to solve the index functions")
            }
            SymbolicError::Empty => write!(f, "no computational trees to abstract"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// A cluster of structurally identical abstract trees (paper §4.8).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster key (structure + predicates + output buffer).
    pub key: String,
    /// Member trees (abstract: leaves are buffer references / params / consts).
    pub trees: Vec<GuardedTree>,
}

impl Cluster {
    /// Name of the output buffer this cluster writes.
    pub fn output_buffer(&self) -> Option<String> {
        self.trees.first().and_then(|t| match &t.tree.output {
            Leaf::BufferRef { buffer, .. } => Some(buffer.clone()),
            _ => None,
        })
    }
}

/// Convert concrete leaves (absolute addresses) into buffer references or
/// parameters using the inferred layouts (buffer inference, paper §4.8).
pub fn abstract_tree(tree: &Tree, buffers: &[BufferLayout]) -> Tree {
    let mut out = tree.clone();
    for node in &mut out.nodes {
        if let TreeNode::Leaf(leaf) = node {
            *leaf = abstract_leaf(leaf, buffers);
        }
    }
    out.output = abstract_leaf(&out.output, buffers);
    out
}

fn abstract_leaf(leaf: &Leaf, buffers: &[BufferLayout]) -> Leaf {
    match leaf {
        Leaf::Mem { addr, width, value } => {
            if *addr < 0x1_0000_0000 {
                let a = *addr as u32;
                if let Some(b) = buffers.iter().find(|b| b.contains(a)) {
                    if let Some(indices) = b.index_of(a) {
                        return Leaf::BufferRef {
                            buffer: b.name.clone(),
                            indices,
                        };
                    }
                }
            }
            // Anything outside every buffer is a parameter (paper §4.8).
            Leaf::Param {
                name: format!("p_{addr:x}"),
                value: *value,
                width: *width,
                is_float: *width == 8,
            }
        }
        other => other.clone(),
    }
}

/// Abstract a guarded tree (computation plus predicates).
pub fn abstract_guarded(tree: &GuardedTree, buffers: &[BufferLayout]) -> GuardedTree {
    GuardedTree {
        tree: abstract_tree(&tree.tree, buffers),
        predicates: tree
            .predicates
            .iter()
            .map(|p| Predicate {
                cmp: p.cmp,
                lhs: abstract_tree(&p.lhs, buffers),
                rhs: abstract_tree(&p.rhs, buffers),
            })
            .collect(),
        recursive: tree.recursive,
    }
}

/// Group abstract trees into clusters by structural key (paper §4.8).
pub fn cluster_trees(trees: Vec<GuardedTree>) -> Vec<Cluster> {
    let mut map: BTreeMap<String, Vec<GuardedTree>> = BTreeMap::new();
    for t in trees {
        map.entry(t.cluster_key()).or_default().push(t);
    }
    map.into_iter()
        .map(|(key, trees)| Cluster { key, trees })
        .collect()
}

/// A symbolic cluster: one computational tree whose leaves carry affine index
/// functions, plus symbolic predicates and an optional reduction domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolicCluster {
    /// Output buffer written by this cluster.
    pub output_buffer: String,
    /// The symbolic computational tree.
    pub tree: Tree,
    /// Symbolic predicates guarding the tree.
    pub predicates: Vec<(crate::trees::PredicateCmp, Tree, Tree)>,
    /// `true` when the cluster represents a recursive (reduction) update.
    pub recursive: bool,
    /// Reduction domain: the buffer whose bounds drive the update, if any.
    pub reduction_over: Option<String>,
    /// Number of concrete trees that backed this cluster.
    pub support: usize,
}

/// Solve a cluster into a symbolic cluster (paper §4.10).
///
/// `dims` is the dimensionality of the output buffer; `samples` trees are
/// chosen at random (the paper uses `2D + 1`).
pub fn solve_cluster(
    cluster: &Cluster,
    buffers: &[BufferLayout],
    rng: &mut StdRng,
) -> Result<SymbolicCluster, SymbolicError> {
    let first = cluster.trees.first().ok_or(SymbolicError::Empty)?;
    let output_buffer = cluster.output_buffer().ok_or(SymbolicError::Empty)?;
    let out_layout = buffers
        .iter()
        .find(|b| b.name == output_buffer)
        .ok_or(SymbolicError::Empty)?;
    let dims = out_layout.dims();

    // Select 2D + 1 random trees (or all of them when the cluster is small).
    let want = (2 * dims + 1).max(2);
    let mut selected: Vec<&GuardedTree> = cluster.trees.iter().collect();
    selected.shuffle(rng);
    selected.truncate(want.min(cluster.trees.len()));

    // Access vectors: the output coordinates of each selected tree.
    let access_vectors: Vec<Vec<i64>> = selected
        .iter()
        .map(|t| match &t.tree.output {
            Leaf::BufferRef { indices, .. } => indices.clone(),
            _ => vec![0; dims],
        })
        .collect();

    // Recursive (reduction) clusters are not symbolized against the output
    // coordinates: their indices range over the reduction domain instead
    // (paper §4.9). The abstract template tree is kept as-is and the driving
    // buffer is extracted below.
    let symbolic_tree = if first.recursive {
        first.tree.clone()
    } else {
        symbolize_tree(
            &first.tree,
            &selected.iter().map(|t| &t.tree).collect::<Vec<_>>(),
            &access_vectors,
            dims,
        )?
    };
    let mut predicates = Vec::new();
    if first.recursive {
        let mut over = None;
        for l in first.tree.leaves_in_order() {
            if let Leaf::BufferRef { buffer, .. } = l {
                if *buffer != output_buffer && over.is_none() {
                    over = Some(buffer.clone());
                }
            }
        }
        return Ok(SymbolicCluster {
            output_buffer,
            tree: symbolic_tree,
            predicates,
            recursive: true,
            reduction_over: over,
            support: cluster.trees.len(),
        });
    }
    for (pi, p) in first.predicates.iter().enumerate() {
        let lhs_trees: Vec<&Tree> = selected.iter().map(|t| &t.predicates[pi].lhs).collect();
        let rhs_trees: Vec<&Tree> = selected.iter().map(|t| &t.predicates[pi].rhs).collect();
        let lhs = symbolize_tree(&p.lhs, &lhs_trees, &access_vectors, dims)?;
        let rhs = symbolize_tree(&p.rhs, &rhs_trees, &access_vectors, dims)?;
        predicates.push((p.cmp, lhs, rhs));
    }

    // Reduction domain inference (paper §4.9): if the cluster is recursive and
    // the root is indirectly addressed through another buffer, the domain is
    // that buffer's bounds.
    let reduction_over = if first.recursive {
        let mut over = None;
        first.tree.leaves_in_order().iter().for_each(|l| {
            if let Leaf::BufferRef { buffer, .. } = l {
                if *buffer != output_buffer && over.is_none() {
                    over = Some(buffer.clone());
                }
            }
        });
        over
    } else {
        None
    };

    Ok(SymbolicCluster {
        output_buffer,
        tree: symbolic_tree,
        predicates,
        recursive: first.recursive,
        reduction_over,
        support: cluster.trees.len(),
    })
}

/// Replace buffer-reference leaves by symbolic references whose indices are
/// affine functions of the output coordinates, fitted across `instances`.
fn symbolize_tree(
    template: &Tree,
    instances: &[&Tree],
    access_vectors: &[Vec<i64>],
    dims: usize,
) -> Result<Tree, SymbolicError> {
    let mut out = template.clone();
    // Leaves are visited in the same order in every tree of a cluster because
    // the structures are identical (that is what clustering guarantees).
    let template_leaves: Vec<usize> = leaf_node_ids(template);
    let instance_leaves: Vec<Vec<&Leaf>> = instances.iter().map(|t| t.leaves_in_order()).collect();
    // Table leaves (the buffer operand of an indirect load) are indexed by
    // data values, not output coordinates; they are kept as-is and the index
    // expression child carries the real indexing.
    let table_leaves: std::collections::BTreeSet<usize> = template
        .nodes
        .iter()
        .filter_map(|n| match n {
            TreeNode::Op {
                op: crate::trees::TreeOp::IndirectLoad,
                children,
                ..
            } => children.first().copied(),
            _ => None,
        })
        .collect();

    for (pos, &node_id) in template_leaves.iter().enumerate() {
        if table_leaves.contains(&node_id) {
            if let TreeNode::Leaf(Leaf::BufferRef { buffer, indices }) = &template.nodes[node_id] {
                out.nodes[node_id] = TreeNode::Leaf(Leaf::SymbolicRef {
                    buffer: buffer.clone(),
                    index_exprs: indices
                        .iter()
                        .map(|_| AffineIndex::constant(0, dims))
                        .collect(),
                });
            }
            continue;
        }
        let leaf = match &template.nodes[node_id] {
            TreeNode::Leaf(l) => l.clone(),
            _ => continue,
        };
        match leaf {
            Leaf::BufferRef { buffer, indices } => {
                let leaf_dims = indices.len();
                let mut index_exprs = Vec::with_capacity(leaf_dims);
                for d in 0..leaf_dims {
                    let rhs: Vec<i64> = instance_leaves
                        .iter()
                        .map(|leaves| match leaves.get(pos) {
                            Some(Leaf::BufferRef { indices, .. }) => {
                                indices.get(d).copied().unwrap_or(0)
                            }
                            _ => 0,
                        })
                        .collect();
                    match fit_affine(access_vectors, &rhs) {
                        AffineFit::Constant(c) => index_exprs.push(AffineIndex::constant(c, dims)),
                        AffineFit::Affine {
                            coefficients,
                            constant,
                        } => index_exprs.push(AffineIndex {
                            coefficients,
                            constant,
                        }),
                        AffineFit::RankDeficient => {
                            // Fall back to the observed constant when every
                            // instance agrees; otherwise report the error.
                            if rhs.iter().all(|&v| v == rhs[0]) {
                                index_exprs.push(AffineIndex::constant(rhs[0], dims));
                            } else {
                                return Err(SymbolicError::RankDeficient);
                            }
                        }
                        AffineFit::NotAffine => {
                            return Err(SymbolicError::NotAffine {
                                buffer: format!(
                                "{buffer} dim {d}: outputs {access_vectors:?} -> indices {rhs:?}"
                            ),
                            })
                        }
                    }
                }
                out.nodes[node_id] = TreeNode::Leaf(Leaf::SymbolicRef {
                    buffer: buffer.clone(),
                    index_exprs,
                });
            }
            Leaf::Const(c) => {
                // Verify the constant is stable across the cluster; the paper
                // also allows affine constants but stable constants cover all
                // our kernels.
                let all_same = instance_leaves
                    .iter()
                    .all(|leaves| matches!(leaves.get(pos), Some(Leaf::Const(v)) if *v == c));
                if !all_same {
                    return Err(SymbolicError::NotAffine {
                        buffer: "<constant>".to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    // The output location becomes the identity symbolic reference.
    if let Leaf::BufferRef { buffer, .. } = &template.output {
        out.output = Leaf::SymbolicRef {
            buffer: buffer.clone(),
            index_exprs: (0..dims)
                .map(|d| AffineIndex::identity(d, dims, 0))
                .collect(),
        };
    }
    Ok(out)
}

fn leaf_node_ids(tree: &Tree) -> Vec<usize> {
    let mut out = Vec::new();
    collect(tree, tree.root, &mut out);
    fn collect(tree: &Tree, node: usize, out: &mut Vec<usize>) {
        match &tree.nodes[node] {
            TreeNode::Leaf(_) => out.push(node),
            TreeNode::Op { children, .. } => {
                for &c in children {
                    collect(tree, c, out);
                }
            }
        }
    }
    out
}

/// Group buffers by role for reporting.
pub fn buffers_by_role(buffers: &[BufferLayout]) -> BTreeMap<BufferRole, Vec<String>> {
    let mut map: BTreeMap<BufferRole, Vec<String>> = BTreeMap::new();
    for b in buffers {
        map.entry(b.role).or_default().push(b.name.clone());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::TreeOp;

    fn layouts() -> Vec<BufferLayout> {
        vec![
            BufferLayout {
                name: "input_1".into(),
                role: BufferRole::Input,
                base: 0x1000,
                end: 0x1000 + 48 * 16,
                element_size: 1,
                strides: vec![1, 48],
                extents: vec![48, 16],
            },
            BufferLayout {
                name: "output_1".into(),
                role: BufferRole::Output,
                base: 0x4000,
                end: 0x4000 + 48 * 16,
                element_size: 1,
                strides: vec![1, 48],
                extents: vec![48, 16],
            },
        ]
    }

    /// Build a concrete tree mimicking `out(x,y) = in(x+1,y) + in(x,y)` at a
    /// given output coordinate.
    fn concrete_tree(x: i64, y: i64) -> GuardedTree {
        let in_addr = |dx: i64| (0x1000 + (y * 48) + x + dx) as u64;
        let out_addr = (0x4000 + y * 48 + x) as u64;
        let mut t = Tree {
            nodes: Vec::new(),
            root: 0,
            output: Leaf::Mem {
                addr: out_addr,
                width: 1,
                value: 0,
            },
            output_width: 1,
        };
        let a = t.push(TreeNode::Leaf(Leaf::Mem {
            addr: in_addr(1),
            width: 1,
            value: 0,
        }));
        let b = t.push(TreeNode::Leaf(Leaf::Mem {
            addr: in_addr(0),
            width: 1,
            value: 0,
        }));
        let root = t.push(TreeNode::Op {
            op: TreeOp::Add,
            children: vec![a, b],
            width: 4,
        });
        t.root = root;
        GuardedTree {
            tree: t,
            predicates: vec![],
            recursive: false,
        }
    }

    #[test]
    fn abstraction_maps_addresses_to_indices() {
        let g = concrete_tree(3, 2);
        let a = abstract_guarded(&g, &layouts());
        match &a.tree.output {
            Leaf::BufferRef { buffer, indices } => {
                assert_eq!(buffer, "output_1");
                assert_eq!(indices, &vec![3, 2]);
            }
            other => panic!("unexpected output leaf {other:?}"),
        }
        let leaves = a.tree.leaves_in_order();
        assert!(
            matches!(leaves[0], Leaf::BufferRef { buffer, indices } if buffer == "input_1" && indices == &vec![4, 2])
        );
    }

    #[test]
    fn parameters_for_unmapped_addresses() {
        let mut g = concrete_tree(1, 1);
        g.tree.nodes[0] = TreeNode::Leaf(Leaf::Mem {
            addr: 0xdead_0000,
            width: 4,
            value: 7,
        });
        let a = abstract_guarded(&g, &layouts());
        assert!(matches!(
            a.tree.leaves_in_order()[0],
            Leaf::Param { value: 7, .. }
        ));
    }

    #[test]
    fn clustering_and_solving_recovers_affine_indices() {
        let buffers = layouts();
        let trees: Vec<GuardedTree> = (0..20)
            .map(|i| abstract_guarded(&concrete_tree(1 + (i % 5), 1 + (i / 5)), &buffers))
            .collect();
        let clusters = cluster_trees(trees);
        assert_eq!(clusters.len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let sym = solve_cluster(&clusters[0], &buffers, &mut rng).expect("solved");
        assert_eq!(sym.output_buffer, "output_1");
        assert_eq!(sym.support, 20);
        assert!(!sym.recursive);
        let rendered = sym.tree.render();
        assert!(
            rendered.contains("input_1(x_0+1,x_1)"),
            "rendered: {rendered}"
        );
        assert!(
            rendered.contains("input_1(x_0,x_1)"),
            "rendered: {rendered}"
        );
    }

    #[test]
    fn rank_deficiency_reported_for_degenerate_clusters() {
        let buffers = layouts();
        // Only one distinct output coordinate: the system cannot be solved,
        // unless every leaf index is constant (here they are, so it succeeds
        // with constant indices).
        let trees: Vec<GuardedTree> = (0..3)
            .map(|_| abstract_guarded(&concrete_tree(2, 2), &buffers))
            .collect();
        let clusters = cluster_trees(trees);
        let mut rng = StdRng::seed_from_u64(1);
        let sym = solve_cluster(&clusters[0], &buffers, &mut rng).expect("constant fit");
        assert!(sym.tree.render().contains("input_1(3,2)"));
    }

    #[test]
    fn buffers_by_role_groups() {
        let map = buffers_by_role(&layouts());
        assert_eq!(map[&BufferRole::Input], vec!["input_1"]);
        assert_eq!(map[&BufferRole::Output], vec!["output_1"]);
    }
}
