//! Expression extraction: trace preprocessing, forward analysis for
//! input-dependent conditionals, and backward analysis that builds concrete
//! data-dependency trees (paper §4.5–§4.7).

use crate::layout::{BufferLayout, BufferRole};
use crate::trees::{GuardedTree, Leaf, Predicate, PredicateCmp, Tree, TreeNode, TreeOp};
use helium_dbi::InstructionTrace;
use helium_machine::cpu::StepRecord;
use helium_machine::isa::{AluOp, Cond, FpSrc, Instr, Operand, RegRef, ShiftOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Shadow address space base for general-purpose registers (paper §4.5 maps
/// registers into memory so the analysis treats them uniformly).
const REG_SPACE: u64 = 0x1_0000_0000;
/// Shadow address space base for x87 physical stack slots.
const FP_SPACE: u64 = 0x1_0100_0000;

/// A byte range in the unified (memory + shadow register) address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Start address.
    pub addr: u64,
    /// Width in bytes.
    pub width: u32,
}

impl Loc {
    fn mem(addr: u32, width: u32) -> Loc {
        Loc {
            addr: addr as u64,
            width,
        }
    }

    fn reg(r: RegRef) -> Loc {
        Loc {
            addr: REG_SPACE + (r.reg.index() as u64) * 8 + r.lo as u64,
            width: r.width.bytes(),
        }
    }

    fn fp(phys_slot: u8) -> Loc {
        Loc {
            addr: FP_SPACE + phys_slot as u64 * 8,
            width: 8,
        }
    }

    /// Returns `true` if this location is a real memory address.
    pub fn is_memory(&self) -> bool {
        self.addr < REG_SPACE
    }

    fn bytes(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.width as u64).map(move |i| self.addr + i)
    }

    fn overlaps(&self, other: &Loc) -> bool {
        self.addr < other.addr + other.width as u64 && other.addr < self.addr + self.width as u64
    }
}

/// An argument of a lowered micro-operation.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroArg {
    /// An immediate integer.
    Imm(i64),
    /// A location (register shadow, FP slot or memory) with its observed value.
    Loc {
        /// The location read.
        loc: Loc,
        /// Raw bits observed in the trace (memory reads only; 0 otherwise).
        value: u64,
        /// Registers (as shadow locations) that contributed to the address,
        /// with their scale factors, when the location is an indirect memory
        /// access (`base + scale*index`). Empty for direct accesses.
        addr_regs: Vec<(Loc, u32)>,
        /// Constant displacement of the address expression.
        addr_disp: i64,
    },
}

impl MicroArg {
    fn simple(loc: Loc) -> MicroArg {
        MicroArg::Loc {
            loc,
            value: 0,
            addr_regs: Vec::new(),
            addr_disp: 0,
        }
    }
}

/// One lowered definition event (a value written to a location).
#[derive(Debug, Clone, PartialEq)]
pub struct DefEvent {
    /// Destination location.
    pub dst: Loc,
    /// Operation producing the value.
    pub op: TreeOp,
    /// Arguments.
    pub args: Vec<MicroArg>,
}

/// Flag-setting event used to build predicate trees.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagEvent {
    /// Left operand.
    pub a: MicroArg,
    /// Right operand.
    pub b: MicroArg,
}

/// A preprocessed dynamic instruction.
#[derive(Debug, Clone, Default)]
pub struct MicroStep {
    /// Static instruction address.
    pub addr: u32,
    /// Value definitions performed by the instruction.
    pub defs: Vec<DefEvent>,
    /// Flag definition, if the instruction sets flags from two operands.
    pub flags: Option<FlagEvent>,
    /// For conditional jumps: the condition and whether it was taken.
    pub branch: Option<(Cond, bool)>,
}

/// Errors produced during expression extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// An instruction could not be lowered for analysis.
    Unsupported(String),
    /// No output buffer writes were found in the trace.
    NoOutputs,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::Unsupported(s) => write!(f, "unsupported instruction for analysis: {s}"),
            ExtractError::NoOutputs => write!(f, "no writes to output buffers found in the trace"),
        }
    }
}

impl std::error::Error for ExtractError {}

// ---------------------------------------------------------------------------
// Trace preprocessing: lowering to micro-ops (paper §4.5)
// ---------------------------------------------------------------------------

fn operand_loc(op: &Operand, rec: &StepRecord, want_write: bool) -> MicroArg {
    match op {
        Operand::Reg(r) => MicroArg::simple(Loc::reg(*r)),
        Operand::Imm(v) => MicroArg::Imm(*v),
        Operand::Mem(_) => {
            // Find the matching access in the record.
            let acc = rec
                .mem
                .iter()
                .find(|m| m.is_write == want_write)
                .or_else(|| rec.mem.first())
                .expect("memory operand must have a recorded access");
            let mut addr_regs = Vec::new();
            if let Some(b) = acc.expr.base {
                addr_regs.push((Loc::reg(RegRef::full(b)), 1));
            }
            if let Some(i) = acc.expr.index {
                // A scale of zero contributes nothing to the address (an
                // encoding artifact of `[reg + reg*0 + disp]` forms); keeping
                // it would double-count the register in indirect-access index
                // expressions (e.g. lookup tables indexed by a pixel value).
                if acc.expr.scale != 0 {
                    addr_regs.push((Loc::reg(RegRef::full(i)), acc.expr.scale as u32));
                }
            }
            MicroArg::Loc {
                loc: Loc::mem(acc.addr, acc.width.bytes()),
                value: acc.value,
                addr_regs,
                addr_disp: acc.expr.disp as i64,
            }
        }
    }
}

fn fp_arg(src: &FpSrc, rec: &StepRecord, top: u8) -> MicroArg {
    match src {
        FpSrc::St(i) => MicroArg::simple(Loc::fp((top + i) % 8)),
        FpSrc::MemF32(_) | FpSrc::MemF64(_) | FpSrc::MemI32(_) => {
            let acc = rec
                .mem
                .iter()
                .find(|m| !m.is_write)
                .expect("fp memory read recorded");
            MicroArg::Loc {
                loc: Loc::mem(acc.addr, acc.width.bytes()),
                value: acc.value,
                addr_regs: Vec::new(),
                addr_disp: acc.expr.disp as i64,
            }
        }
    }
}

fn alu_tree_op(op: AluOp) -> TreeOp {
    match op {
        AluOp::Add | AluOp::Adc => TreeOp::Add,
        AluOp::Sub | AluOp::Sbb => TreeOp::Sub,
        AluOp::And => TreeOp::And,
        AluOp::Or => TreeOp::Or,
        AluOp::Xor => TreeOp::Xor,
        AluOp::Imul => TreeOp::Mul,
    }
}

/// Lower one dynamic instruction into definition/flag events.
pub fn lower_step(rec: &StepRecord) -> Result<MicroStep, ExtractError> {
    let top = rec.fpu_top_before;
    let mut step = MicroStep {
        addr: rec.addr,
        ..MicroStep::default()
    };
    match &rec.instr {
        Instr::Mov { dst, src } => {
            let s = operand_loc(src, rec, false);
            let d = operand_loc(dst, rec, true);
            if let MicroArg::Loc { loc, .. } = d {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: TreeOp::Move,
                    args: vec![s],
                });
            }
        }
        Instr::Movzx { dst, src } => {
            let s = operand_loc(src, rec, false);
            step.defs.push(DefEvent {
                dst: Loc::reg(*dst),
                op: TreeOp::Move,
                args: vec![s],
            });
        }
        Instr::Movsx { dst, src } => {
            let s = operand_loc(src, rec, false);
            step.defs.push(DefEvent {
                dst: Loc::reg(*dst),
                op: TreeOp::SignExtend,
                args: vec![s],
            });
        }
        Instr::Lea { dst, .. } => {
            // lea computes an address: model it as an addition of its register
            // parts and displacement.
            let mut args = Vec::new();
            if let Some(acc) = rec.mem.first() {
                // lea performs no access; nothing recorded. Fall through.
                let _ = acc;
            }
            // Reconstruct from the instruction itself (registers only).
            if let Instr::Lea { addr, .. } = &rec.instr {
                if let Some(b) = addr.base {
                    args.push(MicroArg::simple(Loc::reg(RegRef::full(b))));
                }
                if let Some(i) = addr.index {
                    args.push(MicroArg::simple(Loc::reg(RegRef::full(i))));
                }
                args.push(MicroArg::Imm(addr.disp as i64));
            }
            step.defs.push(DefEvent {
                dst: Loc::reg(*dst),
                op: TreeOp::Add,
                args,
            });
        }
        Instr::Alu { op, dst, src } => {
            let d_read = operand_loc(dst, rec, false);
            let s = operand_loc(src, rec, false);
            let d_write = operand_loc(dst, rec, true);
            step.flags = Some(FlagEvent {
                a: d_read.clone(),
                b: s.clone(),
            });
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: alu_tree_op(*op),
                    args: vec![d_read, s],
                });
            }
        }
        Instr::Shift { op, dst, amount } => {
            let d_read = operand_loc(dst, rec, false);
            let amt = operand_loc(amount, rec, false);
            let d_write = operand_loc(dst, rec, true);
            let tree_op = match op {
                ShiftOp::Shl => TreeOp::Shl,
                ShiftOp::Shr => TreeOp::Shr,
                ShiftOp::Sar => TreeOp::Sar,
            };
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: tree_op,
                    args: vec![d_read, amt],
                });
            }
        }
        Instr::Inc { dst } => {
            let d_read = operand_loc(dst, rec, false);
            let d_write = operand_loc(dst, rec, true);
            step.flags = Some(FlagEvent {
                a: d_read.clone(),
                b: MicroArg::Imm(-1),
            });
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: TreeOp::Add,
                    args: vec![d_read, MicroArg::Imm(1)],
                });
            }
        }
        Instr::Dec { dst } => {
            let d_read = operand_loc(dst, rec, false);
            let d_write = operand_loc(dst, rec, true);
            step.flags = Some(FlagEvent {
                a: d_read.clone(),
                b: MicroArg::Imm(1),
            });
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: TreeOp::Sub,
                    args: vec![d_read, MicroArg::Imm(1)],
                });
            }
        }
        Instr::Neg { dst } => {
            let d_read = operand_loc(dst, rec, false);
            let d_write = operand_loc(dst, rec, true);
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: TreeOp::Neg,
                    args: vec![d_read],
                });
            }
        }
        Instr::Not { dst } => {
            let d_read = operand_loc(dst, rec, false);
            let d_write = operand_loc(dst, rec, true);
            if let MicroArg::Loc { loc, .. } = d_write {
                step.defs.push(DefEvent {
                    dst: loc,
                    op: TreeOp::Not,
                    args: vec![d_read],
                });
            }
        }
        Instr::Cmp { a, b } | Instr::Test { a, b } => {
            step.flags = Some(FlagEvent {
                a: operand_loc(a, rec, false),
                b: operand_loc(b, rec, false),
            });
        }
        Instr::Jcc { cond, .. } => {
            step.branch = Some((*cond, rec.branch_taken.unwrap_or(false)));
        }
        Instr::Push { src } => {
            let s = operand_loc(src, rec, false);
            if let Some(w) = rec.mem.iter().find(|m| m.is_write) {
                step.defs.push(DefEvent {
                    dst: Loc::mem(w.addr, w.width.bytes()),
                    op: TreeOp::Move,
                    args: vec![s],
                });
            }
        }
        Instr::Pop { dst } => {
            if let Some(r) = rec.mem.iter().find(|m| !m.is_write) {
                let s = MicroArg::Loc {
                    loc: Loc::mem(r.addr, r.width.bytes()),
                    value: r.value,
                    addr_regs: Vec::new(),
                    addr_disp: r.expr.disp as i64,
                };
                match dst {
                    Operand::Reg(reg) => step.defs.push(DefEvent {
                        dst: Loc::reg(*reg),
                        op: TreeOp::Move,
                        args: vec![s],
                    }),
                    Operand::Mem(_) => {
                        if let Some(w) = rec.mem.iter().find(|m| m.is_write) {
                            step.defs.push(DefEvent {
                                dst: Loc::mem(w.addr, w.width.bytes()),
                                op: TreeOp::Move,
                                args: vec![s],
                            });
                        }
                    }
                    Operand::Imm(_) => {}
                }
            }
        }
        Instr::Fld { src } => {
            let arg = fp_arg(src, rec, top);
            let new_top = (top + 7) % 8;
            let op = match src {
                FpSrc::MemI32(_) => TreeOp::IntToFloat,
                _ => TreeOp::Move,
            };
            step.defs.push(DefEvent {
                dst: Loc::fp(new_top),
                op,
                args: vec![arg],
            });
        }
        Instr::Fst { dst, .. } => {
            let src = MicroArg::simple(Loc::fp(top));
            match dst {
                FpSrc::St(i) => step.defs.push(DefEvent {
                    dst: Loc::fp((top + i) % 8),
                    op: TreeOp::Move,
                    args: vec![src],
                }),
                _ => {
                    if let Some(w) = rec.mem.iter().find(|m| m.is_write) {
                        step.defs.push(DefEvent {
                            dst: Loc::mem(w.addr, w.width.bytes()),
                            op: TreeOp::Move,
                            args: vec![src],
                        });
                    }
                }
            }
        }
        Instr::Fistp { .. } => {
            let src = MicroArg::simple(Loc::fp(top));
            if let Some(w) = rec.mem.iter().find(|m| m.is_write) {
                step.defs.push(DefEvent {
                    dst: Loc::mem(w.addr, w.width.bytes()),
                    op: TreeOp::FloatToIntRound,
                    args: vec![src],
                });
            }
        }
        Instr::Farith {
            op,
            src,
            reverse_dst,
            ..
        } => {
            let tree_op = match op {
                helium_machine::FpOp::Add => TreeOp::FAdd,
                helium_machine::FpOp::Sub => TreeOp::FSub,
                helium_machine::FpOp::Mul => TreeOp::FMul,
                helium_machine::FpOp::Div => TreeOp::FDiv,
            };
            if *reverse_dst {
                let slot = match src {
                    FpSrc::St(i) => (top + i) % 8,
                    _ => top,
                };
                step.defs.push(DefEvent {
                    dst: Loc::fp(slot),
                    op: tree_op,
                    args: vec![
                        MicroArg::simple(Loc::fp(slot)),
                        MicroArg::simple(Loc::fp(top)),
                    ],
                });
            } else {
                let rhs = fp_arg(src, rec, top);
                step.defs.push(DefEvent {
                    dst: Loc::fp(top),
                    op: tree_op,
                    args: vec![MicroArg::simple(Loc::fp(top)), rhs],
                });
            }
        }
        Instr::Fxch { slot } => {
            let a = Loc::fp(top);
            let b = Loc::fp((top + slot) % 8);
            step.defs.push(DefEvent {
                dst: a,
                op: TreeOp::Move,
                args: vec![MicroArg::simple(b)],
            });
            step.defs.push(DefEvent {
                dst: b,
                op: TreeOp::Move,
                args: vec![MicroArg::simple(a)],
            });
        }
        Instr::CallExtern { func } => {
            // Arguments are consumed from the FP stack, result pushed back.
            let arity = func.arity() as u8;
            let result_slot = (top + arity - 1) % 8;
            let args: Vec<MicroArg> = (0..arity)
                .map(|i| MicroArg::simple(Loc::fp((top + i) % 8)))
                .collect();
            step.defs.push(DefEvent {
                dst: Loc::fp(result_slot),
                op: TreeOp::Extern(*func),
                args,
            });
        }
        Instr::Jmp { .. } | Instr::Call { .. } | Instr::Ret | Instr::Nop | Instr::Halt => {}
    }
    Ok(step)
}

// ---------------------------------------------------------------------------
// Forward analysis (paper §4.6)
// ---------------------------------------------------------------------------

/// Result of the forward pass over one trace.
#[derive(Debug, Clone, Default)]
pub struct ForwardInfo {
    /// Static addresses of input-dependent conditional jumps.
    pub input_dep_jccs: BTreeSet<u32>,
    /// For each static instruction: the input-dependent conditionals (static
    /// jcc address) and the branch direction required to reach it, when that
    /// direction is consistent across the whole trace.
    pub requirements: BTreeMap<u32, BTreeMap<u32, bool>>,
    /// Static instructions performing indirect (data-dependent) memory access.
    pub indirect_access: BTreeSet<u32>,
    /// For every dynamic index of an input-dependent jcc: the dynamic index of
    /// the instruction that defined the flags it tested.
    pub jcc_flag_writer: HashMap<usize, usize>,
    /// Dynamic indices of input-dependent jccs, per static address, in order.
    pub jcc_dynamic: BTreeMap<u32, Vec<(usize, bool)>>,
}

/// Run the forward taint analysis over lowered steps.
pub fn forward_analysis(steps: &[MicroStep], input_buffers: &[BufferLayout]) -> ForwardInfo {
    let mut info = ForwardInfo::default();
    let mut tainted: BTreeSet<u64> = BTreeSet::new();
    let mut flags_tainted = false;
    let mut last_flag_writer: Option<usize> = None;
    // Last outcome of each input-dependent jcc (static addr -> (outcome)).
    let mut last_outcome: BTreeMap<u32, bool> = BTreeMap::new();
    // Accumulated requirement state: Some(dir) = consistent, None = mixed.
    let mut req: BTreeMap<u32, BTreeMap<u32, Option<bool>>> = BTreeMap::new();

    let arg_tainted = |tainted: &BTreeSet<u64>, arg: &MicroArg| -> bool {
        match arg {
            MicroArg::Imm(_) => false,
            MicroArg::Loc { loc, .. } => loc.bytes().any(|b| tainted.contains(&b)),
        }
    };
    let loc_in_inputs = |loc: &Loc| -> bool {
        loc.is_memory() && input_buffers.iter().any(|b| b.contains(loc.addr as u32))
    };

    for (idx, step) in steps.iter().enumerate() {
        // Record requirements for this static instruction.
        let entry = req.entry(step.addr).or_default();
        for (jcc, outcome) in &last_outcome {
            entry
                .entry(*jcc)
                .and_modify(|e| {
                    if *e != Some(*outcome) {
                        *e = None;
                    }
                })
                .or_insert(Some(*outcome));
        }

        // Taint propagation through defs.
        for def in &step.defs {
            let mut t = false;
            for arg in &def.args {
                if arg_tainted(&tainted, arg) {
                    t = true;
                }
                if let MicroArg::Loc { loc, addr_regs, .. } = arg {
                    if loc_in_inputs(loc) {
                        t = true;
                    }
                    // Indirect access: an address register is tainted.
                    for (r, _) in addr_regs {
                        if r.bytes().any(|b| tainted.contains(&b)) {
                            info.indirect_access.insert(step.addr);
                        }
                    }
                }
            }
            if t {
                for b in def.dst.bytes() {
                    tainted.insert(b);
                }
            } else {
                for b in def.dst.bytes() {
                    tainted.remove(&b);
                }
            }
        }
        // Flags.
        if let Some(flags) = &step.flags {
            let direct = arg_tainted(&tainted, &flags.a)
                || arg_tainted(&tainted, &flags.b)
                || matches!(&flags.a, MicroArg::Loc { loc, .. } if loc_in_inputs(loc))
                || matches!(&flags.b, MicroArg::Loc { loc, .. } if loc_in_inputs(loc));
            flags_tainted = direct;
            last_flag_writer = Some(idx);
        }
        // Conditional jumps on tainted flags are input-dependent conditionals.
        if let Some((_, taken)) = &step.branch {
            if flags_tainted {
                info.input_dep_jccs.insert(step.addr);
                last_outcome.insert(step.addr, *taken);
                if let Some(fw) = last_flag_writer {
                    info.jcc_flag_writer.insert(idx, fw);
                }
                info.jcc_dynamic
                    .entry(step.addr)
                    .or_default()
                    .push((idx, *taken));
            }
        }
    }
    info.requirements = req
        .into_iter()
        .map(|(addr, m)| {
            (
                addr,
                m.into_iter()
                    .filter_map(|(j, v)| v.map(|d| (j, d)))
                    .collect::<BTreeMap<_, _>>(),
            )
        })
        .collect();
    info
}

// ---------------------------------------------------------------------------
// Backward analysis (paper §4.7)
// ---------------------------------------------------------------------------

/// Preprocessed trace with reaching-definition links.
#[derive(Debug)]
pub struct PreparedTrace {
    /// Lowered steps.
    pub steps: Vec<MicroStep>,
    /// For each dynamic step: for each def, for each argument byte range, the
    /// dynamic index of the step that defined it (if any).
    reaching: Vec<Vec<Vec<Option<usize>>>>,
    /// Forward-analysis results.
    pub forward: ForwardInfo,
}

/// Lower the whole instruction trace and compute reaching definitions.
pub fn prepare_trace(
    trace: &InstructionTrace,
    input_buffers: &[BufferLayout],
) -> Result<PreparedTrace, ExtractError> {
    let mut steps = Vec::with_capacity(trace.records.len());
    for rec in &trace.records {
        steps.push(lower_step(rec)?);
    }
    let forward = forward_analysis(&steps, input_buffers);

    // Reaching definitions at byte granularity.
    let mut last_def: HashMap<u64, usize> = HashMap::new();
    let mut reaching: Vec<Vec<Vec<Option<usize>>>> = Vec::with_capacity(steps.len());
    for (idx, step) in steps.iter().enumerate() {
        let mut per_def = Vec::with_capacity(step.defs.len());
        for def in &step.defs {
            let mut per_arg = Vec::with_capacity(def.args.len());
            for arg in &def.args {
                per_arg.push(match arg {
                    MicroArg::Imm(_) => None,
                    MicroArg::Loc { loc, .. } => {
                        // Use the definition of the lowest byte; kernels write
                        // whole operands so bytes agree in practice.
                        loc.bytes().filter_map(|b| last_def.get(&b).copied()).max()
                    }
                });
            }
            per_def.push(per_arg);
        }
        reaching.push(per_def);
        for def in &step.defs {
            for b in def.dst.bytes() {
                last_def.insert(b, idx);
            }
        }
        let _ = idx;
    }
    Ok(PreparedTrace {
        steps,
        reaching,
        forward,
    })
}

/// Context for building concrete trees.
pub struct TreeBuilder<'a> {
    prepared: &'a PreparedTrace,
    buffers: &'a [BufferLayout],
}

impl<'a> TreeBuilder<'a> {
    /// Create a builder over a prepared trace and the inferred buffer layouts.
    pub fn new(prepared: &'a PreparedTrace, buffers: &'a [BufferLayout]) -> Self {
        TreeBuilder { prepared, buffers }
    }

    fn buffer_of(&self, addr: u64) -> Option<&BufferLayout> {
        if addr >= REG_SPACE {
            return None;
        }
        self.buffers.iter().find(|b| b.contains(addr as u32))
    }

    /// Build the concrete guarded tree for the output write performed by the
    /// def `def_idx` of dynamic step `idx`.
    pub fn build_output_tree(&self, idx: usize, def_idx: usize) -> Option<GuardedTree> {
        let step = &self.prepared.steps[idx];
        let def = &step.defs[def_idx];
        let out_buffer = self.buffer_of(def.dst.addr)?;
        let out_name = out_buffer.name.clone();
        let mut tree = Tree {
            nodes: Vec::new(),
            root: 0,
            output: Leaf::Mem {
                addr: def.dst.addr,
                width: def.dst.width,
                value: 0,
            },
            output_width: def.dst.width,
        };
        let mut recursive = false;
        let mut required: BTreeMap<u32, bool> = BTreeMap::new();
        let root = self.expand(
            idx,
            def_idx,
            &mut tree,
            &out_name,
            &mut recursive,
            &mut required,
            0,
        );
        tree.root = root;
        tree.canonicalize();

        // Build predicate trees for the requirements collected along the way.
        let mut predicates = Vec::new();
        for (jcc_addr, dir) in required {
            if let Some(p) = self.build_predicate(idx, jcc_addr, dir, &out_name) {
                predicates.push(p);
            }
        }
        Some(GuardedTree {
            tree,
            predicates,
            recursive,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        idx: usize,
        def_idx: usize,
        tree: &mut Tree,
        out_buffer: &str,
        recursive: &mut bool,
        required: &mut BTreeMap<u32, bool>,
        depth: usize,
    ) -> usize {
        let step = &self.prepared.steps[idx];
        let def = &step.defs[def_idx];
        // Record control requirements of this instruction.
        if let Some(reqs) = self.prepared.forward.requirements.get(&step.addr) {
            for (jcc, dir) in reqs {
                required.insert(*jcc, *dir);
            }
        }
        if depth > 512 {
            return tree.push(TreeNode::Leaf(Leaf::Const(0)));
        }
        let indirect = self.prepared.forward.indirect_access.contains(&step.addr);
        let mut children = Vec::new();
        for (arg_i, arg) in def.args.iter().enumerate() {
            let child = self.expand_arg(
                idx, def_idx, arg_i, arg, tree, out_buffer, recursive, required, depth, indirect,
            );
            children.push(child);
        }
        // Collapse pure moves with a single child to keep trees small, but
        // keep width-changing moves as explicit downcast nodes.
        if def.op == TreeOp::Move && children.len() == 1 {
            let src_width = match &def.args[0] {
                MicroArg::Loc { loc, .. } => loc.width,
                MicroArg::Imm(_) => def.dst.width,
            };
            if src_width == def.dst.width {
                return children[0];
            }
            let op = if def.dst.width < src_width {
                TreeOp::Downcast
            } else {
                TreeOp::Move
            };
            return tree.push(TreeNode::Op {
                op,
                children,
                width: def.dst.width,
            });
        }
        tree.push(TreeNode::Op {
            op: def.op,
            children,
            width: def.dst.width,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_arg(
        &self,
        idx: usize,
        def_idx: usize,
        arg_i: usize,
        arg: &MicroArg,
        tree: &mut Tree,
        out_buffer: &str,
        recursive: &mut bool,
        required: &mut BTreeMap<u32, bool>,
        depth: usize,
        indirect: bool,
    ) -> usize {
        match arg {
            MicroArg::Imm(v) => tree.push(TreeNode::Leaf(Leaf::Const(*v))),
            MicroArg::Loc {
                loc,
                value,
                addr_regs,
                ..
            } => {
                // Recursive reference to the output buffer?
                if let Some(b) = self.buffer_of(loc.addr) {
                    if b.name == out_buffer && b.role == BufferRole::Output {
                        *recursive = true;
                        let rec_leaf = tree.push(TreeNode::Leaf(Leaf::RecursiveRef {
                            buffer: b.name.clone(),
                        }));
                        // Indirectly addressed recursive outputs (histograms)
                        // keep the address-calculation expression so the
                        // reduction domain can be inferred from it (paper §4.9).
                        if indirect && !addr_regs.is_empty() {
                            let mut index_children = Vec::new();
                            for (reg_loc, _scale) in addr_regs {
                                let child = match self.reaching_def_of_loc(idx, *reg_loc) {
                                    Some((di, dd)) => self.expand(
                                        di,
                                        dd,
                                        tree,
                                        out_buffer,
                                        recursive,
                                        required,
                                        depth + 1,
                                    ),
                                    None => tree.push(TreeNode::Leaf(Leaf::Mem {
                                        addr: reg_loc.addr,
                                        width: reg_loc.width,
                                        value: 0,
                                    })),
                                };
                                index_children.push(child);
                            }
                            let index = if index_children.len() == 1 {
                                index_children[0]
                            } else {
                                tree.push(TreeNode::Op {
                                    op: TreeOp::Add,
                                    children: index_children,
                                    width: 4,
                                })
                            };
                            return tree.push(TreeNode::Op {
                                op: TreeOp::IndirectLoad,
                                children: vec![rec_leaf, index],
                                width: loc.width,
                            });
                        }
                        return rec_leaf;
                    }
                }
                // Indirect (table) access: wrap the leaf in an IndirectLoad
                // whose child is the index expression built from the address
                // registers.
                if indirect && loc.is_memory() && !addr_regs.is_empty() {
                    let mut index_children = Vec::new();
                    for (reg_loc, _scale) in addr_regs {
                        let child = match self.reaching_def_of_loc(idx, *reg_loc) {
                            Some((di, dd)) => self.expand(
                                di,
                                dd,
                                tree,
                                out_buffer,
                                recursive,
                                required,
                                depth + 1,
                            ),
                            None => tree.push(TreeNode::Leaf(Leaf::Mem {
                                addr: reg_loc.addr,
                                width: reg_loc.width,
                                value: 0,
                            })),
                        };
                        index_children.push(child);
                    }
                    let index = if index_children.len() == 1 {
                        index_children[0]
                    } else {
                        tree.push(TreeNode::Op {
                            op: TreeOp::Add,
                            children: index_children,
                            width: 4,
                        })
                    };
                    let mem_leaf = tree.push(TreeNode::Leaf(Leaf::Mem {
                        addr: loc.addr,
                        width: loc.width,
                        value: *value,
                    }));
                    return tree.push(TreeNode::Op {
                        op: TreeOp::IndirectLoad,
                        children: vec![mem_leaf, index],
                        width: loc.width,
                    });
                }
                // Follow the reaching definition if there is one.
                let def_link = self.prepared.reaching[idx][def_idx][arg_i];
                match def_link {
                    Some(di) => {
                        // Find which def of that step wrote this location.
                        let dd = self.prepared.steps[di]
                            .defs
                            .iter()
                            .position(|d| d.dst.overlaps(loc))
                            .unwrap_or(0);
                        let child =
                            self.expand(di, dd, tree, out_buffer, recursive, required, depth + 1);
                        let def_width = self.prepared.steps[di].defs[dd].dst.width;
                        if loc.width < def_width {
                            tree.push(TreeNode::Op {
                                op: TreeOp::Downcast,
                                children: vec![child],
                                width: loc.width,
                            })
                        } else {
                            child
                        }
                    }
                    None => tree.push(TreeNode::Leaf(Leaf::Mem {
                        addr: loc.addr,
                        width: loc.width,
                        value: *value,
                    })),
                }
            }
        }
    }

    fn reaching_def_of_loc(&self, before_idx: usize, loc: Loc) -> Option<(usize, usize)> {
        // Walk backwards to find the most recent def overlapping `loc`.
        for i in (0..before_idx).rev() {
            for (d, def) in self.prepared.steps[i].defs.iter().enumerate() {
                if def.dst.overlaps(&loc) {
                    return Some((i, d));
                }
            }
        }
        None
    }

    /// Build the predicate tree for the most recent dynamic occurrence of the
    /// input-dependent conditional `jcc_addr` before `before_idx`.
    fn build_predicate(
        &self,
        before_idx: usize,
        jcc_addr: u32,
        taken: bool,
        out_buffer: &str,
    ) -> Option<Predicate> {
        let dynamics = self.prepared.forward.jcc_dynamic.get(&jcc_addr)?;
        let (jcc_idx, _) = dynamics
            .iter()
            .rev()
            .find(|(i, _)| *i <= before_idx)
            .or_else(|| dynamics.first())?;
        let flag_idx = *self.prepared.forward.jcc_flag_writer.get(jcc_idx)?;
        let flags = self.prepared.steps[flag_idx].flags.clone()?;
        let (cond, _) = self.prepared.steps[*jcc_idx].branch?;
        let cmp = cond_to_cmp(cond);
        let cmp = if taken { cmp } else { cmp.negate() };

        let mut build_side = |arg: &MicroArg| -> Tree {
            let mut tree = Tree {
                nodes: Vec::new(),
                root: 0,
                output: Leaf::Const(0),
                output_width: 4,
            };
            let mut rec = false;
            let mut req = BTreeMap::new();
            let root = self.expand_arg(
                flag_idx,
                0,
                usize::MAX,
                arg,
                &mut tree,
                out_buffer,
                &mut rec,
                &mut req,
                0,
                false,
            );
            tree.root = root;
            tree.canonicalize();
            tree
        };
        // `expand_arg` indexes `reaching` with (idx, def_idx, arg_i); for flag
        // operands there is no def entry, so resolve the reaching definition
        // directly instead.
        let lhs = self.build_flag_side(flag_idx, &flags.a, out_buffer);
        let rhs = self.build_flag_side(flag_idx, &flags.b, out_buffer);
        let _ = &mut build_side;
        Some(Predicate { cmp, lhs, rhs })
    }

    fn build_flag_side(&self, flag_idx: usize, arg: &MicroArg, out_buffer: &str) -> Tree {
        let mut tree = Tree {
            nodes: Vec::new(),
            root: 0,
            output: Leaf::Const(0),
            output_width: 4,
        };
        let mut rec = false;
        let mut req = BTreeMap::new();
        let root = match arg {
            MicroArg::Imm(v) => tree.push(TreeNode::Leaf(Leaf::Const(*v))),
            MicroArg::Loc { loc, value, .. } => match self.reaching_def_of_loc(flag_idx, *loc) {
                Some((di, dd)) => self.expand(di, dd, &mut tree, out_buffer, &mut rec, &mut req, 0),
                None => tree.push(TreeNode::Leaf(Leaf::Mem {
                    addr: loc.addr,
                    width: loc.width,
                    value: *value,
                })),
            },
        };
        tree.root = root;
        tree.canonicalize();
        tree
    }

    /// Enumerate all output-buffer writes in the trace as `(step, def)` pairs.
    pub fn output_writes(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, step) in self.prepared.steps.iter().enumerate() {
            for (d, def) in step.defs.iter().enumerate() {
                if let Some(b) = self.buffer_of(def.dst.addr) {
                    if b.role == BufferRole::Output {
                        out.push((i, d));
                    }
                }
            }
        }
        out
    }
}

fn cond_to_cmp(cond: Cond) -> PredicateCmp {
    match cond {
        Cond::Z => PredicateCmp::Eq,
        Cond::Nz => PredicateCmp::Ne,
        Cond::B | Cond::L => PredicateCmp::Lt,
        Cond::Nb | Cond::Ge => PredicateCmp::Ge,
        Cond::Be | Cond::Le => PredicateCmp::Le,
        Cond::A | Cond::G => PredicateCmp::Gt,
        Cond::S => PredicateCmp::Lt,
        Cond::Ns => PredicateCmp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_machine::isa::regs;
    use helium_machine::{AddrExpr, MemAccess, Width};

    fn mem_access(addr: u32, width: Width, is_write: bool, value: u64) -> MemAccess {
        MemAccess {
            addr,
            width,
            is_write,
            value,
            expr: AddrExpr {
                base: None,
                base_value: 0,
                index: None,
                index_value: 0,
                scale: 1,
                disp: addr as i32,
            },
        }
    }

    fn record(instr: Instr, mem: Vec<MemAccess>) -> StepRecord {
        StepRecord {
            addr: 0x1000,
            instr,
            mem,
            branch_taken: None,
            call_target: None,
            is_ret: false,
            extern_call: None,
            fpu_top_before: 0,
            next_pc: 0x1004,
        }
    }

    #[test]
    fn lowering_mov_and_alu() {
        let rec = record(
            Instr::Mov {
                dst: Operand::Reg(regs::eax()),
                src: Operand::Imm(5),
            },
            vec![],
        );
        let step = lower_step(&rec).unwrap();
        assert_eq!(step.defs.len(), 1);
        assert_eq!(step.defs[0].op, TreeOp::Move);

        let rec = record(
            Instr::Alu {
                op: AluOp::Add,
                dst: Operand::Reg(regs::eax()),
                src: Operand::Mem(helium_machine::MemRef::absolute(0x9000, Width::B4)),
            },
            vec![mem_access(0x9000, Width::B4, false, 42)],
        );
        let step = lower_step(&rec).unwrap();
        assert_eq!(step.defs[0].op, TreeOp::Add);
        assert_eq!(step.defs[0].args.len(), 2);
        assert!(step.flags.is_some());
    }

    #[test]
    fn lowering_fp_uses_physical_slots() {
        let rec = StepRecord {
            fpu_top_before: 3,
            ..record(
                Instr::Fld {
                    src: FpSrc::MemF64(helium_machine::MemRef::absolute(0x9100, Width::B8)),
                },
                vec![mem_access(0x9100, Width::B8, false, 0)],
            )
        };
        let step = lower_step(&rec).unwrap();
        // Push decrements the top: physical slot 2.
        assert_eq!(step.defs[0].dst, Loc::fp(2));
    }

    #[test]
    fn loc_helpers() {
        let r = Loc::reg(regs::ah());
        assert!(!r.is_memory());
        assert_eq!(r.width, 1);
        let m = Loc::mem(0x1000, 4);
        assert!(m.is_memory());
        assert!(m.overlaps(&Loc::mem(0x1002, 4)));
        assert!(!m.overlaps(&Loc::mem(0x1004, 4)));
    }

    #[test]
    fn cond_mapping() {
        assert_eq!(cond_to_cmp(Cond::A), PredicateCmp::Gt);
        assert_eq!(cond_to_cmp(Cond::Z), PredicateCmp::Eq);
        assert_eq!(cond_to_cmp(Cond::B), PredicateCmp::Lt);
    }
}
