//! Small dense linear-system solver used by symbolic tree generation
//! (paper §4.10).
//!
//! Helium recovers affine index functions by solving, per leaf node and per
//! dimension, a linear system whose rows are the output-buffer access vectors
//! of randomly chosen trees in a cluster. The systems are tiny (at most a few
//! dozen rows and `D + 1` unknowns), so a straightforward Gaussian elimination
//! with partial pivoting is sufficient. Solutions are checked against every
//! provided equation and snapped to integers when they are numerically
//! integral, which index functions of real stencils always are.

// Row/column index loops mirror the textbook elimination pseudocode.
#![allow(clippy::needless_range_loop)]

/// Outcome of solving an affine-fit system.
#[derive(Debug, Clone, PartialEq)]
pub enum AffineFit {
    /// The right-hand side is the same for every row: a constant index.
    Constant(i64),
    /// The affine coefficients, one per input dimension, plus the constant term.
    Affine {
        /// Coefficient per output dimension.
        coefficients: Vec<i64>,
        /// Constant term.
        constant: i64,
    },
    /// No affine function fits the observations (the paper reports an error
    /// and refuses to lift such kernels).
    NotAffine,
    /// The system is rank-deficient: the observations do not pin down a unique
    /// affine function (too few distinct access vectors).
    RankDeficient,
}

/// Solve `A x = b` in a least-structured way: find any exact solution of the
/// first `n` independent rows and verify it against all rows.
///
/// Each row of `rows` is an access vector `(x_1, ..., x_D)`; the unknowns are
/// the `D` coefficients plus a constant term. Returns [`AffineFit`].
pub fn fit_affine(rows: &[Vec<i64>], rhs: &[i64]) -> AffineFit {
    assert_eq!(rows.len(), rhs.len(), "row/rhs length mismatch");
    if rows.is_empty() {
        return AffineFit::RankDeficient;
    }
    if rhs.iter().all(|&v| v == rhs[0]) {
        return AffineFit::Constant(rhs[0]);
    }
    let dims = rows[0].len();
    let unknowns = dims + 1;
    // Build the augmented matrix in f64 (the values involved are small).
    let mut m: Vec<Vec<f64>> = rows
        .iter()
        .zip(rhs)
        .map(|(r, &b)| {
            let mut row: Vec<f64> = r.iter().map(|&v| v as f64).collect();
            row.push(1.0);
            row.push(b as f64);
            row
        })
        .collect();
    let nrows = m.len();
    // Gaussian elimination with partial pivoting.
    let mut pivot_row = 0usize;
    let mut pivot_cols = Vec::new();
    for col in 0..unknowns {
        // Find the largest pivot in this column.
        let mut best = pivot_row;
        for r in pivot_row..nrows {
            if m[r][col].abs() > m[best][col].abs() {
                best = r;
            }
        }
        if pivot_row >= nrows || m[best][col].abs() < 1e-9 {
            continue;
        }
        m.swap(pivot_row, best);
        let p = m[pivot_row][col];
        for c in col..=unknowns {
            m[pivot_row][c] /= p;
        }
        for r in 0..nrows {
            if r != pivot_row {
                let f = m[r][col];
                if f.abs() > 1e-12 {
                    for c in col..=unknowns {
                        m[r][c] -= f * m[pivot_row][c];
                    }
                }
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
    }
    let rank = pivot_row;
    if rank < unknowns {
        return AffineFit::RankDeficient;
    }
    // Inconsistent rows (zero coefficients but non-zero rhs) mean not affine.
    for r in rank..nrows {
        if m[r][unknowns].abs() > 1e-6 {
            return AffineFit::NotAffine;
        }
    }
    // Read the solution off the reduced matrix.
    let mut solution = vec![0.0; unknowns];
    for (i, &col) in pivot_cols.iter().enumerate() {
        solution[col] = m[i][unknowns];
    }
    // Verify against every original equation and snap to integers.
    let mut int_solution = Vec::with_capacity(unknowns);
    for v in &solution {
        let snapped = v.round();
        if (v - snapped).abs() > 1e-6 {
            return AffineFit::NotAffine;
        }
        int_solution.push(snapped as i64);
    }
    for (r, &b) in rows.iter().zip(rhs) {
        let mut acc = int_solution[dims];
        for (d, &x) in r.iter().enumerate() {
            acc += int_solution[d] * x;
        }
        if acc != b {
            return AffineFit::NotAffine;
        }
    }
    AffineFit::Affine {
        coefficients: int_solution[..dims].to_vec(),
        constant: int_solution[dims],
    }
}

/// Rank of the access-vector matrix augmented with a constant column, used for
/// the paper's well-posedness check (`rank == D + 1`).
pub fn access_rank(rows: &[Vec<i64>]) -> usize {
    if rows.is_empty() {
        return 0;
    }
    let dims = rows[0].len();
    let unknowns = dims + 1;
    let mut m: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            let mut row: Vec<f64> = r.iter().map(|&v| v as f64).collect();
            row.push(1.0);
            row
        })
        .collect();
    let nrows = m.len();
    let mut rank = 0usize;
    for col in 0..unknowns {
        let mut best = rank;
        for r in rank..nrows {
            if m[r][col].abs() > m[best][col].abs() {
                best = r;
            }
        }
        if rank >= nrows || m[best][col].abs() < 1e-9 {
            continue;
        }
        m.swap(rank, best);
        let p = m[rank][col];
        for c in col..unknowns {
            m[rank][c] /= p;
        }
        for r in 0..nrows {
            if r != rank {
                let f = m[r][col];
                for c in col..unknowns {
                    m[r][c] -= f * m[rank][c];
                }
            }
        }
        rank += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_simple_affine_index() {
        // leaf_x = out_x + 1, observed at five positions.
        let rows = vec![vec![0, 0], vec![1, 0], vec![2, 1], vec![5, 3], vec![7, 2]];
        let rhs = vec![1, 2, 3, 6, 8];
        assert_eq!(
            fit_affine(&rows, &rhs),
            AffineFit::Affine {
                coefficients: vec![1, 0],
                constant: 1
            }
        );
    }

    #[test]
    fn recovers_multi_dimensional_affine() {
        // leaf = 3*x + 2*y - 4
        let rows = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![2, 3], vec![5, 1]];
        let rhs: Vec<i64> = rows.iter().map(|r| 3 * r[0] + 2 * r[1] - 4).collect();
        assert_eq!(
            fit_affine(&rows, &rhs),
            AffineFit::Affine {
                coefficients: vec![3, 2],
                constant: -4
            }
        );
    }

    #[test]
    fn constant_indices_short_circuit() {
        let rows = vec![vec![0, 0], vec![1, 5], vec![2, 9]];
        let rhs = vec![7, 7, 7];
        assert_eq!(fit_affine(&rows, &rhs), AffineFit::Constant(7));
    }

    #[test]
    fn detects_non_affine_relationships() {
        // leaf = x*x is not affine.
        let rows: Vec<Vec<i64>> = (0..6).map(|x| vec![x, x % 3]).collect();
        let rhs: Vec<i64> = (0..6).map(|x| x * x).collect();
        assert_eq!(fit_affine(&rows, &rhs), AffineFit::NotAffine);
    }

    #[test]
    fn detects_rank_deficiency() {
        // All observations at the same x: cannot determine the coefficient.
        let rows = vec![vec![3, 0], vec![3, 0], vec![3, 0]];
        let rhs = vec![4, 5, 6];
        assert_eq!(fit_affine(&rows, &rhs), AffineFit::RankDeficient);
        assert_eq!(access_rank(&rows), 1);
    }

    #[test]
    fn rank_of_well_posed_system() {
        let rows = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![4, 7]];
        assert_eq!(access_rank(&rows), 3);
    }
}
