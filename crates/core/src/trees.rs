//! Data-dependency trees: concrete, abstract and symbolic forms
//! (paper §4.7–§4.10).
//!
//! A *concrete* tree captures the exact computation of one output location,
//! with absolute memory addresses at the leaves. Buffer inference turns it
//! into an *abstract* tree whose leaves are `(buffer, index vector)` pairs,
//! and the linear solve of §4.10 finally produces a *symbolic* tree whose
//! leaves carry affine index functions of the output coordinates.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Operation kinds appearing in dependency trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Shift left.
    Shl,
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Zero extension / plain move between locations (width change allowed).
    Move,
    /// Sign extension.
    SignExtend,
    /// Truncation to a narrower width (the paper's "downcast" node).
    Downcast,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Integer-to-float conversion (`fild`).
    IntToFloat,
    /// Float-to-integer rounding (`fistp`, round to nearest even).
    FloatToIntRound,
    /// Call to a known external library function.
    Extern(helium_machine::ExternFn),
    /// An indirect (table) load: child 0 is the index expression.
    IndirectLoad,
}

impl TreeOp {
    /// Returns `true` if operand order does not matter.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            TreeOp::Add
                | TreeOp::Mul
                | TreeOp::And
                | TreeOp::Or
                | TreeOp::Xor
                | TreeOp::FAdd
                | TreeOp::FMul
        )
    }

    /// Returns `true` if the operation is a floating-point operation.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            TreeOp::FAdd | TreeOp::FSub | TreeOp::FMul | TreeOp::FDiv | TreeOp::IntToFloat
        )
    }
}

impl fmt::Display for TreeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeOp::Extern(e) => write!(f, "{e}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A leaf of a dependency tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Leaf {
    /// A concrete memory location (before buffer inference).
    Mem {
        /// Absolute address (shadow addresses encode registers / FP slots).
        addr: u64,
        /// Access width in bytes.
        width: u32,
        /// Value observed in the trace (used to seed parameters).
        value: u64,
    },
    /// A location resolved to a buffer element (after buffer inference).
    BufferRef {
        /// Buffer name (e.g. `input_1`).
        buffer: String,
        /// Concrete index vector (abstract tree) — empty in symbolic trees.
        indices: Vec<i64>,
    },
    /// A symbolic buffer access whose indices are affine functions of the
    /// output coordinates (symbolic tree).
    SymbolicRef {
        /// Buffer name.
        buffer: String,
        /// Per-dimension affine index function.
        index_exprs: Vec<AffineIndex>,
    },
    /// An integer constant.
    Const(i64),
    /// A floating-point constant.
    ConstF(f64),
    /// A runtime parameter (a location outside every inferred buffer).
    Param {
        /// Generated parameter name.
        name: String,
        /// Observed value bits.
        value: u64,
        /// Width in bytes.
        width: u32,
        /// Whether the observed bits are an IEEE double.
        is_float: bool,
    },
    /// A recursive reference to the tree's own output buffer (reductions).
    RecursiveRef {
        /// Buffer name.
        buffer: String,
    },
}

/// An affine index function `sum(coeff_d * x_d) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineIndex {
    /// One coefficient per output dimension.
    pub coefficients: Vec<i64>,
    /// Constant term.
    pub constant: i64,
}

impl AffineIndex {
    /// A constant index.
    pub fn constant(v: i64, dims: usize) -> AffineIndex {
        AffineIndex {
            coefficients: vec![0; dims],
            constant: v,
        }
    }

    /// The identity index for dimension `d` offset by `c`.
    pub fn identity(d: usize, dims: usize, c: i64) -> AffineIndex {
        let mut coefficients = vec![0; dims];
        coefficients[d] = 1;
        AffineIndex {
            coefficients,
            constant: c,
        }
    }
}

impl fmt::Display for AffineIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, &c) in self.coefficients.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, "+")?;
            }
            if c == 1 {
                write!(f, "x_{d}")?;
            } else {
                write!(f, "{c}*x_{d}")?;
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first && self.constant > 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A node in a dependency tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// An interior operation node.
    Op {
        /// The operation.
        op: TreeOp,
        /// Children node ids.
        children: Vec<usize>,
        /// Result width in bytes.
        width: u32,
    },
    /// A leaf node.
    Leaf(Leaf),
}

/// A dependency tree stored as an arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Arena of nodes; index 0 is unused sentinel-free (root is `root`).
    pub nodes: Vec<TreeNode>,
    /// Root node id.
    pub root: usize,
    /// The output location this tree computes: concrete address (concrete
    /// trees) or buffer/index (after buffer inference).
    pub output: Leaf,
    /// Width of the value written to the output location.
    pub output_width: u32,
}

impl Tree {
    /// Create a tree with a single leaf as root (used in tests).
    pub fn leaf_only(leaf: Leaf, output: Leaf) -> Tree {
        Tree {
            nodes: vec![TreeNode::Leaf(leaf)],
            root: 0,
            output,
            output_width: 1,
        }
    }

    /// Add a node and return its id.
    pub fn push(&mut self, node: TreeNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterate over the leaves in canonical (post-order, post-sort) order.
    pub fn leaves_in_order(&self) -> Vec<&Leaf> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, node: usize, out: &mut Vec<&'a Leaf>) {
        match &self.nodes[node] {
            TreeNode::Leaf(l) => out.push(l),
            TreeNode::Op { children, .. } => {
                for &c in children {
                    self.collect_leaves(c, out);
                }
            }
        }
    }

    /// Structural key ignoring addresses, indices and constant values, used
    /// for clustering (paper §4.8: trees are grouped when they are the same
    /// "modulo constants and memory addresses in the leaves").
    pub fn structure_key(&self) -> String {
        let mut s = String::new();
        self.structure_of(self.root, &mut s);
        s
    }

    fn structure_of(&self, node: usize, out: &mut String) {
        match &self.nodes[node] {
            TreeNode::Leaf(l) => {
                let tag = match l {
                    Leaf::Mem { .. } => "M",
                    Leaf::BufferRef { buffer, .. } => buffer.as_str(),
                    Leaf::SymbolicRef { buffer, .. } => buffer.as_str(),
                    Leaf::Const(_) | Leaf::ConstF(_) => "C",
                    Leaf::Param { name, .. } => name.as_str(),
                    Leaf::RecursiveRef { .. } => "R",
                };
                out.push('(');
                out.push_str(tag);
                out.push(')');
            }
            TreeNode::Op { op, children, .. } => {
                out.push('(');
                out.push_str(&op.to_string());
                for &c in children {
                    self.structure_of(c, out);
                }
                out.push(')');
            }
        }
    }

    /// Canonicalize the tree in place: sort the children of commutative
    /// operations by their structural key so trees produced by differently
    /// scheduled/unrolled code compare equal (paper §4.7, "canonicalization").
    pub fn canonicalize(&mut self) {
        self.canonicalize_node(self.root);
    }

    fn canonicalize_node(&mut self, node: usize) {
        if let TreeNode::Op { children, op, .. } = self.nodes[node].clone() {
            for &c in &children {
                self.canonicalize_node(c);
            }
            if op.is_commutative() && children.len() > 1 {
                let mut keyed: Vec<(String, usize)> = children
                    .iter()
                    .map(|&c| {
                        let mut s = String::new();
                        self.structure_of(c, &mut s);
                        (s, c)
                    })
                    .collect();
                keyed.sort();
                if let TreeNode::Op { children, .. } = &mut self.nodes[node] {
                    *children = keyed.into_iter().map(|(_, c)| c).collect();
                }
            }
        }
    }

    /// Render the tree as a nested s-expression (for debugging and docs).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_node(self.root, &mut s);
        s
    }

    fn render_node(&self, node: usize, out: &mut String) {
        match &self.nodes[node] {
            TreeNode::Leaf(l) => match l {
                Leaf::Mem { addr, .. } => out.push_str(&format!("{addr:#x}")),
                Leaf::BufferRef { buffer, indices } => {
                    out.push_str(&format!("{buffer}{indices:?}"))
                }
                Leaf::SymbolicRef {
                    buffer,
                    index_exprs,
                } => {
                    let idx: Vec<String> = index_exprs.iter().map(|e| e.to_string()).collect();
                    out.push_str(&format!("{buffer}({})", idx.join(",")));
                }
                Leaf::Const(v) => out.push_str(&v.to_string()),
                Leaf::ConstF(v) => out.push_str(&v.to_string()),
                Leaf::Param { name, .. } => out.push_str(name),
                Leaf::RecursiveRef { buffer } => out.push_str(&format!("self:{buffer}")),
            },
            TreeNode::Op { op, children, .. } => {
                out.push('(');
                out.push_str(&op.to_string());
                for &c in children {
                    out.push(' ');
                    self.render_node(c, out);
                }
                out.push(')');
            }
        }
    }
}

/// A comparison predicate attached to a computational tree (paper Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// The comparison relating `lhs` and `rhs` that must hold.
    pub cmp: PredicateCmp,
    /// Left-hand-side tree.
    pub lhs: Tree,
    /// Right-hand-side tree.
    pub rhs: Tree,
}

/// Comparison operators for predicates, including unsigned variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredicateCmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned/signed above (greater-than).
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

impl PredicateCmp {
    /// The comparison that holds when this one does not.
    pub fn negate(self) -> PredicateCmp {
        match self {
            PredicateCmp::Eq => PredicateCmp::Ne,
            PredicateCmp::Ne => PredicateCmp::Eq,
            PredicateCmp::Gt => PredicateCmp::Le,
            PredicateCmp::Le => PredicateCmp::Gt,
            PredicateCmp::Lt => PredicateCmp::Ge,
            PredicateCmp::Ge => PredicateCmp::Lt,
        }
    }
}

/// A computational tree together with the predicates guarding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardedTree {
    /// The computational tree.
    pub tree: Tree,
    /// Predicates that must all hold for this tree to define the output.
    pub predicates: Vec<Predicate>,
    /// `true` if the tree is a recursive (reduction) update.
    pub recursive: bool,
}

impl GuardedTree {
    /// Cluster key: structure of the computation, predicates and output buffer.
    pub fn cluster_key(&self) -> String {
        let mut key = String::new();
        if let Leaf::BufferRef { buffer, .. } = &self.tree.output {
            key.push_str(buffer);
        }
        key.push('|');
        key.push_str(&self.tree.structure_key());
        for p in &self.predicates {
            key.push('|');
            key.push_str(&format!("{:?}", p.cmp));
            key.push_str(&p.lhs.structure_key());
            key.push_str(&p.rhs.structure_key());
        }
        key
    }
}

/// Statistics about a forest of trees, reported in the Fig. 6 reproduction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestStats {
    /// Number of trees per cluster key.
    pub cluster_sizes: BTreeMap<String, usize>,
    /// Node count of a representative computational tree per cluster.
    pub tree_sizes: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_leaf(addr: u64) -> Leaf {
        Leaf::Mem {
            addr,
            width: 1,
            value: 0,
        }
    }

    fn small_tree(addr_a: u64, addr_b: u64, swap: bool) -> Tree {
        // (Add leafA leafB) — optionally with the operands swapped.
        let mut t = Tree {
            nodes: Vec::new(),
            root: 0,
            output: mem_leaf(0xd000),
            output_width: 1,
        };
        let a = t.push(TreeNode::Leaf(mem_leaf(addr_a)));
        let b = t.push(TreeNode::Leaf(Leaf::Const(7)));
        let c = t.push(TreeNode::Leaf(mem_leaf(addr_b)));
        let inner = if swap {
            t.push(TreeNode::Op {
                op: TreeOp::Add,
                children: vec![c, b],
                width: 4,
            })
        } else {
            t.push(TreeNode::Op {
                op: TreeOp::Add,
                children: vec![b, c],
                width: 4,
            })
        };
        let root = t.push(TreeNode::Op {
            op: TreeOp::Add,
            children: vec![a, inner],
            width: 4,
        });
        t.root = root;
        t
    }

    #[test]
    fn canonicalization_orders_commutative_operands() {
        let mut a = small_tree(0x100, 0x200, false);
        let mut b = small_tree(0x300, 0x400, true);
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.structure_key(), b.structure_key());
    }

    #[test]
    fn structure_key_ignores_addresses_but_not_shape() {
        let a = small_tree(0x100, 0x200, false);
        let mut shallow = Tree {
            nodes: Vec::new(),
            root: 0,
            output: mem_leaf(0xd000),
            output_width: 1,
        };
        let l = shallow.push(TreeNode::Leaf(mem_leaf(0x100)));
        shallow.root = l;
        assert_ne!(a.structure_key(), shallow.structure_key());
    }

    #[test]
    fn leaves_in_order_and_render() {
        let t = small_tree(0x100, 0x200, false);
        assert_eq!(t.leaves_in_order().len(), 3);
        let rendered = t.render();
        assert!(rendered.contains("Add"));
        assert!(rendered.contains("0x100"));
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn affine_index_display() {
        let a = AffineIndex {
            coefficients: vec![1, 0],
            constant: 2,
        };
        assert_eq!(a.to_string(), "x_0+2");
        let b = AffineIndex::constant(5, 2);
        assert_eq!(b.to_string(), "5");
        let c = AffineIndex::identity(1, 2, 0);
        assert_eq!(c.to_string(), "x_1");
        let d = AffineIndex {
            coefficients: vec![3, 1],
            constant: -4,
        };
        assert_eq!(d.to_string(), "3*x_0+x_1-4");
    }

    #[test]
    fn predicate_negation() {
        assert_eq!(PredicateCmp::Gt.negate(), PredicateCmp::Le);
        assert_eq!(PredicateCmp::Eq.negate(), PredicateCmp::Ne);
        assert_eq!(PredicateCmp::Lt.negate().negate(), PredicateCmp::Lt);
    }

    #[test]
    fn cluster_keys_distinguish_output_buffers() {
        let mut t1 = small_tree(0x100, 0x200, false);
        t1.output = Leaf::BufferRef {
            buffer: "output_1".into(),
            indices: vec![0, 0],
        };
        let mut t2 = small_tree(0x100, 0x200, false);
        t2.output = Leaf::BufferRef {
            buffer: "output_2".into(),
            indices: vec![0, 0],
        };
        let g1 = GuardedTree {
            tree: t1,
            predicates: vec![],
            recursive: false,
        };
        let g2 = GuardedTree {
            tree: t2,
            predicates: vec![],
            recursive: false,
        };
        assert_ne!(g1.cluster_key(), g2.cluster_key());
    }
}
