//! Buffer structure reconstruction (paper §3.2 and Fig. 3).
//!
//! The memory trace contains raw absolute addresses. Helium reconstructs the
//! layout of the program's buffers by (1) coalescing the addresses accessed
//! by each static instruction into contiguous ranges, (2) merging the ranges
//! of different instructions (so unrolled loops whose individual instructions
//! each touch only every k-th element still yield one region), and (3)
//! recursively linking three or more regions separated by a constant stride
//! into a single larger region. The recursion depth later feeds the generic
//! dimensionality inference (paper §4.3).

use helium_dbi::MemTraceEntry;
use helium_machine::Width;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A reconstructed memory region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Lowest address of the region.
    pub start: u32,
    /// One past the highest address of the region.
    pub end: u32,
    /// Static instructions that access the region.
    pub instructions: BTreeSet<u32>,
    /// Most common access width observed (the inferred element size).
    pub element_width: u32,
    /// Whether the region was read / written.
    pub read: bool,
    /// Whether the region was written.
    pub written: bool,
    /// Strides discovered at each level of recursive grouping, innermost
    /// first. An entry `(stride, count)` means `count` sub-regions separated
    /// by `stride` bytes were linked at that level.
    pub group_strides: Vec<(u32, u32)>,
}

impl Region {
    /// Size of the region in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Number of recursive grouping levels (dimensionality hint for generic
    /// inference: one level of grouping per dimension beyond the first).
    pub fn grouping_levels(&self) -> usize {
        self.group_strides.len()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Range {
    start: u32,
    end: u32,
}

/// Reconstruct regions from a memory trace.
pub fn reconstruct(trace: &[MemTraceEntry]) -> Vec<Region> {
    reconstruct_filtered(trace, |_| true)
}

/// Reconstruct regions considering only trace entries accepted by `keep`.
pub fn reconstruct_filtered(
    trace: &[MemTraceEntry],
    keep: impl Fn(&MemTraceEntry) -> bool,
) -> Vec<Region> {
    // Step 1: per-instruction address sets.
    #[derive(Default)]
    struct PerInstr {
        addrs: BTreeSet<u32>,
        widths: BTreeMap<u32, u64>,
        read: bool,
        written: bool,
    }
    let mut per_instr: BTreeMap<u32, PerInstr> = BTreeMap::new();
    for e in trace.iter().filter(|e| keep(e)) {
        let p = per_instr.entry(e.instr_addr).or_default();
        for i in 0..width_bytes(e.width) {
            p.addrs.insert(e.addr + i);
        }
        *p.widths.entry(width_bytes(e.width)).or_insert(0) += 1;
        if e.is_write {
            p.written = true;
        } else {
            p.read = true;
        }
    }

    // Step 2: coalesce each instruction's addresses into ranges, then merge the
    // ranges of all instructions (tracking attribution).
    let mut ranges: Vec<(Range, u32)> = Vec::new(); // (range, instr)
    for (instr, p) in &per_instr {
        let mut start = None;
        let mut prev = None;
        for &a in &p.addrs {
            match (start, prev) {
                (None, _) => {
                    start = Some(a);
                    prev = Some(a);
                }
                (Some(_), Some(pv)) if a == pv + 1 => prev = Some(a),
                (Some(s), Some(pv)) => {
                    ranges.push((
                        Range {
                            start: s,
                            end: pv + 1,
                        },
                        *instr,
                    ));
                    start = Some(a);
                    prev = Some(a);
                }
                _ => unreachable!(),
            }
        }
        if let (Some(s), Some(pv)) = (start, prev) {
            ranges.push((
                Range {
                    start: s,
                    end: pv + 1,
                },
                *instr,
            ));
        }
    }

    // Merge overlapping/adjacent ranges across instructions.
    ranges.sort_by_key(|(r, _)| r.start);
    let mut merged: Vec<(Range, BTreeSet<u32>)> = Vec::new();
    for (r, instr) in ranges {
        match merged.last_mut() {
            Some((last, instrs)) if r.start <= last.end => {
                last.end = last.end.max(r.end);
                instrs.insert(instr);
            }
            _ => {
                let mut set = BTreeSet::new();
                set.insert(instr);
                merged.push((r, set));
            }
        }
    }

    // Step 3: recursively link >= 3 equally-sized regions separated by a
    // constant stride into larger regions.
    #[derive(Debug, Clone)]
    struct Grouped {
        start: u32,
        end: u32,
        instrs: BTreeSet<u32>,
        strides: Vec<(u32, u32)>,
    }
    let mut groups: Vec<Grouped> = merged
        .into_iter()
        .map(|(r, instrs)| Grouped {
            start: r.start,
            end: r.end,
            instrs,
            strides: Vec::new(),
        })
        .collect();
    loop {
        groups.sort_by_key(|g| g.start);
        let mut changed = false;
        let mut out: Vec<Grouped> = Vec::new();
        let mut i = 0;
        while i < groups.len() {
            // Try to extend a run of same-size, same-stride groups starting at i.
            let size = groups[i].end - groups[i].start;
            let mut run_end = i;
            let mut stride = 0u32;
            if i + 1 < groups.len() {
                stride = groups[i + 1].start.wrapping_sub(groups[i].start);
                let mut j = i + 1;
                while j < groups.len()
                    && groups[j].end - groups[j].start == size
                    && groups[j].start.wrapping_sub(groups[j - 1].start) == stride
                    && stride >= size
                {
                    run_end = j;
                    j += 1;
                }
            }
            let count = run_end - i + 1;
            if count >= 3 && stride > 0 {
                let mut instrs = BTreeSet::new();
                let mut strides = groups[i].strides.clone();
                for g in &groups[i..=run_end] {
                    instrs.extend(g.instrs.iter().copied());
                }
                strides.push((stride, count as u32));
                out.push(Grouped {
                    start: groups[i].start,
                    end: groups[run_end].end,
                    instrs,
                    strides,
                });
                changed = true;
                i = run_end + 1;
            } else {
                out.push(groups[i].clone());
                i += 1;
            }
        }
        groups = out;
        if !changed {
            break;
        }
        // After linking, adjacent groups may have become mergeable again; the
        // loop continues until a fixed point.
    }

    // Assemble the final regions with per-region metadata.
    groups
        .into_iter()
        .map(|g| {
            let mut width_votes: BTreeMap<u32, u64> = BTreeMap::new();
            let mut read = false;
            let mut written = false;
            for instr in &g.instrs {
                if let Some(p) = per_instr.get(instr) {
                    for (w, c) in &p.widths {
                        *width_votes.entry(*w).or_insert(0) += c;
                    }
                    read |= p.read;
                    written |= p.written;
                }
            }
            let element_width = width_votes
                .iter()
                .max_by_key(|(_, c)| **c)
                .map(|(w, _)| *w)
                .unwrap_or(1);
            Region {
                start: g.start,
                end: g.end,
                instructions: g.instrs,
                element_width,
                read,
                written,
                group_strides: g.strides,
            }
        })
        .collect()
}

fn width_bytes(w: Width) -> u32 {
    w.bytes()
}

/// Find the region containing `addr`, if any.
pub fn region_containing(regions: &[Region], addr: u32) -> Option<&Region> {
    regions.iter().find(|r| r.contains(addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(instr: u32, addr: u32, width: Width, is_write: bool) -> MemTraceEntry {
        MemTraceEntry {
            instr_addr: instr,
            addr,
            width,
            is_write,
        }
    }

    #[test]
    fn coalesces_contiguous_accesses() {
        let trace: Vec<MemTraceEntry> = (0..16)
            .map(|i| entry(0x100, 0x9000 + i, Width::B1, false))
            .collect();
        let regions = reconstruct(&trace);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].start, 0x9000);
        assert_eq!(regions[0].len(), 16);
        assert_eq!(regions[0].element_width, 1);
        assert!(regions[0].read);
        assert!(!regions[0].written);
    }

    #[test]
    fn merges_unrolled_instructions() {
        // Two instructions each accessing every other byte; together they cover
        // the buffer contiguously.
        let mut trace = Vec::new();
        for i in (0..32).step_by(2) {
            trace.push(entry(0x100, 0x9000 + i, Width::B1, false));
            trace.push(entry(0x104, 0x9001 + i, Width::B1, false));
        }
        let regions = reconstruct(&trace);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len(), 32);
        assert_eq!(regions[0].instructions.len(), 2);
    }

    #[test]
    fn links_strided_rows_into_one_region() {
        // Rows of 8 bytes separated by a 16-byte stride (padding between rows),
        // as produced by an aligned scanline layout.
        let mut trace = Vec::new();
        for row in 0..6u32 {
            for x in 0..8u32 {
                trace.push(entry(0x200, 0xA000 + row * 16 + x, Width::B1, true));
            }
        }
        let regions = reconstruct(&trace);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].start, 0xA000);
        assert_eq!(regions[0].group_strides, vec![(16, 6)]);
        assert_eq!(regions[0].grouping_levels(), 1);
        assert!(regions[0].written);
    }

    #[test]
    fn two_level_grouping_for_3d_data() {
        // 4 rows of 4 doubles, row stride 48 (ghost cells), plane stride 240,
        // 3 planes: two levels of recursive grouping.
        let mut trace = Vec::new();
        for plane in 0..3u32 {
            for row in 0..4u32 {
                for x in 0..4u32 {
                    trace.push(entry(
                        0x300,
                        0xB000 + plane * 240 + row * 48 + x * 8,
                        Width::B8,
                        false,
                    ));
                }
            }
        }
        let regions = reconstruct(&trace);
        assert_eq!(regions.len(), 1);
        // The contiguous doubles within a row coalesce without a grouping
        // level; rows and planes each add one level (dimensionality = 2 + 1).
        assert_eq!(regions[0].grouping_levels(), 2);
        assert_eq!(regions[0].element_width, 8);
        assert_eq!(regions[0].group_strides[0], (48, 4));
        assert_eq!(regions[0].group_strides[1], (240, 3));
    }

    #[test]
    fn separate_buffers_stay_separate() {
        let mut trace = Vec::new();
        for i in 0..16u32 {
            trace.push(entry(0x100, 0x9000 + i, Width::B1, false));
            trace.push(entry(0x104, 0xF000 + i, Width::B1, true));
        }
        let regions = reconstruct(&trace);
        assert_eq!(regions.len(), 2);
        assert!(region_containing(&regions, 0x9005).is_some());
        assert!(region_containing(&regions, 0xF00F).is_some());
        assert!(region_containing(&regions, 0x500).is_none());
    }

    #[test]
    fn filtered_reconstruction_ignores_entries() {
        let trace: Vec<MemTraceEntry> = (0..8)
            .map(|i| entry(0x100 + (i % 2) * 4, 0x9000 + i, Width::B1, false))
            .collect();
        let regions = reconstruct_filtered(&trace, |e| e.instr_addr == 0x100);
        // Only every other byte survives the filter; the four single-byte
        // ranges are then linked into one strided region.
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].group_strides, vec![(2, 4)]);
    }
}
