//! Offline shim for `criterion`.
//!
//! Provides the handful of APIs the bench harnesses use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Results are printed as `bench: <group>/<name> ... <median> (min .. max)`.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (after one warm-up).
const DEFAULT_SAMPLES: usize = 10;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, mirroring criterion.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Run a free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Print the final summary (a no-op in the shim; results print eagerly).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accept (and ignore) a measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.samples, &mut f);
        self
    }

    /// Finish the group (a no-op in the shim; results print eagerly).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    let mut r = b.results;
    if r.is_empty() {
        println!("bench: {id:<48} (no samples)");
        return;
    }
    r.sort_unstable();
    let median = r[r.len() / 2];
    println!(
        "bench: {id:<48} {:>12?} (min {:?} .. max {:?}, n={})",
        median,
        r[0],
        r[r.len() - 1],
        r.len()
    );
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Entry point running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
