//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the subset of the rand 0.8 API this workspace uses
//! (`StdRng`, `SeedableRng`, `Rng::{gen, gen_bool, gen_range, fill}`,
//! `SliceRandom::{choose, shuffle}`) on top of a small, deterministic
//! xoshiro256** generator. Determinism is a feature here: the autotuner and
//! the pseudo-random test images are reproducible across machines.

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random generator state (xoshiro256**).
#[derive(Debug, Clone)]
pub struct CoreRng {
    s: [u64; 4],
}

impl CoreRng {
    fn from_seed(seed: u64) -> CoreRng {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        CoreRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe generator core.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl Standard for u8 {
    fn standard(rng: &mut dyn RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit as f32 * (self.end - self.start)
    }
}

/// Slices fillable by [`Rng::fill`].
pub trait Fill {
    /// Fill `self` with uniformly distributed values.
    fn fill_from(&mut self, rng: &mut dyn RngCore);
}

impl Fill for [u8] {
    fn fill_from(&mut self, rng: &mut dyn RngCore) {
        for chunk in self.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// The user-facing generator trait (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Uniformly distributed value of an inferrable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fill `dest` with uniformly distributed values.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed (subset of rand 0.8's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::CoreRng;

    /// The standard deterministic generator (xoshiro256** in the shim).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) CoreRng);

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(CoreRng::from_seed(seed))
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Glob-import of the commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen();
            let y: u64 = b.gen();
            assert_eq!(x, y);
        }
        for _ in 0..1000 {
            let v = a.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes every point"
        );
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
