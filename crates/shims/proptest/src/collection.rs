//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{BoxedStrategy, Strategy};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Size specifications accepted by the collection strategies (a fixed size or
/// a range of sizes).
pub trait IntoSizeRange {
    /// Inclusive lower and exclusive upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy,
    S::Value: 'static,
{
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty collection size range");
    BoxedStrategy::new(move |rng| {
        let n = lo + (rng.below((hi - lo) as u64) as usize);
        (0..n).map(|_| element.generate(rng)).collect()
    })
}

/// A strategy producing `BTreeSet`s. The set size may come out below the
/// requested range when the element strategy repeats values; the minimum is
/// retried a bounded number of times.
pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<BTreeSet<S::Value>>
where
    S: Strategy,
    S::Value: Ord + 'static,
{
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty collection size range");
    BoxedStrategy::new(move |rng| {
        let n = lo + (rng.below((hi - lo) as u64) as usize);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 20 + 100 {
            out.insert(element.generate(rng));
            attempts += 1;
        }
        out
    })
}
