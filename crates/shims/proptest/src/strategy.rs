//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is a
/// pure function from generator state to a value.
pub trait Strategy: 'static {
    /// Type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries, then panic).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Build recursive values: `self` generates leaves, `branch` wraps an
    /// inner strategy into a larger value. `depth` bounds the recursion.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let wrapped = branch(current.clone()).boxed();
            let leaf = leaf.clone();
            // Mix in leaves so generated sizes stay bounded in expectation.
            current = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.ratio(1, 4) {
                    leaf.generate(rng)
                } else {
                    wrapped.generate(rng)
                }
            });
        }
        current
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::new(f))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        )
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies, used by `prop_oneof!`.
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights must not all be zero");
    BoxedStrategy::new(move |rng: &mut TestRng| {
        let mut pick = rng.below(total);
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    })
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Uniform choice among strategies, with optional `weight =>` prefixes.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
