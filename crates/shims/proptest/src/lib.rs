//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, range/tuple/`Just`/collection/sample strategies, `any::<T>()`,
//! the `proptest!`, `prop_assert*!`, `prop_assume!` and `prop_oneof!` macros,
//! and a deterministic test runner. There is no shrinking: a failing case
//! panics with the generated inputs' debug representation, which at this
//! repository's input sizes is readable enough to debug directly.
//!
//! Determinism: each test derives its generator seed from the test's module
//! path and name, so failures reproduce across runs and machines.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    /// Alias of the crate root, so `prop::collection::vec(..)` etc. resolve.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
