//! Deterministic test runner: configuration, generator state, and the
//! `proptest!` / `prop_assert*!` macros.

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Generator state for strategies (splitmix64-fed xorshift).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic generator derived from a test identifier, so each test's
    /// sequence is stable across runs and machines.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 uniformly distributed bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next() % bound
    }

    /// Bernoulli draw: true with probability `num/denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Declare property tests. Each function samples its arguments from the given
/// strategies and runs the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < config.cases {
                let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                match case() {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: prop_assume! rejected {} cases (only {} accepted)",
                                stringify!($name), rejected, accepted
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed at case {}: {}", stringify!($name), accepted, msg);
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} != {}: {:?} vs {:?}", stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{} != {}: {:?} vs {:?}: {}",
                    stringify!($a), stringify!($b), a, b, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} == {}: both {:?}", stringify!($a), stringify!($b), a),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{} == {}: both {:?}: {}",
                    stringify!($a), stringify!($b), a, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
