//! `prop::sample` — choosing among explicit alternatives.

use crate::strategy::BoxedStrategy;

/// A strategy that picks a uniformly random element of `options`.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
    assert!(
        !options.is_empty(),
        "sample::select needs at least one option"
    );
    BoxedStrategy::new(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        options[i].clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn select_covers_all_options() {
        let s = select(vec![1, 2, 3]);
        let mut rng = TestRng::for_test("select_covers_all_options");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
