//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draw a uniformly distributed value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite magnitudes across scales with occasional specials,
        // mirroring real proptest's bias toward interesting values.
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            _ => {
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exp = rng.below(613) as i32 - 306;
                mantissa * 10f64.powi(exp)
            }
        }
    }
}
