//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and derive macros so the
//! workspace compiles without crates.io access. No serialization is performed;
//! the workspace only *annotates* its IR types today. Replacing this shim with
//! the real serde is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
