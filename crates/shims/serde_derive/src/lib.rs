//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` annotations on the IR types only reserve the capability.
//! These derives therefore expand to nothing; swapping the real serde back in
//! is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
