//! Property-based tests for the `helium-machine` substrate.
//!
//! The interpreter is the ground truth every later analysis stage consumes, so
//! its arithmetic, flag and addressing semantics are checked here against
//! independent Rust reference computations over randomly generated operands
//! and programs.

use helium_machine::asm::Asm;
use helium_machine::isa::{regs, Cond, MemRef, Operand, Reg, Width};
use helium_machine::program::Program;
use helium_machine::{Cpu, Instr};
use proptest::prelude::*;

/// Assemble `asm`, run it to the final `halt` and return the CPU state.
fn run_to_halt(asm: Asm) -> Cpu {
    let code = asm.finish();
    let entry = *code
        .keys()
        .next()
        .expect("program has at least one instruction");
    let mut program = Program::new();
    program.add_module("prop", code);
    let mut cpu = Cpu::new();
    cpu.pc = entry;
    cpu.run(&program, 100_000, |_, _| {})
        .expect("program halts cleanly");
    cpu
}

/// Build a one-ALU-op program computing `a <op> b` into `eax`.
fn alu_program(build: impl FnOnce(&mut Asm), a: u32, b: u32) -> Cpu {
    let mut asm = Asm::new(0x1000);
    asm.mov(regs::eax(), Operand::Imm(a as i64));
    asm.mov(regs::ebx(), Operand::Imm(b as i64));
    build(&mut asm);
    asm.halt();
    run_to_halt(asm)
}

proptest! {
    /// `add` wraps like `u32::wrapping_add` and sets CF exactly on unsigned
    /// overflow and ZF exactly when the result is zero.
    #[test]
    fn add_matches_wrapping_semantics(a in any::<u32>(), b in any::<u32>()) {
        let cpu = alu_program(|asm| { asm.add(regs::eax(), regs::ebx()); }, a, b);
        let expected = a.wrapping_add(b);
        prop_assert_eq!(cpu.reg(Reg::Eax), expected);
        prop_assert_eq!(cpu.flags.cf, a.checked_add(b).is_none());
        prop_assert_eq!(cpu.flags.zf, expected == 0);
        prop_assert_eq!(cpu.flags.sf, (expected as i32) < 0);
    }

    /// `sub` wraps like `u32::wrapping_sub`; CF is the unsigned borrow.
    #[test]
    fn sub_matches_wrapping_semantics(a in any::<u32>(), b in any::<u32>()) {
        let cpu = alu_program(|asm| { asm.sub(regs::eax(), regs::ebx()); }, a, b);
        let expected = a.wrapping_sub(b);
        prop_assert_eq!(cpu.reg(Reg::Eax), expected);
        prop_assert_eq!(cpu.flags.cf, a < b);
        prop_assert_eq!(cpu.flags.zf, expected == 0);
    }

    /// The bitwise operations match the Rust operators and clear CF.
    #[test]
    fn bitwise_ops_match(a in any::<u32>(), b in any::<u32>()) {
        let and = alu_program(|asm| { asm.and(regs::eax(), regs::ebx()); }, a, b);
        prop_assert_eq!(and.reg(Reg::Eax), a & b);
        prop_assert!(!and.flags.cf);

        let or = alu_program(|asm| { asm.or(regs::eax(), regs::ebx()); }, a, b);
        prop_assert_eq!(or.reg(Reg::Eax), a | b);

        let xor = alu_program(|asm| { asm.xor(regs::eax(), regs::ebx()); }, a, b);
        prop_assert_eq!(xor.reg(Reg::Eax), a ^ b);
        prop_assert_eq!(xor.flags.zf, a == b);
    }

    /// `imul` (two-operand form) keeps the low 32 bits of the signed product.
    #[test]
    fn imul_keeps_low_bits(a in any::<i32>(), b in any::<i32>()) {
        let cpu = alu_program(
            |asm| { asm.imul(regs::eax(), regs::ebx()); },
            a as u32,
            b as u32,
        );
        prop_assert_eq!(cpu.reg(Reg::Eax), a.wrapping_mul(b) as u32);
    }

    /// Shifts by an immediate in `0..32` match the Rust shift operators.
    #[test]
    fn shifts_match(a in any::<u32>(), s in 0u32..31) {
        let shl = alu_program(|asm| { asm.shl(regs::eax(), Operand::Imm(s as i64)); }, a, 0);
        prop_assert_eq!(shl.reg(Reg::Eax), a.wrapping_shl(s));

        let shr = alu_program(|asm| { asm.shr(regs::eax(), Operand::Imm(s as i64)); }, a, 0);
        prop_assert_eq!(shr.reg(Reg::Eax), a.wrapping_shr(s));

        let sar = alu_program(|asm| { asm.sar(regs::eax(), Operand::Imm(s as i64)); }, a, 0);
        prop_assert_eq!(sar.reg(Reg::Eax), ((a as i32) >> s) as u32);
    }

    /// `inc`/`dec` wrap and do not disturb the carry flag's value from a
    /// preceding `add` (x86 semantics: INC/DEC preserve CF).
    #[test]
    fn inc_dec_wrap_and_preserve_carry(a in any::<u32>()) {
        let cpu = alu_program(
            |asm| {
                // Force CF=1 deterministically, then inc.
                asm.mov(regs::ecx(), Operand::Imm(u32::MAX as i64));
                asm.add(regs::ecx(), Operand::Imm(1));
                asm.inc(regs::eax());
            },
            a,
            0,
        );
        prop_assert_eq!(cpu.reg(Reg::Eax), a.wrapping_add(1));
        prop_assert!(cpu.flags.cf, "inc must preserve the carry produced by add");

        let cpu = alu_program(|asm| { asm.dec(regs::eax()); }, a, 0);
        prop_assert_eq!(cpu.reg(Reg::Eax), a.wrapping_sub(1));
    }

    /// `neg` and `not` match two's-complement negation and bitwise complement.
    #[test]
    fn neg_not_match(a in any::<u32>()) {
        let neg = alu_program(|asm| { asm.neg(regs::eax()); }, a, 0);
        prop_assert_eq!(neg.reg(Reg::Eax), (a as i32).wrapping_neg() as u32);

        let not = alu_program(|asm| { asm.not(regs::eax()); }, a, 0);
        prop_assert_eq!(not.reg(Reg::Eax), !a);
    }

    /// The 64-bit `add`/`adc` idiom computes the mathematically correct
    /// 64-bit sum split across two registers.
    #[test]
    fn add_adc_pair_forms_64_bit_addition(a in any::<u64>(), b in any::<u64>()) {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm((a & 0xFFFF_FFFF) as i64));
        asm.mov(regs::edx(), Operand::Imm((a >> 32) as i64));
        asm.mov(regs::ebx(), Operand::Imm((b & 0xFFFF_FFFF) as i64));
        asm.mov(regs::ecx(), Operand::Imm((b >> 32) as i64));
        asm.add(regs::eax(), regs::ebx());
        asm.adc(regs::edx(), regs::ecx());
        asm.halt();
        let cpu = run_to_halt(asm);
        let got = (cpu.reg(Reg::Edx) as u64) << 32 | cpu.reg(Reg::Eax) as u64;
        prop_assert_eq!(got, a.wrapping_add(b));
    }

    /// Partial-register semantics: writing `al`/`ah` only modifies the low /
    /// second byte, and reading them back returns exactly those bytes.
    #[test]
    fn partial_register_views_are_consistent(full in any::<u32>(), low in any::<u8>(), high in any::<u8>()) {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::Eax, full);
        cpu.set_reg_view(regs::al(), low as u64);
        prop_assert_eq!(cpu.reg(Reg::Eax), (full & 0xFFFF_FF00) | low as u32);
        cpu.set_reg_view(regs::ah(), high as u64);
        prop_assert_eq!(
            cpu.reg(Reg::Eax),
            (full & 0xFFFF_0000) | ((high as u32) << 8) | low as u32
        );
        prop_assert_eq!(cpu.reg_view(regs::al()), low as u64);
        prop_assert_eq!(cpu.reg_view(regs::ah()), high as u64);
        prop_assert_eq!(cpu.reg_view(regs::ax()), ((high as u64) << 8) | low as u64);
    }

    /// `movzx` zero-extends and `movsx` sign-extends byte loads from memory.
    #[test]
    fn movzx_movsx_extend_correctly(v in any::<u8>(), addr in 0x2000u32..0x8000) {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::ebx(), Operand::Imm(addr as i64));
        asm.mov(
            Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)),
            Operand::Imm(v as i64),
        );
        asm.movzx(regs::eax(), Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)));
        asm.movsx(regs::ecx(), Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)));
        asm.halt();
        let cpu = run_to_halt(asm);
        prop_assert_eq!(cpu.reg(Reg::Eax), v as u32);
        prop_assert_eq!(cpu.reg(Reg::Ecx), v as i8 as i32 as u32);
    }

    /// A store followed by a load through `base + scale*index + disp`
    /// addressing round-trips the value and reports the same absolute address
    /// in the step records.
    #[test]
    fn sib_addressing_roundtrip(
        base in 0x4000u32..0x6000,
        index in 0u32..64,
        scale in prop::sample::select(vec![1u8, 2, 4, 8]),
        disp in -32i32..32,
        value in any::<u32>(),
    ) {
        let addr = base
            .wrapping_add(index.wrapping_mul(scale as u32))
            .wrapping_add(disp as u32);
        prop_assume!((0x2000..0x0010_0000).contains(&addr));

        let mem = MemRef::sib(Reg::Ebx, Reg::Ecx, scale, disp, Width::B4);
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::ebx(), Operand::Imm(base as i64));
        asm.mov(regs::ecx(), Operand::Imm(index as i64));
        asm.mov(regs::eax(), Operand::Imm(value as i64));
        asm.mov(Operand::Mem(mem), regs::eax());
        asm.mov(regs::edx(), Operand::Mem(mem));
        asm.halt();

        let code = asm.finish();
        let entry = *code.keys().next().expect("code");
        let mut program = Program::new();
        program.add_module("prop", code);
        let mut cpu = Cpu::new();
        cpu.pc = entry;
        let mut observed = Vec::new();
        cpu.run(&program, 10_000, |_, rec| {
            for m in &rec.mem {
                observed.push((m.addr, m.is_write));
            }
        })
        .expect("program halts");

        prop_assert_eq!(cpu.reg(Reg::Edx), value);
        prop_assert!(observed.contains(&(addr, true)), "store address {addr:#x} not observed");
        prop_assert!(observed.contains(&(addr, false)), "load address {addr:#x} not observed");
        prop_assert_eq!(cpu.mem.read_u32(addr), value);
    }

    /// Unsigned conditional branches agree with the Rust comparison operators.
    #[test]
    fn unsigned_branches_agree_with_rust(a in any::<u32>(), b in any::<u32>()) {
        // eax = 1 if a < b (unsigned) else 0, using cmp + jb.
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.mov(regs::ebx(), Operand::Imm(a as i64));
        asm.mov(regs::ecx(), Operand::Imm(b as i64));
        asm.cmp(regs::ebx(), regs::ecx());
        asm.jcc(Cond::Nb, "done");
        asm.mov(regs::eax(), Operand::Imm(1));
        asm.label("done");
        asm.halt();
        let cpu = run_to_halt(asm);
        prop_assert_eq!(cpu.reg(Reg::Eax) == 1, a < b);
    }

    /// Signed conditional branches agree with the Rust comparison operators.
    #[test]
    fn signed_branches_agree_with_rust(a in any::<i32>(), b in any::<i32>()) {
        // eax = 1 if a < b (signed) else 0, using cmp + jl.
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.mov(regs::ebx(), Operand::Imm(a as u32 as i64));
        asm.mov(regs::ecx(), Operand::Imm(b as u32 as i64));
        asm.cmp(regs::ebx(), regs::ecx());
        asm.jcc(Cond::Ge, "done");
        asm.mov(regs::eax(), Operand::Imm(1));
        asm.label("done");
        asm.halt();
        let cpu = run_to_halt(asm);
        prop_assert_eq!(cpu.reg(Reg::Eax) == 1, a < b);
    }

    /// A counted loop assembled with a backward conditional branch executes
    /// exactly `n` iterations.
    #[test]
    fn counted_loop_runs_n_iterations(n in 1u32..200) {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.mov(regs::ecx(), Operand::Imm(n as i64));
        asm.label("loop");
        asm.add(regs::eax(), Operand::Imm(3));
        asm.dec(regs::ecx());
        asm.jcc(Cond::Nz, "loop");
        asm.halt();
        let cpu = run_to_halt(asm);
        prop_assert_eq!(cpu.reg(Reg::Eax), n * 3);
    }

    /// `push`/`pop` restore the pushed values in LIFO order and leave `esp`
    /// where it started.
    #[test]
    fn push_pop_is_lifo(values in prop::collection::vec(any::<u32>(), 1..8)) {
        let mut asm = Asm::new(0x1000);
        for &v in &values {
            asm.mov(regs::eax(), Operand::Imm(v as i64));
            asm.push(regs::eax());
        }
        // Pop them back into memory cells so we can inspect each one.
        for i in 0..values.len() {
            asm.pop(regs::ebx());
            asm.mov(
                Operand::Mem(MemRef::absolute(0x9000 + 4 * i as i32, Width::B4)),
                regs::ebx(),
            );
        }
        asm.halt();
        let cpu = run_to_halt(asm);
        for (i, &v) in values.iter().rev().enumerate() {
            prop_assert_eq!(cpu.mem.read_u32(0x9000 + 4 * i as u32), v);
        }
        prop_assert_eq!(cpu.reg(Reg::Esp), helium_machine::cpu::DEFAULT_STACK_TOP);
    }

    /// `call`/`ret` return to the instruction after the call and preserve the
    /// value computed by the callee.
    #[test]
    fn call_ret_roundtrip(v in any::<u32>()) {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.call("callee");
        asm.add(regs::eax(), Operand::Imm(1));
        asm.halt();
        asm.label("callee");
        asm.mov(regs::eax(), Operand::Imm(v as i64));
        asm.ret();
        let cpu = run_to_halt(asm);
        prop_assert_eq!(cpu.reg(Reg::Eax), v.wrapping_add(1));
    }

    /// Memory round-trips arbitrary byte strings at arbitrary (page-crossing)
    /// addresses.
    #[test]
    fn memory_roundtrips_bytes(addr in 0x1000u32..0x00A0_0000, bytes in prop::collection::vec(any::<u8>(), 1..128)) {
        let mut cpu = Cpu::new();
        cpu.mem.write_bytes(addr, &bytes);
        prop_assert_eq!(cpu.mem.read_bytes(addr, bytes.len() as u32), bytes);
    }

    /// Multi-byte integer writes are little-endian and round-trip through
    /// byte-level reads.
    #[test]
    fn memory_uint_is_little_endian(addr in 0x1000u32..0x0010_0000, v in any::<u32>()) {
        let mut cpu = Cpu::new();
        cpu.mem.write_u32(addr, v);
        prop_assert_eq!(cpu.mem.read_u8(addr), (v & 0xFF) as u8);
        prop_assert_eq!(cpu.mem.read_u8(addr + 3), (v >> 24) as u8);
        prop_assert_eq!(cpu.mem.read_u32(addr), v);
        prop_assert_eq!(cpu.mem.read_uint(addr, 4), v as u64);
    }

    /// f64 values round-trip through memory exactly.
    #[test]
    fn memory_roundtrips_f64(addr in 0x1000u32..0x0010_0000, v in any::<f64>()) {
        prop_assume!(!v.is_nan());
        let mut cpu = Cpu::new();
        cpu.mem.write_f64(addr, v);
        prop_assert_eq!(cpu.mem.read_f64(addr), v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The x87 FP-stack computes a sum of doubles loaded from memory in the
    /// same order as a Rust fold, and `fistp` rounds ties to even.
    #[test]
    fn fp_stack_sum_matches_reference(values in prop::collection::vec(-1000i32..1000, 1..6)) {
        let base = 0x2000u32;
        let mut asm = Asm::new(0x1000);
        // Load the first input, then add the rest from memory.
        asm.fld(helium_machine::FpSrc::MemF64(MemRef::absolute(base as i32, Width::B8)));
        for i in 1..values.len() {
            asm.farith(
                helium_machine::FpOp::Add,
                helium_machine::FpSrc::MemF64(MemRef::absolute((base + 8 * i as u32) as i32, Width::B8)),
            );
        }
        asm.fstp(helium_machine::FpSrc::MemF64(MemRef::absolute(0x3000, Width::B8)));
        asm.halt();

        let code = asm.finish();
        let entry = *code.keys().next().expect("code");
        let mut program = Program::new();
        program.add_module("prop", code);
        let mut cpu = Cpu::new();
        for (i, &v) in values.iter().enumerate() {
            cpu.mem.write_f64(base + 8 * i as u32, v as f64);
        }
        cpu.pc = entry;
        cpu.run(&program, 10_000, |_, _| {}).expect("program halts");

        let expected: f64 = values.iter().map(|&v| v as f64).sum();
        prop_assert_eq!(cpu.mem.read_f64(0x3000), expected);
        prop_assert_eq!(cpu.fpu.depth(), 0, "fstp must pop the stack");
    }
}

/// `round_ties_even` agrees with the IEEE round-to-nearest-even rule.
#[test]
fn round_ties_even_reference_cases() {
    use helium_machine::cpu::round_ties_even;
    assert_eq!(round_ties_even(0.5), 0.0);
    assert_eq!(round_ties_even(1.5), 2.0);
    assert_eq!(round_ties_even(2.5), 2.0);
    assert_eq!(round_ties_even(-0.5), 0.0);
    assert_eq!(round_ties_even(-1.5), -2.0);
    assert_eq!(round_ties_even(2.4), 2.0);
    assert_eq!(round_ties_even(2.6), 3.0);
}

proptest! {
    /// Basic-block discovery: every instruction belongs to exactly one block,
    /// and block leaders are instruction addresses.
    #[test]
    fn basic_blocks_partition_the_program(n_jumps in 1usize..6) {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        for i in 0..n_jumps {
            let label = format!("l{i}");
            asm.add(regs::eax(), Operand::Imm(1));
            asm.cmp(regs::eax(), Operand::Imm(100));
            asm.jcc(Cond::L, label.as_str());
            asm.add(regs::eax(), Operand::Imm(7));
            asm.label(label.as_str());
            asm.add(regs::eax(), Operand::Imm(3));
        }
        asm.halt();
        let mut program = Program::new();
        program.add_module("prop", asm.finish());

        let blocks = program.basic_blocks();
        let mut seen = std::collections::BTreeSet::new();
        let mut covered = 0usize;
        for (leader, instrs) in &blocks {
            prop_assert!(program.instr_at(*leader).is_some(), "leader must be an instruction");
            for a in instrs {
                prop_assert!(seen.insert(*a), "instruction {a:#x} appears in two blocks");
                covered += 1;
            }
        }
        prop_assert_eq!(covered, program.len(), "blocks must cover every instruction");
    }

    /// The assembler resolves forward and backward label references to the
    /// address recorded by `label()`.
    #[test]
    fn assembler_resolves_labels(pad in 1usize..20) {
        let mut asm = Asm::new(0x4000);
        asm.jmp("fwd");
        for _ in 0..pad {
            asm.nop();
        }
        let fwd_addr = asm.label("fwd");
        asm.mov(regs::eax(), Operand::Imm(1));
        asm.jcc(Cond::Nz, "fwd");
        asm.halt();
        let code = asm.finish();
        match code.get(&0x4000) {
            Some(Instr::Jmp { target }) => prop_assert_eq!(*target, fwd_addr),
            other => prop_assert!(false, "expected jmp at entry, got {other:?}"),
        }
        let jcc = code
            .values()
            .find_map(|i| match i {
                Instr::Jcc { target, .. } => Some(*target),
                _ => None,
            })
            .expect("conditional jump present");
        prop_assert_eq!(jcc, fwd_addr);
    }
}
