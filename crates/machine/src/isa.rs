//! Instruction-set definitions for the x86-like virtual machine.
//!
//! The ISA deliberately mirrors the subset of 32-bit x86 that the Helium paper
//! has to deal with in optimized image-processing kernels: general-purpose
//! registers with partial (8/16-bit) views, `base + scale*index + disp`
//! addressing, integer ALU operations that set flags, conditional jumps, calls
//! through a stack, and an x87-style floating-point register *stack* whose
//! locations are only meaningful relative to a dynamic top-of-stack pointer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit general purpose register.
///
/// The names follow the x86 convention so the assembly listings produced by
/// the legacy applications read like the listings in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the register names are self-describing
pub enum Reg {
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
        Reg::Esp,
    ];

    /// Dense index of the register, used to map registers into the analysis
    /// address space (paper §4.5 maps registers to memory).
    pub fn index(self) -> usize {
        match self {
            Reg::Eax => 0,
            Reg::Ebx => 1,
            Reg::Ecx => 2,
            Reg::Edx => 3,
            Reg::Esi => 4,
            Reg::Edi => 5,
            Reg::Ebp => 6,
            Reg::Esp => 7,
        }
    }

    /// Parse a register name such as `eax`.
    pub fn from_name(name: &str) -> Option<Reg> {
        Some(match name {
            "eax" => Reg::Eax,
            "ebx" => Reg::Ebx,
            "ecx" => Reg::Ecx,
            "edx" => Reg::Edx,
            "esi" => Reg::Esi,
            "edi" => Reg::Edi,
            "ebp" => Reg::Ebp,
            "esp" => Reg::Esp,
            _ => return None,
        })
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        };
        f.write_str(s)
    }
}

/// Access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Width {
    /// 1 byte (`byte ptr`, `al`).
    B1,
    /// 2 bytes (`word ptr`, `ax`).
    B2,
    /// 4 bytes (`dword ptr`, `eax`).
    B4,
    /// 8 bytes (`qword ptr`, x87 doubles).
    B8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Mask selecting the low `bits()` bits of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::B1 => 0xff,
            Width::B2 => 0xffff,
            Width::B4 => 0xffff_ffff,
            Width::B8 => u64::MAX,
        }
    }

    /// Construct from a byte count.
    pub fn from_bytes(bytes: u32) -> Option<Width> {
        Some(match bytes {
            1 => Width::B1,
            2 => Width::B2,
            4 => Width::B4,
            8 => Width::B8,
            _ => return None,
        })
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Width::B1 => "byte",
            Width::B2 => "word",
            Width::B4 => "dword",
            Width::B8 => "qword",
        };
        f.write_str(s)
    }
}

/// A (possibly partial) view of a general-purpose register.
///
/// `lo` is the byte offset inside the 32-bit register, so `ah` is
/// `RegRef { reg: Eax, lo: 1, width: B1 }`.  Partial register reads/writes are
/// one of the complications the paper calls out for IrfanView's code, and the
/// analysis handles them by mapping registers into a byte-addressed shadow
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegRef {
    /// Underlying 32-bit register.
    pub reg: Reg,
    /// Byte offset of the view within the register (0 or 1).
    pub lo: u8,
    /// Width of the view.
    pub width: Width,
}

impl RegRef {
    /// Full 32-bit view of a register.
    pub fn full(reg: Reg) -> RegRef {
        RegRef {
            reg,
            lo: 0,
            width: Width::B4,
        }
    }

    /// Low 16-bit view (`ax`, `bx`, ...).
    pub fn word(reg: Reg) -> RegRef {
        RegRef {
            reg,
            lo: 0,
            width: Width::B2,
        }
    }

    /// Low byte view (`al`, `bl`, ...).
    pub fn low_byte(reg: Reg) -> RegRef {
        RegRef {
            reg,
            lo: 0,
            width: Width::B1,
        }
    }

    /// Second byte view (`ah`, `bh`, ...).
    pub fn high_byte(reg: Reg) -> RegRef {
        RegRef {
            reg,
            lo: 1,
            width: Width::B1,
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = self.reg.to_string();
        match (self.width, self.lo) {
            (Width::B4, 0) => write!(f, "{base}"),
            (Width::B2, 0) => write!(f, "{}", &base[1..]),
            (Width::B1, 0) => write!(f, "{}l", &base[1..2]),
            (Width::B1, 1) => write!(f, "{}h", &base[1..2]),
            _ => write!(f, "{base}[{}..+{}]", self.lo, self.width.bytes()),
        }
    }
}

/// Convenience constructors for common register views.
pub mod regs {
    use super::{Reg, RegRef, Width};

    macro_rules! full {
        ($($name:ident => $reg:ident),* $(,)?) => {
            $(
                #[doc = concat!("The `", stringify!($name), "` register view.")]
                pub fn $name() -> RegRef { RegRef::full(Reg::$reg) }
            )*
        };
    }
    full! {
        eax => Eax, ebx => Ebx, ecx => Ecx, edx => Edx,
        esi => Esi, edi => Edi, ebp => Ebp, esp => Esp,
    }

    /// The `ax` register view.
    pub fn ax() -> RegRef {
        RegRef::word(Reg::Eax)
    }
    /// The `al` register view.
    pub fn al() -> RegRef {
        RegRef::low_byte(Reg::Eax)
    }
    /// The `ah` register view.
    pub fn ah() -> RegRef {
        RegRef::high_byte(Reg::Eax)
    }
    /// The `bl` register view.
    pub fn bl() -> RegRef {
        RegRef::low_byte(Reg::Ebx)
    }
    /// The `bh` register view.
    pub fn bh() -> RegRef {
        RegRef::high_byte(Reg::Ebx)
    }
    /// The `cl` register view.
    pub fn cl() -> RegRef {
        RegRef::low_byte(Reg::Ecx)
    }
    /// The `ch` register view.
    pub fn ch() -> RegRef {
        RegRef::high_byte(Reg::Ecx)
    }
    /// The `dl` register view.
    pub fn dl() -> RegRef {
        RegRef::low_byte(Reg::Edx)
    }
    /// The `dh` register view.
    pub fn dh() -> RegRef {
        RegRef::high_byte(Reg::Edx)
    }
    /// The `cx` register view.
    pub fn cx() -> RegRef {
        RegRef::word(Reg::Ecx)
    }
    /// The `dx` register view.
    pub fn dx() -> RegRef {
        RegRef::word(Reg::Edx)
    }

    /// A partial byte view at an arbitrary offset, used in tests.
    pub fn byte_at(reg: Reg, lo: u8) -> RegRef {
        RegRef {
            reg,
            lo,
            width: Width::B1,
        }
    }
}

/// An indirect memory reference `width ptr [base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i32,
    /// Access width.
    pub width: Width,
}

impl MemRef {
    /// `width ptr [base + disp]`.
    pub fn base_disp(base: Reg, disp: i32, width: Width) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            width,
        }
    }

    /// `width ptr [base]`.
    pub fn base_only(base: Reg, width: Width) -> MemRef {
        MemRef::base_disp(base, 0, width)
    }

    /// `width ptr [base + index*scale + disp]`.
    pub fn sib(base: Reg, index: Reg, scale: u8, disp: i32, width: Width) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            width,
        }
    }

    /// `width ptr [disp]` (absolute address).
    pub fn absolute(disp: i32, width: Width) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp,
            width,
        }
    }

    /// Same reference with a different access width.
    pub fn with_width(mut self, width: Width) -> MemRef {
        self.width = width;
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ptr [", self.width)?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}")?;
            if self.scale != 1 {
                write!(f, "*{}", self.scale)?;
            }
            first = false;
        }
        if self.disp != 0 || first {
            if self.disp < 0 {
                write!(f, "-{:#x}", -(self.disp as i64))?;
            } else {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A (possibly partial) register.
    Reg(RegRef),
    /// An indirect memory reference.
    Mem(MemRef),
    /// An immediate constant (sign-extended to 64 bits).
    Imm(i64),
}

impl Operand {
    /// Width of the operand; immediates report the width of their consumer and
    /// default to 4 bytes.
    pub fn width(&self) -> Width {
        match self {
            Operand::Reg(r) => r.width,
            Operand::Mem(m) => m.width,
            Operand::Imm(_) => Width::B4,
        }
    }

    /// Returns the memory reference if this operand is indirect.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }
}

impl From<RegRef> for Operand {
    fn from(r: RegRef) -> Self {
        Operand::Reg(r)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Self {
        Operand::Mem(m)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Imm(i) => write!(f, "{:#x}", i),
        }
    }
}

/// Condition codes for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// ZF = 1 (`jz` / `je`).
    Z,
    /// ZF = 0 (`jnz` / `jne`).
    Nz,
    /// CF = 1 (`jb`, unsigned less-than).
    B,
    /// CF = 0 (`jnb` / `jae`).
    Nb,
    /// CF = 1 or ZF = 1 (`jbe`).
    Be,
    /// CF = 0 and ZF = 0 (`ja`).
    A,
    /// SF != OF (`jl`, signed less-than).
    L,
    /// SF = OF (`jge`).
    Ge,
    /// ZF = 1 or SF != OF (`jle`).
    Le,
    /// ZF = 0 and SF = OF (`jg`).
    G,
    /// SF = 1 (`js`).
    S,
    /// SF = 0 (`jns`).
    Ns,
}

impl Cond {
    /// The condition with opposite truth value.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Z => Cond::Nz,
            Cond::Nz => Cond::Z,
            Cond::B => Cond::Nb,
            Cond::Nb => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Z => "z",
            Cond::Nz => "nz",
            Cond::B => "b",
            Cond::Nb => "nb",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::S => "s",
            Cond::Ns => "ns",
        };
        f.write_str(s)
    }
}

/// Integer ALU operations that share the two-operand `dst op= src` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition (`add`).
    Add,
    /// Addition with carry (`adc`).
    Adc,
    /// Subtraction (`sub`).
    Sub,
    /// Subtraction with borrow (`sbb`).
    Sbb,
    /// Bitwise and (`and`).
    And,
    /// Bitwise or (`or`).
    Or,
    /// Bitwise exclusive or (`xor`).
    Xor,
    /// Two-operand signed multiply (`imul`).
    Imul,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Adc => "adc",
            AluOp::Sub => "sub",
            AluOp::Sbb => "sbb",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Imul => "imul",
        };
        f.pad(s)
    }
}

/// Shift operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftOp {
    /// Logical left shift (`shl`).
    Shl,
    /// Logical right shift (`shr`).
    Shr,
    /// Arithmetic right shift (`sar`).
    Sar,
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        };
        f.pad(s)
    }
}

/// x87-style floating point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpOp {
    /// Floating-point addition (`fadd`).
    Add,
    /// Floating-point subtraction (`fsub`).
    Sub,
    /// Floating-point multiplication (`fmul`).
    Mul,
    /// Floating-point division (`fdiv`).
    Div,
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
        };
        f.write_str(s)
    }
}

/// Source operand of an x87 operation: either a memory reference or a
/// register-stack slot `st(i)` relative to the dynamic top of stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpSrc {
    /// `st(i)`, relative to the current top of the FP stack.
    St(u8),
    /// A 32-bit float in memory.
    MemF32(MemRef),
    /// A 64-bit double in memory.
    MemF64(MemRef),
    /// A 32-bit signed integer in memory (x87 `fi*` forms).
    MemI32(MemRef),
}

impl fmt::Display for FpSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpSrc::St(i) => write!(f, "st({i})"),
            FpSrc::MemF32(m) => write!(f, "{m}"),
            FpSrc::MemF64(m) => write!(f, "{m}"),
            FpSrc::MemI32(m) => write!(f, "{m}"),
        }
    }
}

/// External library functions recognized by their (dynamic-linking) symbol.
///
/// The paper handles calls to known library functions such as `sqrt` and
/// `floor` by emitting the corresponding Halide intrinsic instead of lifting
/// the library's optimized implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExternFn {
    /// `sqrt(double) -> double`.
    Sqrt,
    /// `floor(double) -> double`.
    Floor,
    /// `ceil(double) -> double`.
    Ceil,
    /// `fabs(double) -> double`.
    Fabs,
    /// `exp(double) -> double`.
    Exp,
    /// `log(double) -> double`.
    Log,
    /// `pow(double, double) -> double`.
    Pow,
}

impl ExternFn {
    /// The dynamic-linking symbol name of the function.
    pub fn symbol(self) -> &'static str {
        match self {
            ExternFn::Sqrt => "sqrt",
            ExternFn::Floor => "floor",
            ExternFn::Ceil => "ceil",
            ExternFn::Fabs => "fabs",
            ExternFn::Exp => "exp",
            ExternFn::Log => "log",
            ExternFn::Pow => "pow",
        }
    }

    /// Number of double arguments taken from the FP stack.
    pub fn arity(self) -> usize {
        match self {
            ExternFn::Pow => 2,
            _ => 1,
        }
    }

    /// Evaluate the function on concrete arguments.
    pub fn eval(self, args: &[f64]) -> f64 {
        match self {
            ExternFn::Sqrt => args[0].sqrt(),
            ExternFn::Floor => args[0].floor(),
            ExternFn::Ceil => args[0].ceil(),
            ExternFn::Fabs => args[0].abs(),
            ExternFn::Exp => args[0].exp(),
            ExternFn::Log => args[0].ln(),
            ExternFn::Pow => args[0].powf(args[1]),
        }
    }
}

impl fmt::Display for ExternFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single machine instruction.
///
/// Each instruction occupies [`INSTR_SIZE`](crate::program::INSTR_SIZE) bytes
/// of code address space; jump/call targets are absolute code addresses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are documented on each variant
pub enum Instr {
    /// `mov dst, src` — copy with matching widths.
    Mov { dst: Operand, src: Operand },
    /// `movzx dst, src` — zero-extending load (narrow source, wide dest).
    Movzx { dst: RegRef, src: Operand },
    /// `movsx dst, src` — sign-extending load.
    Movsx { dst: RegRef, src: Operand },
    /// `lea dst, [mem]` — address computation without memory access.
    Lea { dst: RegRef, addr: MemRef },
    /// Two-operand ALU operation `dst = dst op src` (sets flags).
    Alu {
        op: AluOp,
        dst: Operand,
        src: Operand,
    },
    /// Shift `dst = dst shift amount` (amount is an immediate or `cl`).
    Shift {
        op: ShiftOp,
        dst: Operand,
        amount: Operand,
    },
    /// `inc dst`.
    Inc { dst: Operand },
    /// `dec dst`.
    Dec { dst: Operand },
    /// `neg dst` (two's complement negation).
    Neg { dst: Operand },
    /// `not dst` (bitwise complement).
    Not { dst: Operand },
    /// `cmp a, b` — compute flags of `a - b` without writing a result.
    Cmp { a: Operand, b: Operand },
    /// `test a, b` — compute flags of `a & b` without writing a result.
    Test { a: Operand, b: Operand },
    /// Unconditional jump to an absolute code address.
    Jmp { target: u32 },
    /// Conditional jump.
    Jcc { cond: Cond, target: u32 },
    /// Call to an absolute code address (pushes the return address).
    Call { target: u32 },
    /// Call to a known external library function (arguments on the FP stack).
    CallExtern { func: ExternFn },
    /// Return (pops the return address).
    Ret,
    /// `push src`.
    Push { src: Operand },
    /// `pop dst`.
    Pop { dst: Operand },
    /// x87 load: push a value onto the FP stack.
    Fld { src: FpSrc },
    /// x87 store the top of stack to memory (optionally popping).
    Fst { dst: FpSrc, pop: bool },
    /// x87 store the top of stack to a 32-bit integer with rounding (popping).
    Fistp { dst: MemRef },
    /// x87 binary operation `st(0) = st(0) op src` (or `st(i) op= st(0)` when
    /// `reverse_dst` is set, which also pops for the `faddp` family).
    Farith {
        op: FpOp,
        src: FpSrc,
        pop: bool,
        reverse_dst: bool,
    },
    /// x87 exchange `st(0)` with `st(i)`.
    Fxch { slot: u8 },
    /// No operation (used for alignment padding like `lea esp,[esp+0x00]`).
    Nop,
    /// Stop execution of the whole program (used by application drivers).
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { dst, src } => write!(f, "mov    {dst}, {src}"),
            Instr::Movzx { dst, src } => write!(f, "movzx  {dst}, {src}"),
            Instr::Movsx { dst, src } => write!(f, "movsx  {dst}, {src}"),
            Instr::Lea { dst, addr } => write!(f, "lea    {dst}, {addr}"),
            Instr::Alu { op, dst, src } => write!(f, "{op:<6} {dst}, {src}"),
            Instr::Shift { op, dst, amount } => write!(f, "{op:<6} {dst}, {amount}"),
            Instr::Inc { dst } => write!(f, "inc    {dst}"),
            Instr::Dec { dst } => write!(f, "dec    {dst}"),
            Instr::Neg { dst } => write!(f, "neg    {dst}"),
            Instr::Not { dst } => write!(f, "not    {dst}"),
            Instr::Cmp { a, b } => write!(f, "cmp    {a}, {b}"),
            Instr::Test { a, b } => write!(f, "test   {a}, {b}"),
            Instr::Jmp { target } => write!(f, "jmp    {target:#x}"),
            Instr::Jcc { cond, target } => write!(f, "j{cond:<5} {target:#x}"),
            Instr::Call { target } => write!(f, "call   {target:#x}"),
            Instr::CallExtern { func } => write!(f, "call   {func}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Push { src } => write!(f, "push   {src}"),
            Instr::Pop { dst } => write!(f, "pop    {dst}"),
            Instr::Fld { src } => write!(f, "fld    {src}"),
            Instr::Fst { dst, pop } => {
                write!(f, "{}    {dst}", if *pop { "fstp" } else { "fst " })
            }
            Instr::Fistp { dst } => write!(f, "fistp  {dst}"),
            Instr::Farith {
                op,
                src,
                pop,
                reverse_dst,
            } => {
                let suffix = if *pop { "p" } else { "" };
                let dir = if *reverse_dst { " (to st)" } else { "" };
                write!(f, "{op}{suffix} {src}{dir}")
            }
            Instr::Fxch { slot } => write!(f, "fxch   st({slot})"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "hlt"),
        }
    }
}

impl Instr {
    /// Returns `true` for instructions that terminate a basic block.
    pub fn is_block_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. } | Instr::Jcc { .. } | Instr::Call { .. } | Instr::Ret | Instr::Halt
        )
    }

    /// Returns the static control-flow target, if any.
    pub fn static_target(&self) -> Option<u32> {
        match self {
            Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Returns `true` for conditional control flow.
    pub fn is_conditional(&self) -> bool {
        matches!(self, Instr::Jcc { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_parse_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_name(&r.to_string()), Some(r));
        }
        assert_eq!(Reg::from_name("xyz"), None);
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::B1.mask(), 0xff);
        assert_eq!(Width::B2.mask(), 0xffff);
        assert_eq!(Width::B4.mask(), 0xffff_ffff);
        assert_eq!(Width::B4.bits(), 32);
        assert_eq!(Width::from_bytes(2), Some(Width::B2));
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn regref_display() {
        assert_eq!(regs::eax().to_string(), "eax");
        assert_eq!(regs::ax().to_string(), "ax");
        assert_eq!(regs::al().to_string(), "al");
        assert_eq!(regs::ah().to_string(), "ah");
        assert_eq!(regs::dl().to_string(), "dl");
    }

    #[test]
    fn memref_display() {
        let m = MemRef::sib(Reg::Eax, Reg::Ecx, 4, 4, Width::B4);
        assert_eq!(m.to_string(), "dword ptr [eax+ecx*4+0x4]");
        let m2 = MemRef::base_disp(Reg::Ebp, -8, Width::B1);
        assert_eq!(m2.to_string(), "byte ptr [ebp-0x8]");
        let abs = MemRef::absolute(0x1000, Width::B2);
        assert_eq!(abs.to_string(), "word ptr [0x1000]");
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::Z,
            Cond::Nz,
            Cond::B,
            Cond::Nb,
            Cond::Be,
            Cond::A,
            Cond::L,
            Cond::Ge,
            Cond::Le,
            Cond::G,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn extern_fn_eval() {
        assert_eq!(ExternFn::Sqrt.eval(&[9.0]), 3.0);
        assert_eq!(ExternFn::Floor.eval(&[2.7]), 2.0);
        assert_eq!(ExternFn::Pow.eval(&[2.0, 10.0]), 1024.0);
        assert_eq!(ExternFn::Pow.arity(), 2);
        assert_eq!(ExternFn::Sqrt.symbol(), "sqrt");
    }

    #[test]
    fn block_terminators() {
        assert!(Instr::Ret.is_block_terminator());
        assert!(Instr::Jmp { target: 4 }.is_block_terminator());
        assert!(!Instr::Nop.is_block_terminator());
        assert_eq!(
            Instr::Jcc {
                cond: Cond::Z,
                target: 8
            }
            .static_target(),
            Some(8)
        );
        assert!(Instr::Jcc {
            cond: Cond::Z,
            target: 8
        }
        .is_conditional());
    }

    #[test]
    fn instr_display_smoke() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(regs::eax()),
            src: Operand::Mem(MemRef::base_disp(Reg::Ebp, 8, Width::B4)),
        };
        assert_eq!(i.to_string(), "add    eax, dword ptr [ebp+0x8]");
    }
}
