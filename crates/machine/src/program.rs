//! Program container: code layout, modules, symbols and basic blocks.
//!
//! A [`Program`] is the analogue of a loaded process image: one or more
//! modules (main executable plus "DLLs") whose instructions occupy a flat
//! code address space. Function symbols exist only where the application
//! chooses to expose them; stencil kernels inside a stripped module carry no
//! names, just entry addresses, exactly as in the paper.

use crate::isa::Instr;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Number of code-address-space bytes occupied by one instruction.
///
/// Real x86 has variable-length instructions; a fixed size keeps address
/// arithmetic simple without changing anything the analysis depends on.
pub const INSTR_SIZE: u32 = 4;

/// A named or anonymous function: an entry address inside a module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSym {
    /// Entry address of the function.
    pub entry: u32,
    /// Symbol name if the function is exported (dynamic-linking symbols
    /// survive stripping); `None` for internal, stripped functions.
    pub name: Option<String>,
}

/// A module (main binary or dynamically loaded library).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module name, e.g. `photoflow.exe` or `filters.dll`.
    pub name: String,
    /// Base address of the module's code.
    pub base: u32,
    /// One-past-the-end address of the module's code.
    pub end: u32,
}

/// A complete loaded program image.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    instrs: BTreeMap<u32, Instr>,
    modules: Vec<Module>,
    functions: Vec<FunctionSym>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a code segment produced by the assembler as a module.
    ///
    /// # Panics
    /// Panics if any instruction address overlaps an existing module.
    pub fn add_module(&mut self, name: &str, code: BTreeMap<u32, Instr>) {
        if code.is_empty() {
            return;
        }
        let base = *code.keys().next().expect("non-empty");
        let end = *code.keys().last().expect("non-empty") + INSTR_SIZE;
        for m in &self.modules {
            assert!(
                end <= m.base || base >= m.end,
                "module {name} overlaps existing module {}",
                m.name
            );
        }
        for (addr, instr) in code {
            let prev = self.instrs.insert(addr, instr);
            assert!(
                prev.is_none(),
                "instruction address {addr:#x} defined twice"
            );
        }
        self.modules.push(Module {
            name: name.to_string(),
            base,
            end,
        });
    }

    /// Register a function symbol (exported or internal-but-known entry point).
    pub fn add_function(&mut self, entry: u32, name: Option<&str>) {
        self.functions.push(FunctionSym {
            entry,
            name: name.map(str::to_string),
        });
    }

    /// Look up the instruction at `addr`.
    pub fn instr_at(&self, addr: u32) -> Option<&Instr> {
        self.instrs.get(&addr)
    }

    /// All instructions in address order.
    pub fn instrs(&self) -> impl Iterator<Item = (u32, &Instr)> {
        self.instrs.iter().map(|(a, i)| (*a, i))
    }

    /// Number of static instructions in the program.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Modules in load order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Known function symbols.
    pub fn functions(&self) -> &[FunctionSym] {
        &self.functions
    }

    /// The module containing `addr`, if any.
    pub fn module_of(&self, addr: u32) -> Option<&Module> {
        self.modules.iter().find(|m| addr >= m.base && addr < m.end)
    }

    /// Compute the address of the basic-block leader containing `addr`.
    ///
    /// Leaders are module entry points, explicit function entries, targets of
    /// jumps/calls and instructions following a block terminator. The result
    /// is the greatest leader less than or equal to `addr`.
    pub fn block_leader_of(&self, addr: u32, leaders: &BTreeSet<u32>) -> u32 {
        *leaders.range(..=addr).next_back().unwrap_or(&addr)
    }

    /// Compute the set of static basic-block leader addresses.
    pub fn block_leaders(&self) -> BTreeSet<u32> {
        let mut leaders = BTreeSet::new();
        for m in &self.modules {
            leaders.insert(m.base);
        }
        for f in &self.functions {
            leaders.insert(f.entry);
        }
        let mut prev_was_terminator = false;
        let mut prev_addr_plus = None;
        for (addr, instr) in &self.instrs {
            if prev_was_terminator {
                if let Some(expected) = prev_addr_plus {
                    if *addr == expected {
                        leaders.insert(*addr);
                    }
                }
            }
            // Any address that is a target of control flow is a leader; the
            // instruction after a conditional branch (fall-through) is too.
            if let Some(t) = instr.static_target() {
                leaders.insert(t);
            }
            if instr.is_conditional() || matches!(instr, Instr::Call { .. }) {
                leaders.insert(addr + INSTR_SIZE);
            }
            prev_was_terminator = instr.is_block_terminator();
            prev_addr_plus = Some(addr + INSTR_SIZE);
        }
        // Only keep leaders that actually have instructions.
        leaders.retain(|a| self.instrs.contains_key(a));
        leaders
    }

    /// Enumerate static basic blocks as `(leader, instruction addresses)`.
    pub fn basic_blocks(&self) -> Vec<(u32, Vec<u32>)> {
        let leaders = self.block_leaders();
        let mut blocks = Vec::new();
        let mut current: Option<(u32, Vec<u32>)> = None;
        for (addr, instr) in &self.instrs {
            let starts_new = leaders.contains(addr)
                || current
                    .as_ref()
                    .map(|(_, is)| is.last().map(|l| l + INSTR_SIZE) != Some(*addr))
                    .unwrap_or(true);
            if starts_new {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
                current = Some((*addr, vec![*addr]));
            } else if let Some((_, is)) = current.as_mut() {
                is.push(*addr);
            }
            if instr.is_block_terminator() {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
            }
        }
        if let Some(b) = current.take() {
            blocks.push(b);
        }
        blocks
    }

    /// Total number of static basic blocks.
    pub fn basic_block_count(&self) -> usize {
        self.basic_blocks().len()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.modules {
            writeln!(f, "; module {} [{:#x}, {:#x})", m.name, m.base, m.end)?;
            for (addr, instr) in self.instrs.range(m.base..m.end) {
                if let Some(func) = self
                    .functions
                    .iter()
                    .find(|fun| fun.entry == *addr && fun.name.is_some())
                {
                    writeln!(f, "{}:", func.name.as_deref().unwrap_or("?"))?;
                }
                writeln!(f, "  {addr:#010x}  {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{regs, Cond, Operand};

    fn tiny_program() -> Program {
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.label("loop");
        asm.inc(regs::eax());
        asm.cmp(regs::eax(), Operand::Imm(10));
        asm.jcc(Cond::B, "loop");
        asm.ret();
        let mut p = Program::new();
        p.add_module("tiny", asm.finish());
        p.add_function(0x1000, Some("main"));
        p
    }

    #[test]
    fn basic_block_discovery() {
        let p = tiny_program();
        assert_eq!(p.len(), 5);
        let blocks = p.basic_blocks();
        // Block 1: mov; block 2: inc/cmp/jb; block 3: ret.
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].1.len(), 1);
        assert_eq!(blocks[1].1.len(), 3);
        assert_eq!(blocks[2].1.len(), 1);
    }

    #[test]
    fn module_lookup() {
        let p = tiny_program();
        assert_eq!(p.module_of(0x1004).map(|m| m.name.as_str()), Some("tiny"));
        assert_eq!(p.module_of(0x5000), None);
        assert_eq!(p.functions().len(), 1);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_modules_rejected() {
        let mut asm1 = Asm::new(0x1000);
        asm1.ret();
        let mut asm2 = Asm::new(0x1000);
        asm2.ret();
        let mut p = Program::new();
        p.add_module("a", asm1.finish());
        p.add_module("b", asm2.finish());
    }

    #[test]
    fn display_contains_symbols() {
        let p = tiny_program();
        let text = p.to_string();
        assert!(text.contains("main:"));
        assert!(text.contains("module tiny"));
    }
}
