//! Programmatic assembler with label resolution.
//!
//! Legacy applications author their optimized kernels with this builder: it
//! emits instructions at consecutive code addresses, resolves forward and
//! backward label references, and returns the `address -> instruction` map
//! that [`Program::add_module`](crate::program::Program::add_module) consumes.

use crate::isa::{AluOp, Cond, ExternFn, FpOp, FpSrc, Instr, MemRef, Operand, RegRef, ShiftOp};
use crate::program::INSTR_SIZE;
use std::collections::{BTreeMap, HashMap};

/// A pending control-flow target: either an already-known absolute address or
/// a label to be resolved when [`Asm::finish`] is called.
#[derive(Debug, Clone)]
enum Target {
    Addr(u32),
    Label(String),
}

/// Things that can be used as a jump/call target.
pub trait IntoTarget {
    /// Convert to an internal target representation.
    fn into_target(self) -> TargetSpec;
}

/// Resolved-or-labelled target specification.
#[derive(Debug, Clone)]
pub struct TargetSpec(Target);

impl IntoTarget for u32 {
    fn into_target(self) -> TargetSpec {
        TargetSpec(Target::Addr(self))
    }
}

impl IntoTarget for &str {
    fn into_target(self) -> TargetSpec {
        TargetSpec(Target::Label(self.to_string()))
    }
}

impl IntoTarget for String {
    fn into_target(self) -> TargetSpec {
        TargetSpec(Target::Label(self))
    }
}

impl IntoTarget for &String {
    fn into_target(self) -> TargetSpec {
        TargetSpec(Target::Label(self.clone()))
    }
}

/// Instruction stream builder.
///
/// ```
/// use helium_machine::asm::Asm;
/// use helium_machine::isa::{regs, Cond, Operand};
///
/// let mut asm = Asm::new(0x1000);
/// asm.mov(regs::eax(), Operand::Imm(0));
/// asm.label("top");
/// asm.inc(regs::eax());
/// asm.cmp(regs::eax(), Operand::Imm(4));
/// asm.jcc(Cond::B, "top");
/// asm.ret();
/// let code = asm.finish();
/// assert_eq!(code.len(), 5);
/// ```
#[derive(Debug)]
pub struct Asm {
    base: u32,
    instrs: Vec<Instr>,
    // Index in `instrs` of instructions whose target needs patching.
    fixups: Vec<(usize, Target)>,
    labels: HashMap<String, u32>,
}

impl Asm {
    /// Start assembling at `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            instrs: Vec::new(),
            fixups: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Code address of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.base + (self.instrs.len() as u32) * INSTR_SIZE
    }

    /// Define a label at the current position.
    ///
    /// # Panics
    /// Panics if the label is already defined.
    pub fn label(&mut self, name: &str) -> u32 {
        let addr = self.here();
        let prev = self.labels.insert(name.to_string(), addr);
        assert!(prev.is_none(), "label {name} defined twice");
        addr
    }

    /// Emit an arbitrary instruction and return its address.
    pub fn emit(&mut self, instr: Instr) -> u32 {
        let addr = self.here();
        self.instrs.push(instr);
        addr
    }

    fn emit_with_target(&mut self, instr: Instr, spec: TargetSpec) -> u32 {
        let addr = self.here();
        let idx = self.instrs.len();
        self.instrs.push(instr);
        self.fixups.push((idx, spec.0));
        addr
    }

    // --- data movement -----------------------------------------------------

    /// `mov dst, src`.
    pub fn mov(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.emit(Instr::Mov {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `movzx dst, src`.
    pub fn movzx(&mut self, dst: RegRef, src: impl Into<Operand>) -> u32 {
        self.emit(Instr::Movzx {
            dst,
            src: src.into(),
        })
    }

    /// `movsx dst, src`.
    pub fn movsx(&mut self, dst: RegRef, src: impl Into<Operand>) -> u32 {
        self.emit(Instr::Movsx {
            dst,
            src: src.into(),
        })
    }

    /// `lea dst, [addr]`.
    pub fn lea(&mut self, dst: RegRef, addr: MemRef) -> u32 {
        self.emit(Instr::Lea { dst, addr })
    }

    /// `push src`.
    pub fn push(&mut self, src: impl Into<Operand>) -> u32 {
        self.emit(Instr::Push { src: src.into() })
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: impl Into<Operand>) -> u32 {
        self.emit(Instr::Pop { dst: dst.into() })
    }

    // --- integer ALU --------------------------------------------------------

    /// Generic two-operand ALU instruction.
    pub fn alu(&mut self, op: AluOp, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.emit(Instr::Alu {
            op,
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `add dst, src`.
    pub fn add(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Add, dst, src)
    }

    /// `adc dst, src`.
    pub fn adc(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Adc, dst, src)
    }

    /// `sub dst, src`.
    pub fn sub(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Sub, dst, src)
    }

    /// `sbb dst, src`.
    pub fn sbb(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Sbb, dst, src)
    }

    /// `and dst, src`.
    pub fn and(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::And, dst, src)
    }

    /// `or dst, src`.
    pub fn or(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Or, dst, src)
    }

    /// `xor dst, src`.
    pub fn xor(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Xor, dst, src)
    }

    /// `imul dst, src` (two-operand form).
    pub fn imul(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> u32 {
        self.alu(AluOp::Imul, dst, src)
    }

    /// `shl dst, amount`.
    pub fn shl(&mut self, dst: impl Into<Operand>, amount: impl Into<Operand>) -> u32 {
        self.emit(Instr::Shift {
            op: ShiftOp::Shl,
            dst: dst.into(),
            amount: amount.into(),
        })
    }

    /// `shr dst, amount`.
    pub fn shr(&mut self, dst: impl Into<Operand>, amount: impl Into<Operand>) -> u32 {
        self.emit(Instr::Shift {
            op: ShiftOp::Shr,
            dst: dst.into(),
            amount: amount.into(),
        })
    }

    /// `sar dst, amount`.
    pub fn sar(&mut self, dst: impl Into<Operand>, amount: impl Into<Operand>) -> u32 {
        self.emit(Instr::Shift {
            op: ShiftOp::Sar,
            dst: dst.into(),
            amount: amount.into(),
        })
    }

    /// `inc dst`.
    pub fn inc(&mut self, dst: impl Into<Operand>) -> u32 {
        self.emit(Instr::Inc { dst: dst.into() })
    }

    /// `dec dst`.
    pub fn dec(&mut self, dst: impl Into<Operand>) -> u32 {
        self.emit(Instr::Dec { dst: dst.into() })
    }

    /// `neg dst`.
    pub fn neg(&mut self, dst: impl Into<Operand>) -> u32 {
        self.emit(Instr::Neg { dst: dst.into() })
    }

    /// `not dst`.
    pub fn not(&mut self, dst: impl Into<Operand>) -> u32 {
        self.emit(Instr::Not { dst: dst.into() })
    }

    /// `cmp a, b`.
    pub fn cmp(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> u32 {
        self.emit(Instr::Cmp {
            a: a.into(),
            b: b.into(),
        })
    }

    /// `test a, b`.
    pub fn test(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> u32 {
        self.emit(Instr::Test {
            a: a.into(),
            b: b.into(),
        })
    }

    // --- control flow -------------------------------------------------------

    /// `jmp target`.
    pub fn jmp(&mut self, target: impl IntoTarget) -> u32 {
        self.emit_with_target(Instr::Jmp { target: 0 }, target.into_target())
    }

    /// `jcc target` (conditional jump).
    pub fn jcc(&mut self, cond: Cond, target: impl IntoTarget) -> u32 {
        self.emit_with_target(Instr::Jcc { cond, target: 0 }, target.into_target())
    }

    /// `call target`.
    pub fn call(&mut self, target: impl IntoTarget) -> u32 {
        self.emit_with_target(Instr::Call { target: 0 }, target.into_target())
    }

    /// Call to a known external library function.
    pub fn call_extern(&mut self, func: ExternFn) -> u32 {
        self.emit(Instr::CallExtern { func })
    }

    /// `ret`.
    pub fn ret(&mut self) -> u32 {
        self.emit(Instr::Ret)
    }

    /// `nop`.
    pub fn nop(&mut self) -> u32 {
        self.emit(Instr::Nop)
    }

    /// `hlt` (terminate the whole program).
    pub fn halt(&mut self) -> u32 {
        self.emit(Instr::Halt)
    }

    // --- x87 floating point ---------------------------------------------------

    /// `fld src` (push onto the FP stack).
    pub fn fld(&mut self, src: FpSrc) -> u32 {
        self.emit(Instr::Fld { src })
    }

    /// `fst dst` (store st(0) without popping).
    pub fn fst(&mut self, dst: FpSrc) -> u32 {
        self.emit(Instr::Fst { dst, pop: false })
    }

    /// `fstp dst` (store st(0) and pop).
    pub fn fstp(&mut self, dst: FpSrc) -> u32 {
        self.emit(Instr::Fst { dst, pop: true })
    }

    /// `fistp dst` (store st(0) rounded to a 32-bit integer and pop).
    pub fn fistp(&mut self, dst: MemRef) -> u32 {
        self.emit(Instr::Fistp { dst })
    }

    /// `fadd src`, `fsub src`, `fmul src`, `fdiv src` with st(0) as destination.
    pub fn farith(&mut self, op: FpOp, src: FpSrc) -> u32 {
        self.emit(Instr::Farith {
            op,
            src,
            pop: false,
            reverse_dst: false,
        })
    }

    /// `faddp st(i), st(0)` family: `st(i) = st(i) op st(0)`, then pop.
    pub fn farith_to(&mut self, op: FpOp, slot: u8) -> u32 {
        self.emit(Instr::Farith {
            op,
            src: FpSrc::St(slot),
            pop: true,
            reverse_dst: true,
        })
    }

    /// `fxch st(i)`.
    pub fn fxch(&mut self, slot: u8) -> u32 {
        self.emit(Instr::Fxch { slot })
    }

    // --- finalization ---------------------------------------------------------

    /// Resolve label fixups and return the address → instruction map.
    ///
    /// # Panics
    /// Panics if any referenced label was never defined.
    pub fn finish(mut self) -> BTreeMap<u32, Instr> {
        for (idx, target) in std::mem::take(&mut self.fixups) {
            let addr = match target {
                Target::Addr(a) => a,
                Target::Label(name) => *self
                    .labels
                    .get(&name)
                    .unwrap_or_else(|| panic!("undefined label {name}")),
            };
            match &mut self.instrs[idx] {
                Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                    *target = addr;
                }
                other => panic!("fixup on non-control-flow instruction {other}"),
            }
        }
        self.instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| (self.base + (i as u32) * INSTR_SIZE, instr))
            .collect()
    }

    /// Address of a defined label.
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new(0x4000);
        asm.jmp("fwd");
        asm.label("back");
        asm.inc(regs::eax());
        asm.label("fwd");
        asm.cmp(regs::eax(), Operand::Imm(3));
        asm.jcc(Cond::B, "back");
        asm.ret();
        let code = asm.finish();
        match &code[&0x4000] {
            Instr::Jmp { target } => assert_eq!(*target, 0x4008),
            other => panic!("unexpected {other}"),
        }
        match &code[&0x400c] {
            Instr::Jcc { target, .. } => assert_eq!(*target, 0x4004),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut asm = Asm::new(0);
        asm.jmp("nowhere");
        asm.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut asm = Asm::new(0);
        asm.label("x");
        asm.nop();
        asm.label("x");
    }

    #[test]
    fn addresses_are_consecutive() {
        let mut asm = Asm::new(0x100);
        let a0 = asm.nop();
        let a1 = asm.nop();
        let a2 = asm.ret();
        assert_eq!((a0, a1, a2), (0x100, 0x104, 0x108));
        assert_eq!(asm.here(), 0x10c);
    }

    #[test]
    fn call_to_absolute_address() {
        let mut asm = Asm::new(0);
        asm.call(0x9000u32);
        asm.halt();
        let code = asm.finish();
        assert_eq!(code[&0], Instr::Call { target: 0x9000 });
    }
}
