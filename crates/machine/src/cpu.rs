//! The interpreter: executes a [`Program`] and reports, for every dynamic
//! instruction, exactly the information a dynamic binary instrumentation
//! framework would surface (resolved memory addresses and address expressions,
//! access widths, branch directions, call/return events and the floating-point
//! stack top).

use crate::isa::{
    AluOp, Cond, ExternFn, FpOp, FpSrc, Instr, MemRef, Operand, Reg, RegRef, ShiftOp, Width,
};
use crate::mem::Memory;
use crate::program::{Program, INSTR_SIZE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// CPU status flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

/// The x87-style floating point register stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpStack {
    slots: [f64; 8],
    /// Physical index of `st(0)`.
    top: u8,
    /// Number of live entries (0..=8).
    depth: u8,
}

impl Default for FpStack {
    fn default() -> Self {
        FpStack {
            slots: [0.0; 8],
            top: 0,
            depth: 0,
        }
    }
}

impl FpStack {
    /// Physical slot index of `st(i)`.
    pub fn phys(&self, i: u8) -> u8 {
        (self.top + i) % 8
    }

    /// Current physical index of the top of the stack.
    pub fn top(&self) -> u8 {
        self.top
    }

    /// Current stack depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Push a value onto the stack.
    pub fn push(&mut self, v: f64) {
        self.top = (self.top + 7) % 8;
        self.slots[self.top as usize] = v;
        self.depth = (self.depth + 1).min(8);
    }

    /// Pop the top of the stack.
    pub fn pop(&mut self) -> f64 {
        let v = self.slots[self.top as usize];
        self.top = (self.top + 1) % 8;
        self.depth = self.depth.saturating_sub(1);
        v
    }

    /// Read `st(i)`.
    pub fn get(&self, i: u8) -> f64 {
        self.slots[self.phys(i) as usize]
    }

    /// Write `st(i)`.
    pub fn set(&mut self, i: u8, v: f64) {
        let p = self.phys(i) as usize;
        self.slots[p] = v;
    }
}

/// How a memory address was computed (`base + scale*index + disp`), with the
/// concrete register values observed at execution time. This mirrors the
/// "address expression" the paper records for indirect memory operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrExpr {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Observed value of the base register.
    pub base_value: u32,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Observed value of the index register.
    pub index_value: u32,
    /// Scale applied to the index register.
    pub scale: u8,
    /// Constant displacement.
    pub disp: i32,
}

/// One resolved memory access performed by a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Absolute address accessed.
    pub addr: u32,
    /// Access width.
    pub width: Width,
    /// `true` for writes, `false` for reads.
    pub is_write: bool,
    /// Raw little-endian bits transferred (zero-extended).
    pub value: u64,
    /// The address expression used to form `addr`.
    pub expr: AddrExpr,
}

/// The record produced for every executed (dynamic) instruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRecord {
    /// Address of the executed instruction.
    pub addr: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Memory accesses (in program order: reads before writes).
    pub mem: Vec<MemAccess>,
    /// For conditional jumps: whether the branch was taken.
    pub branch_taken: Option<bool>,
    /// For calls: the dynamic call target.
    pub call_target: Option<u32>,
    /// `true` if the instruction was a `ret`.
    pub is_ret: bool,
    /// For known external library calls: the function.
    pub extern_call: Option<ExternFn>,
    /// Physical index of the FP stack top *before* executing the instruction;
    /// used by trace preprocessing to rename `st(i)` references.
    pub fpu_top_before: u8,
    /// Address of the next instruction that will execute.
    pub next_pc: u32,
}

/// Errors raised by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CpuError {
    /// The program counter does not map to an instruction.
    InvalidPc(u32),
    /// An instruction was malformed (e.g. `mov` between mismatched widths).
    Malformed { addr: u32, reason: String },
    /// The step budget given to [`Cpu::run`] was exhausted.
    StepLimit(u64),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::InvalidPc(pc) => write!(f, "invalid program counter {pc:#x}"),
            CpuError::Malformed { addr, reason } => {
                write!(f, "malformed instruction at {addr:#x}: {reason}")
            }
            CpuError::StepLimit(n) => write!(f, "step limit of {n} instructions exhausted"),
        }
    }
}

impl std::error::Error for CpuError {}

/// The virtual CPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cpu {
    /// General purpose registers, indexed by [`Reg::index`].
    pub regs: [u32; 8],
    /// Status flags.
    pub flags: Flags,
    /// x87-style floating point stack.
    pub fpu: FpStack,
    /// Data memory.
    pub mem: Memory,
    /// Program counter.
    pub pc: u32,
    /// `false` once a `hlt` has executed.
    pub running: bool,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

/// Default stack top used by [`Cpu::new`].
pub const DEFAULT_STACK_TOP: u32 = 0x00F0_0000;

impl Cpu {
    /// Create a CPU with zeroed registers and an empty memory; `esp` points at
    /// [`DEFAULT_STACK_TOP`].
    pub fn new() -> Cpu {
        let mut cpu = Cpu {
            regs: [0; 8],
            flags: Flags::default(),
            fpu: FpStack::default(),
            mem: Memory::new(),
            pc: 0,
            running: true,
        };
        cpu.set_reg(Reg::Esp, DEFAULT_STACK_TOP);
        cpu
    }

    /// Read a full 32-bit register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Write a full 32-bit register.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Read a (possibly partial) register view, zero-extended.
    pub fn reg_view(&self, r: RegRef) -> u64 {
        let full = self.reg(r.reg) as u64;
        (full >> (8 * r.lo as u64)) & r.width.mask()
    }

    /// Write a (possibly partial) register view.
    pub fn set_reg_view(&mut self, r: RegRef, v: u64) {
        let mask = r.width.mask() << (8 * r.lo as u64);
        let old = self.reg(r.reg) as u64;
        let new = (old & !mask) | ((v << (8 * r.lo as u64)) & mask);
        self.set_reg(r.reg, new as u32);
    }

    /// Resolve a memory reference to an absolute address and address expression.
    pub fn resolve(&self, m: &MemRef) -> (u32, AddrExpr) {
        let base_value = m.base.map(|b| self.reg(b)).unwrap_or(0);
        let index_value = m.index.map(|i| self.reg(i)).unwrap_or(0);
        let addr = base_value
            .wrapping_add(index_value.wrapping_mul(m.scale as u32))
            .wrapping_add(m.disp as u32);
        (
            addr,
            AddrExpr {
                base: m.base,
                base_value,
                index: m.index,
                index_value,
                scale: m.scale,
                disp: m.disp,
            },
        )
    }

    fn read_mem_logged(&self, m: &MemRef, log: &mut Vec<MemAccess>) -> u64 {
        let (addr, expr) = self.resolve(m);
        let v = self.mem.read_uint(addr, m.width.bytes());
        log.push(MemAccess {
            addr,
            width: m.width,
            is_write: false,
            value: v,
            expr,
        });
        v
    }

    fn write_mem_logged(&mut self, m: &MemRef, value: u64, log: &mut Vec<MemAccess>) {
        let (addr, expr) = self.resolve(m);
        self.mem
            .write_uint(addr, value & m.width.mask(), m.width.bytes());
        log.push(MemAccess {
            addr,
            width: m.width,
            is_write: true,
            value: value & m.width.mask(),
            expr,
        });
    }

    fn read_operand(&self, op: &Operand, log: &mut Vec<MemAccess>) -> u64 {
        match op {
            Operand::Reg(r) => self.reg_view(*r),
            Operand::Mem(m) => self.read_mem_logged(m, log),
            Operand::Imm(i) => *i as u64,
        }
    }

    fn write_operand(&mut self, op: &Operand, value: u64, log: &mut Vec<MemAccess>) {
        match op {
            Operand::Reg(r) => self.set_reg_view(*r, value),
            Operand::Mem(m) => self.write_mem_logged(m, value, log),
            Operand::Imm(_) => panic!("cannot write to an immediate operand"),
        }
    }

    fn set_logic_flags(&mut self, result: u64, width: Width) {
        let r = result & width.mask();
        self.flags.zf = r == 0;
        self.flags.sf = (r >> (width.bits() - 1)) & 1 == 1;
        self.flags.cf = false;
        self.flags.of = false;
    }

    fn set_add_flags(&mut self, a: u64, b: u64, carry_in: u64, width: Width) -> u64 {
        let mask = width.mask();
        let full = (a & mask) + (b & mask) + carry_in;
        let r = full & mask;
        let sign = width.bits() - 1;
        self.flags.zf = r == 0;
        self.flags.sf = (r >> sign) & 1 == 1;
        self.flags.cf = full > mask;
        let sa = (a >> sign) & 1;
        let sb = (b >> sign) & 1;
        let sr = (r >> sign) & 1;
        self.flags.of = sa == sb && sa != sr;
        r
    }

    fn set_sub_flags(&mut self, a: u64, b: u64, borrow_in: u64, width: Width) -> u64 {
        let mask = width.mask();
        let a = a & mask;
        let b = b & mask;
        let r = a.wrapping_sub(b).wrapping_sub(borrow_in) & mask;
        let sign = width.bits() - 1;
        self.flags.zf = r == 0;
        self.flags.sf = (r >> sign) & 1 == 1;
        self.flags.cf = a < b + borrow_in;
        let sa = (a >> sign) & 1;
        let sb = (b >> sign) & 1;
        let sr = (r >> sign) & 1;
        self.flags.of = sa != sb && sb == sr;
        r
    }

    fn cond_holds(&self, c: Cond) -> bool {
        let f = self.flags;
        match c {
            Cond::Z => f.zf,
            Cond::Nz => !f.zf,
            Cond::B => f.cf,
            Cond::Nb => !f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    fn read_fp_src(&self, src: &FpSrc, log: &mut Vec<MemAccess>) -> f64 {
        match src {
            FpSrc::St(i) => self.fpu.get(*i),
            FpSrc::MemF32(m) => {
                let bits = self.read_mem_logged(m, log) as u32;
                f32::from_bits(bits) as f64
            }
            FpSrc::MemF64(m) => {
                let bits = self.read_mem_logged(m, log);
                f64::from_bits(bits)
            }
            FpSrc::MemI32(m) => {
                let bits = self.read_mem_logged(m, log) as u32;
                bits as i32 as f64
            }
        }
    }

    /// Execute one instruction and return its dynamic record.
    ///
    /// # Errors
    /// Returns [`CpuError::InvalidPc`] if the program counter does not map to
    /// an instruction, and [`CpuError::Malformed`] for ill-formed instructions.
    pub fn step(&mut self, program: &Program) -> Result<StepRecord, CpuError> {
        let addr = self.pc;
        let instr = program
            .instr_at(addr)
            .ok_or(CpuError::InvalidPc(addr))?
            .clone();
        let mut log = Vec::new();
        let mut branch_taken = None;
        let mut call_target = None;
        let mut is_ret = false;
        let mut extern_call = None;
        let fpu_top_before = self.fpu.top();
        let mut next_pc = addr + INSTR_SIZE;

        match &instr {
            Instr::Mov { dst, src } => {
                let v = self.read_operand(src, &mut log);
                self.write_operand(dst, v & dst.width().mask(), &mut log);
            }
            Instr::Movzx { dst, src } => {
                let v = self.read_operand(src, &mut log) & src.width().mask();
                self.set_reg_view(*dst, v);
            }
            Instr::Movsx { dst, src } => {
                let v = self.read_operand(src, &mut log) & src.width().mask();
                let bits = src.width().bits();
                let sign_extended = (((v as i64) << (64 - bits)) >> (64 - bits)) as u64;
                self.set_reg_view(*dst, sign_extended & dst.width.mask());
            }
            Instr::Lea { dst, addr: m } => {
                let (a, _) = self.resolve(m);
                self.set_reg_view(*dst, a as u64);
            }
            Instr::Alu { op, dst, src } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log);
                let b = self.read_operand(src, &mut log);
                let result = match op {
                    AluOp::Add => self.set_add_flags(a, b, 0, width),
                    AluOp::Adc => {
                        let c = self.flags.cf as u64;
                        self.set_add_flags(a, b, c, width)
                    }
                    AluOp::Sub => self.set_sub_flags(a, b, 0, width),
                    AluOp::Sbb => {
                        let c = self.flags.cf as u64;
                        self.set_sub_flags(a, b, c, width)
                    }
                    AluOp::And => {
                        let r = a & b;
                        self.set_logic_flags(r, width);
                        r
                    }
                    AluOp::Or => {
                        let r = a | b;
                        self.set_logic_flags(r, width);
                        r
                    }
                    AluOp::Xor => {
                        let r = a ^ b;
                        self.set_logic_flags(r, width);
                        r
                    }
                    AluOp::Imul => {
                        let bits = width.bits();
                        let sa = ((a as i64) << (64 - bits)) >> (64 - bits);
                        let sb = ((b as i64) << (64 - bits)) >> (64 - bits);
                        let r = sa.wrapping_mul(sb) as u64 & width.mask();
                        self.flags.cf = false;
                        self.flags.of = false;
                        self.flags.zf = r == 0;
                        self.flags.sf = (r >> (bits - 1)) & 1 == 1;
                        r
                    }
                };
                self.write_operand(dst, result & width.mask(), &mut log);
            }
            Instr::Shift { op, dst, amount } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log) & width.mask();
                let amt = (self.read_operand(amount, &mut log) & 0x1f) as u32;
                let bits = width.bits();
                let r = if amt == 0 {
                    a
                } else {
                    match op {
                        ShiftOp::Shl => {
                            self.flags.cf = amt <= bits && (a >> (bits - amt)) & 1 == 1;
                            (a << amt) & width.mask()
                        }
                        ShiftOp::Shr => {
                            self.flags.cf = (a >> (amt - 1)) & 1 == 1;
                            a >> amt
                        }
                        ShiftOp::Sar => {
                            self.flags.cf = (a >> (amt - 1)) & 1 == 1;
                            let sa = ((a as i64) << (64 - bits)) >> (64 - bits);
                            ((sa >> amt) as u64) & width.mask()
                        }
                    }
                };
                self.flags.zf = r == 0;
                self.flags.sf = (r >> (bits - 1)) & 1 == 1;
                self.write_operand(dst, r, &mut log);
            }
            Instr::Inc { dst } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log);
                let cf = self.flags.cf;
                let r = self.set_add_flags(a, 1, 0, width);
                self.flags.cf = cf; // inc does not modify CF
                self.write_operand(dst, r, &mut log);
            }
            Instr::Dec { dst } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log);
                let cf = self.flags.cf;
                let r = self.set_sub_flags(a, 1, 0, width);
                self.flags.cf = cf; // dec does not modify CF
                self.write_operand(dst, r, &mut log);
            }
            Instr::Neg { dst } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log);
                let r = self.set_sub_flags(0, a, 0, width);
                self.write_operand(dst, r, &mut log);
            }
            Instr::Not { dst } => {
                let width = dst.width();
                let a = self.read_operand(dst, &mut log);
                self.write_operand(dst, !a & width.mask(), &mut log);
            }
            Instr::Cmp { a, b } => {
                let width = a.width();
                let av = self.read_operand(a, &mut log);
                let bv = self.read_operand(b, &mut log);
                self.set_sub_flags(av, bv, 0, width);
            }
            Instr::Test { a, b } => {
                let width = a.width();
                let av = self.read_operand(a, &mut log);
                let bv = self.read_operand(b, &mut log);
                self.set_logic_flags(av & bv, width);
            }
            Instr::Jmp { target } => {
                next_pc = *target;
            }
            Instr::Jcc { cond, target } => {
                let taken = self.cond_holds(*cond);
                branch_taken = Some(taken);
                if taken {
                    next_pc = *target;
                }
            }
            Instr::Call { target } => {
                let ret_addr = addr + INSTR_SIZE;
                let esp = self.reg(Reg::Esp).wrapping_sub(4);
                self.set_reg(Reg::Esp, esp);
                let m = MemRef::base_only(Reg::Esp, Width::B4);
                self.write_mem_logged(&m, ret_addr as u64, &mut log);
                call_target = Some(*target);
                next_pc = *target;
            }
            Instr::CallExtern { func } => {
                let mut args = Vec::with_capacity(func.arity());
                for _ in 0..func.arity() {
                    args.push(self.fpu.pop());
                }
                let result = func.eval(&args);
                self.fpu.push(result);
                extern_call = Some(*func);
            }
            Instr::Ret => {
                let m = MemRef::base_only(Reg::Esp, Width::B4);
                let ret = self.read_mem_logged(&m, &mut log) as u32;
                let esp = self.reg(Reg::Esp).wrapping_add(4);
                self.set_reg(Reg::Esp, esp);
                is_ret = true;
                next_pc = ret;
            }
            Instr::Push { src } => {
                let v = self.read_operand(src, &mut log);
                let esp = self.reg(Reg::Esp).wrapping_sub(4);
                self.set_reg(Reg::Esp, esp);
                let m = MemRef::base_only(Reg::Esp, Width::B4);
                self.write_mem_logged(&m, v & Width::B4.mask(), &mut log);
            }
            Instr::Pop { dst } => {
                let m = MemRef::base_only(Reg::Esp, Width::B4);
                let v = self.read_mem_logged(&m, &mut log);
                let esp = self.reg(Reg::Esp).wrapping_add(4);
                self.set_reg(Reg::Esp, esp);
                self.write_operand(dst, v, &mut log);
            }
            Instr::Fld { src } => {
                let v = self.read_fp_src(src, &mut log);
                self.fpu.push(v);
            }
            Instr::Fst { dst, pop } => {
                let v = self.fpu.get(0);
                match dst {
                    FpSrc::St(i) => self.fpu.set(*i, v),
                    FpSrc::MemF32(m) => {
                        self.write_mem_logged(m, (v as f32).to_bits() as u64, &mut log)
                    }
                    FpSrc::MemF64(m) => self.write_mem_logged(m, v.to_bits(), &mut log),
                    FpSrc::MemI32(m) => {
                        self.write_mem_logged(m, (v as i32) as u32 as u64, &mut log)
                    }
                }
                if *pop {
                    self.fpu.pop();
                }
            }
            Instr::Fistp { dst } => {
                let v = self.fpu.pop();
                // x87 default rounding: round to nearest, ties to even.
                let rounded = round_ties_even(v) as i64 as u32;
                self.write_mem_logged(dst, rounded as u64, &mut log);
            }
            Instr::Farith {
                op,
                src,
                pop,
                reverse_dst,
            } => {
                let rhs = self.read_fp_src(src, &mut log);
                if *reverse_dst {
                    let slot = match src {
                        FpSrc::St(i) => *i,
                        _ => {
                            return Err(CpuError::Malformed {
                                addr,
                                reason: "reverse FP arithmetic requires an st(i) operand".into(),
                            })
                        }
                    };
                    let lhs = self.fpu.get(slot);
                    let st0 = self.fpu.get(0);
                    let r = apply_fp(*op, lhs, st0);
                    self.fpu.set(slot, r);
                } else {
                    let lhs = self.fpu.get(0);
                    let r = apply_fp(*op, lhs, rhs);
                    self.fpu.set(0, r);
                }
                if *pop {
                    self.fpu.pop();
                }
            }
            Instr::Fxch { slot } => {
                let a = self.fpu.get(0);
                let b = self.fpu.get(*slot);
                self.fpu.set(0, b);
                self.fpu.set(*slot, a);
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.running = false;
                next_pc = addr;
            }
        }

        self.pc = next_pc;
        Ok(StepRecord {
            addr,
            instr,
            mem: log,
            branch_taken,
            call_target,
            is_ret,
            extern_call,
            fpu_top_before,
            next_pc,
        })
    }

    /// Run until `hlt`, an error, or `max_steps` instructions, invoking
    /// `hook` after every step.
    ///
    /// # Errors
    /// Propagates [`CpuError`]s from [`Cpu::step`] and returns
    /// [`CpuError::StepLimit`] if the budget is exhausted.
    pub fn run<F>(
        &mut self,
        program: &Program,
        max_steps: u64,
        mut hook: F,
    ) -> Result<u64, CpuError>
    where
        F: FnMut(&Cpu, &StepRecord),
    {
        let mut executed = 0;
        while self.running {
            if executed >= max_steps {
                return Err(CpuError::StepLimit(max_steps));
            }
            let record = self.step(program)?;
            executed += 1;
            hook(self, &record);
        }
        Ok(executed)
    }
}

fn apply_fp(op: FpOp, a: f64, b: f64) -> f64 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
    }
}

/// Round to nearest integer with ties going to the even value, matching the
/// default x87 rounding mode used by `fistp`.
pub fn round_ties_even(v: f64) -> f64 {
    let r = v.round();
    if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - (v.signum())
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::regs;

    fn run_to_halt(asm: Asm) -> Cpu {
        let mut p = Program::new();
        let code = asm.finish();
        let entry = *code.keys().next().expect("code");
        p.add_module("test", code);
        let mut cpu = Cpu::new();
        cpu.pc = entry;
        cpu.run(&p, 1_000_000, |_, _| {}).expect("execution");
        cpu
    }

    #[test]
    fn arithmetic_loop_sums() {
        // Sum 1..=10 into eax.
        let mut asm = Asm::new(0x1000);
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.mov(regs::ecx(), Operand::Imm(1));
        asm.label("top");
        asm.add(regs::eax(), regs::ecx());
        asm.inc(regs::ecx());
        asm.cmp(regs::ecx(), Operand::Imm(11));
        asm.jcc(Cond::B, "top");
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 55);
    }

    #[test]
    fn partial_register_views() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::Eax, 0x1122_3344);
        assert_eq!(cpu.reg_view(regs::al()), 0x44);
        assert_eq!(cpu.reg_view(regs::ah()), 0x33);
        assert_eq!(cpu.reg_view(regs::ax()), 0x3344);
        cpu.set_reg_view(regs::ah(), 0xff);
        assert_eq!(cpu.reg(Reg::Eax), 0x1122_ff44);
        cpu.set_reg_view(regs::ax(), 0xabcd);
        assert_eq!(cpu.reg(Reg::Eax), 0x1122_abcd);
    }

    #[test]
    fn memory_store_load_and_addressing() {
        let mut asm = Asm::new(0x2000);
        // ebx = 0x8000; [ebx+4] = 0x1234; eax = [ebx + 1*4]
        asm.mov(regs::ebx(), Operand::Imm(0x8000));
        asm.mov(
            Operand::Mem(MemRef::base_disp(Reg::Ebx, 4, Width::B4)),
            Operand::Imm(0x1234),
        );
        asm.mov(regs::ecx(), Operand::Imm(1));
        asm.mov(
            regs::eax(),
            Operand::Mem(MemRef::sib(Reg::Ebx, Reg::Ecx, 4, 0, Width::B4)),
        );
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 0x1234);
    }

    #[test]
    fn movzx_movsx_semantics() {
        let mut asm = Asm::new(0x3000);
        asm.mov(regs::ebx(), Operand::Imm(0x9000));
        asm.mov(
            Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)),
            Operand::Imm(0xf0),
        );
        asm.movzx(
            regs::eax(),
            Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)),
        );
        asm.movsx(
            regs::ecx(),
            Operand::Mem(MemRef::base_only(Reg::Ebx, Width::B1)),
        );
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 0xf0);
        assert_eq!(cpu.reg(Reg::Ecx), 0xffff_fff0);
    }

    #[test]
    fn call_ret_uses_stack() {
        let mut asm = Asm::new(0x4000);
        asm.call("callee");
        asm.halt();
        asm.label("callee");
        asm.mov(regs::eax(), Operand::Imm(99));
        asm.ret();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 99);
        assert_eq!(cpu.reg(Reg::Esp), DEFAULT_STACK_TOP);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut asm = Asm::new(0x5000);
        asm.mov(regs::eax(), Operand::Imm(0xdead));
        asm.push(regs::eax());
        asm.mov(regs::eax(), Operand::Imm(0));
        asm.pop(regs::ebx());
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Ebx), 0xdead);
    }

    #[test]
    fn shift_and_flag_conditions() {
        let mut asm = Asm::new(0x6000);
        asm.mov(regs::eax(), Operand::Imm(0x11));
        asm.shr(regs::eax(), Operand::Imm(3));
        asm.mov(regs::ebx(), Operand::Imm(5));
        asm.shl(regs::ebx(), Operand::Imm(2));
        asm.mov(regs::ecx(), Operand::Imm(-8));
        asm.sar(regs::ecx(), Operand::Imm(1));
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 0x2);
        assert_eq!(cpu.reg(Reg::Ebx), 20);
        assert_eq!(cpu.reg(Reg::Ecx) as i32, -4);
    }

    #[test]
    fn signed_and_unsigned_branches() {
        // Signed comparison: -1 < 1 signed, but 0xffffffff > 1 unsigned.
        let mut asm = Asm::new(0x7000);
        asm.mov(regs::eax(), Operand::Imm(-1));
        asm.cmp(regs::eax(), Operand::Imm(1));
        asm.mov(regs::ebx(), Operand::Imm(0));
        asm.mov(regs::ecx(), Operand::Imm(0));
        asm.jcc(Cond::L, "signed_less");
        asm.jmp("after1");
        asm.label("signed_less");
        asm.mov(regs::ebx(), Operand::Imm(1));
        asm.label("after1");
        asm.cmp(regs::eax(), Operand::Imm(1));
        asm.jcc(Cond::A, "unsigned_above");
        asm.jmp("end");
        asm.label("unsigned_above");
        asm.mov(regs::ecx(), Operand::Imm(1));
        asm.label("end");
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Ebx), 1, "signed less-than should hold");
        assert_eq!(cpu.reg(Reg::Ecx), 1, "unsigned above should hold");
    }

    #[test]
    fn fp_stack_operations() {
        let mut cpu = Cpu::new();
        cpu.mem.write_f64(0x9000, 2.5);
        cpu.mem.write_f32(0x9008, 4.0);
        let mut asm = Asm::new(0x8000);
        asm.fld(FpSrc::MemF64(MemRef::absolute(0x9000, Width::B8)));
        asm.fld(FpSrc::MemF32(MemRef::absolute(0x9008, Width::B4)));
        asm.farith(FpOp::Mul, FpSrc::St(1)); // st0 = 4.0 * 2.5 = 10.0
        asm.call_extern(ExternFn::Sqrt); // st0 = sqrt(10)
        asm.fstp(FpSrc::MemF64(MemRef::absolute(0x9010, Width::B8)));
        asm.halt();
        let mut p = Program::new();
        p.add_module("fp", asm.finish());
        cpu.pc = 0x8000;
        cpu.run(&p, 1000, |_, _| {}).expect("run");
        assert!((cpu.mem.read_f64(0x9010) - 10.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fistp_rounds_ties_to_even() {
        assert_eq!(round_ties_even(2.5), 2.0);
        assert_eq!(round_ties_even(3.5), 4.0);
        assert_eq!(round_ties_even(-2.5), -2.0);
        assert_eq!(round_ties_even(2.3), 2.0);
        assert_eq!(round_ties_even(2.7), 3.0);
    }

    #[test]
    fn step_record_reports_memory_accesses() {
        let mut asm = Asm::new(0xa000);
        asm.mov(regs::ebx(), Operand::Imm(0x9100));
        asm.mov(
            Operand::Mem(MemRef::base_disp(Reg::Ebx, 8, Width::B4)),
            Operand::Imm(7),
        );
        asm.halt();
        let mut p = Program::new();
        p.add_module("t", asm.finish());
        let mut cpu = Cpu::new();
        cpu.pc = 0xa000;
        let mut writes = Vec::new();
        cpu.run(&p, 100, |_, rec| {
            for m in &rec.mem {
                if m.is_write {
                    writes.push(*m);
                }
            }
        })
        .expect("run");
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].addr, 0x9108);
        assert_eq!(writes[0].value, 7);
        assert_eq!(writes[0].expr.base, Some(Reg::Ebx));
        assert_eq!(writes[0].expr.disp, 8);
    }

    #[test]
    fn invalid_pc_is_an_error() {
        let p = Program::new();
        let mut cpu = Cpu::new();
        cpu.pc = 0x1234;
        assert_eq!(cpu.step(&p).unwrap_err(), CpuError::InvalidPc(0x1234));
    }

    #[test]
    fn step_limit_enforced() {
        let mut asm = Asm::new(0);
        asm.label("spin");
        asm.jmp("spin");
        let mut p = Program::new();
        p.add_module("spin", asm.finish());
        let mut cpu = Cpu::new();
        let err = cpu.run(&p, 10, |_, _| {}).unwrap_err();
        assert_eq!(err, CpuError::StepLimit(10));
    }

    #[test]
    fn adc_sbb_carry_chain() {
        let mut asm = Asm::new(0xb000);
        // 64-bit add: (0xffffffff, 1) + (1, 0) = (0, 2)
        asm.mov(regs::eax(), Operand::Imm(0xffff_ffff));
        asm.mov(regs::edx(), Operand::Imm(1));
        asm.add(regs::eax(), Operand::Imm(1));
        asm.adc(regs::edx(), Operand::Imm(0));
        asm.halt();
        let cpu = run_to_halt(asm);
        assert_eq!(cpu.reg(Reg::Eax), 0);
        assert_eq!(cpu.reg(Reg::Edx), 2);
    }
}
