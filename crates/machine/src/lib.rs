//! # helium-machine
//!
//! An x86-like virtual machine used as the binary substrate for the Helium
//! reproduction (PLDI 2015, "Lifting High-Performance Stencil Kernels from
//! Stripped x86 Binaries to Halide DSL Code").
//!
//! The crate provides:
//!
//! * an [`isa`] with 32-bit general-purpose registers (including 8/16-bit
//!   partial views), `base + scale*index + disp` addressing, flag-setting ALU
//!   operations, conditional jumps, a stack, an x87-style floating-point
//!   register stack and calls to known external library functions;
//! * a programmatic [`asm`]embler with labels;
//! * a [`program`] model with modules, stripped/exported function symbols and
//!   static basic-block discovery;
//! * a [`cpu`] interpreter that reports resolved memory accesses, address
//!   expressions, branch directions and FP-stack state for every dynamic
//!   instruction — exactly the information a dynamic binary instrumentation
//!   framework exposes;
//! * sparse, page-granular [`mem`]ory supporting the page-level memory dumps
//!   the paper's expression-extraction stage consumes.
//!
//! ## Example
//!
//! ```
//! use helium_machine::asm::Asm;
//! use helium_machine::cpu::Cpu;
//! use helium_machine::isa::{regs, Operand, Reg};
//! use helium_machine::program::Program;
//!
//! let mut asm = Asm::new(0x1000);
//! asm.mov(regs::eax(), Operand::Imm(20));
//! asm.add(regs::eax(), Operand::Imm(22));
//! asm.halt();
//!
//! let mut program = Program::new();
//! program.add_module("demo", asm.finish());
//!
//! let mut cpu = Cpu::new();
//! cpu.pc = 0x1000;
//! cpu.run(&program, 1_000, |_, _| {})?;
//! assert_eq!(cpu.reg(Reg::Eax), 42);
//! # Ok::<(), helium_machine::cpu::CpuError>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod mem;
pub mod program;

pub use asm::Asm;
pub use cpu::{AddrExpr, Cpu, CpuError, MemAccess, StepRecord};
pub use isa::{
    AluOp, Cond, ExternFn, FpOp, FpSrc, Instr, MemRef, Operand, Reg, RegRef, ShiftOp, Width,
};
pub use mem::{BumpAllocator, Memory, PAGE_SIZE};
pub use program::{FunctionSym, Module, Program, INSTR_SIZE};
