//! Sparse, page-granular memory for the virtual machine.
//!
//! The memory is organized in 4 KiB pages so the instrumentation layer can
//! produce the same page-granularity memory dumps the paper describes
//! (paper §4.1: "a page-granularity memory dump of all memory accessed by
//! candidate instructions").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// Byte-addressed sparse memory backed by 4 KiB pages.
///
/// Reads of unmapped memory return zero (and allocate nothing); writes
/// allocate the containing page on demand.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Memory {
    pages: BTreeMap<u32, Vec<u8>>,
}

impl Memory {
    /// Create an empty memory image.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_of(addr: u32) -> u32 {
        addr / PAGE_SIZE
    }

    /// Read a single byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&Self::page_of(addr)) {
            Some(page) => page[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Write a single byte, allocating the page if needed.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(Self::page_of(addr))
            .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Read `len` bytes starting at `addr` (little-endian order).
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i)))
            .collect()
    }

    /// Write a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read an unsigned little-endian value of `bytes` bytes (1, 2, 4 or 8).
    pub fn read_uint(&self, addr: u32, bytes: u32) -> u64 {
        let mut v: u64 = 0;
        for i in 0..bytes {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write an unsigned little-endian value of `bytes` bytes.
    pub fn write_uint(&mut self, addr: u32, value: u64, bytes: u32) {
        for i in 0..bytes {
            self.write_u8(addr.wrapping_add(i), ((value >> (8 * i)) & 0xff) as u8);
        }
    }

    /// Read a 32-bit unsigned value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Write a 32-bit unsigned value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_uint(addr, value as u64, 4);
    }

    /// Read a 32-bit IEEE float.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write a 32-bit IEEE float.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Read a 64-bit IEEE double.
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_uint(addr, 8))
    }

    /// Write a 64-bit IEEE double.
    pub fn write_f64(&mut self, addr: u32, value: f64) {
        self.write_uint(addr, value.to_bits(), 8);
    }

    /// Copy out the full content of the page containing `addr`, together with
    /// the page's base address. Unmapped pages read as zero.
    pub fn dump_page(&self, addr: u32) -> (u32, Vec<u8>) {
        let base = Self::page_of(addr) * PAGE_SIZE;
        let data = match self.pages.get(&Self::page_of(addr)) {
            Some(page) => page.clone(),
            None => vec![0; PAGE_SIZE as usize],
        };
        (base, data)
    }

    /// Number of pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterate over allocated pages as `(base_address, data)`.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.pages
            .iter()
            .map(|(p, data)| (p * PAGE_SIZE, data.as_slice()))
    }
}

/// A very simple bump allocator carving buffers out of the VM address space.
///
/// Legacy applications use this to place their image buffers at "arbitrary"
/// heap-like addresses, so that nothing in the analysis can rely on buffers
/// being conveniently located.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BumpAllocator {
    next: u32,
}

impl BumpAllocator {
    /// Create an allocator handing out addresses starting at `base`.
    pub fn new(base: u32) -> BumpAllocator {
        BumpAllocator { next: base }
    }

    /// Allocate `size` bytes aligned to `align` bytes and return the address.
    ///
    /// # Panics
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, size: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + size;
        addr
    }

    /// Allocate with an extra guard gap after the allocation, which creates the
    /// inter-buffer padding the paper's buffer structure reconstruction relies
    /// on to separate adjacent buffers.
    pub fn alloc_with_gap(&mut self, size: u32, align: u32, gap: u32) -> u32 {
        let addr = self.alloc(size, align);
        self.next += gap;
        addr
    }

    /// Address that the next allocation would start searching from.
    pub fn watermark(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0x1234), 0);
        assert_eq!(mem.read_u32(0xdead_0000), 0);
        assert_eq!(mem.allocated_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_widths() {
        let mut mem = Memory::new();
        mem.write_uint(0x1000, 0x1122_3344_5566_7788, 8);
        assert_eq!(mem.read_uint(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u8(0x1000), 0x88);
        assert_eq!(mem.read_uint(0x1004, 4), 0x1122_3344);
        mem.write_u32(0x2000, 0xdead_beef);
        assert_eq!(mem.read_u32(0x2000), 0xdead_beef);
    }

    #[test]
    fn float_roundtrip() {
        let mut mem = Memory::new();
        mem.write_f32(0x100, 1.25);
        mem.write_f64(0x200, -3.75);
        assert_eq!(mem.read_f32(0x100), 1.25);
        assert_eq!(mem.read_f64(0x200), -3.75);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE - 2;
        mem.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(mem.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(mem.allocated_pages(), 2);
    }

    #[test]
    fn page_dump_covers_addr() {
        let mut mem = Memory::new();
        mem.write_u8(0x1801, 42);
        let (base, data) = mem.dump_page(0x1801);
        assert_eq!(base, 0x1000);
        assert_eq!(data.len(), PAGE_SIZE as usize);
        assert_eq!(data[0x801], 42);
        let (base2, data2) = mem.dump_page(0x9999_9999);
        assert_eq!(base2, 0x9999_9999 / PAGE_SIZE * PAGE_SIZE);
        assert!(data2.iter().all(|&b| b == 0));
    }

    #[test]
    fn bump_allocator_aligns_and_gaps() {
        let mut a = BumpAllocator::new(0x10_0003);
        let p1 = a.alloc(100, 16);
        assert_eq!(p1 % 16, 0);
        let p2 = a.alloc_with_gap(64, 16, 32);
        assert!(p2 >= p1 + 100);
        let p3 = a.alloc(8, 4);
        assert!(p3 >= p2 + 64 + 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bump_allocator_rejects_bad_alignment() {
        let mut a = BumpAllocator::new(0);
        a.alloc(1, 3);
    }
}
