//! Property-based tests for the legacy-application substrate: image layouts
//! (planar padded planes, interleaved RGB, 3-D grids with ghost zones) and the
//! native reference filters that serve as correctness oracles for lifting.

use helium_apps::batchview::{self, BatchFilter};
use helium_apps::photoflow::{self, PhotoFilter};
use helium_apps::{Grid3D, InterleavedImage, PlanarImage, PlanarPlane};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Planar images (PhotoFlow / Photoshop layout)
// ---------------------------------------------------------------------------

proptest! {
    /// Scanline strides are align-multiples that cover the padded width, and
    /// the plane is exactly `stride * padded_rows` bytes.
    #[test]
    fn planar_plane_geometry(w in 1usize..64, h in 1usize..48, pad in 0usize..3, align in prop::sample::select(vec![1usize, 4, 8, 16])) {
        let plane = PlanarPlane::new(w, h, pad, align);
        let stride = plane.stride();
        prop_assert!(stride >= w + 2 * pad);
        prop_assert_eq!(stride % align, 0);
        prop_assert!(stride < w + 2 * pad + align, "stride must be the smallest aligned value");
        prop_assert_eq!(plane.padded_rows(), h + 2 * pad);
        prop_assert_eq!(plane.byte_len(), stride * (h + 2 * pad));
        prop_assert_eq!(plane.bytes().len(), plane.byte_len());
    }

    /// Logical get/set round-trips, and logical coordinates address the same
    /// byte as padded coordinates shifted by the pad.
    #[test]
    fn planar_plane_get_set_roundtrip(
        w in 1usize..32,
        h in 1usize..24,
        pad in 0usize..3,
        points in prop::collection::vec((0usize..32, 0usize..24, any::<u8>()), 1..16),
    ) {
        let mut plane = PlanarPlane::new(w, h, pad, 16);
        for &(x, y, v) in &points {
            let (x, y) = (x % w, y % h);
            plane.set(x, y, v);
            prop_assert_eq!(plane.get(x, y), v);
            prop_assert_eq!(plane.get_padded(x + pad, y + pad), v);
        }
    }

    /// Edge replication fills the whole padding ring with the nearest interior
    /// pixel and never modifies the interior.
    #[test]
    fn replicate_edges_fills_ring_from_interior(w in 1usize..24, h in 1usize..20, pad in 1usize..3, seed in any::<u64>()) {
        let mut plane = PlanarPlane::new(w, h, pad, 16);
        plane.fill_random(seed);
        let interior: Vec<Vec<u8>> = plane.interior_rows();
        let mut replicated = plane.clone();
        replicated.replicate_edges();
        // Interior untouched.
        prop_assert_eq!(replicated.interior_rows(), interior);
        // The ring holds the clamped nearest interior pixel.
        let stride = plane.stride();
        for y in 0..plane.padded_rows() {
            for x in 0..stride {
                let inside = x >= pad && x < pad + w && y >= pad && y < pad + h;
                if inside {
                    continue;
                }
                let ix = x.saturating_sub(pad).min(w - 1);
                let iy = y.saturating_sub(pad).min(h - 1);
                prop_assert_eq!(replicated.get_padded(x, y), plane.get(ix, iy));
            }
        }
    }

    /// `interior_rows` returns exactly `height` rows of `width` bytes and is
    /// what a user would hand Helium as "known data".
    #[test]
    fn interior_rows_have_logical_shape(w in 1usize..40, h in 1usize..30, seed in any::<u64>()) {
        let img = PlanarImage::random(w, h, 1, 16, seed);
        prop_assert_eq!(img.width(), w);
        prop_assert_eq!(img.height(), h);
        for plane in &img.planes {
            let rows = plane.interior_rows();
            prop_assert_eq!(rows.len(), h);
            prop_assert!(rows.iter().all(|r| r.len() == w));
        }
        // Three planes with identical geometry.
        prop_assert_eq!(img.planes.len(), 3);
        prop_assert_eq!(img.byte_len(), 3 * img.planes[0].byte_len());
    }
}

// ---------------------------------------------------------------------------
// Interleaved images (BatchView / IrfanView layout) and 3-D grids (miniGMG)
// ---------------------------------------------------------------------------

proptest! {
    /// Interleaved storage places channel `c` of pixel (x, y) at
    /// `y*stride + 3*x + c`, and get/set round-trips through that address.
    #[test]
    fn interleaved_image_addressing(w in 2usize..32, h in 2usize..24, x in 0usize..32, y in 0usize..24, c in 0usize..3, v in any::<u8>()) {
        let (x, y) = (x % w, y % h);
        let mut img = InterleavedImage::new(w, h);
        prop_assert_eq!(img.stride(), w * InterleavedImage::CHANNELS);
        prop_assert_eq!(img.byte_len(), w * h * InterleavedImage::CHANNELS);
        img.set(c, x, y, v);
        prop_assert_eq!(img.get(c, x, y), v);
        prop_assert_eq!(img.bytes()[y * img.stride() + InterleavedImage::CHANNELS * x + c], v);
        let rows = img.rows();
        prop_assert_eq!(rows.len(), h);
        prop_assert!(rows.iter().all(|r| r.len() == img.stride()));
        prop_assert_eq!(rows[y][InterleavedImage::CHANNELS * x + c], v);
    }

    /// Grid3D geometry: padded extents include the ghost zone on both sides,
    /// and get/set round-trips on interior cells.
    #[test]
    fn grid3d_addressing(nx in 1usize..10, ny in 1usize..10, nz in 1usize..8, ghost in 1usize..3, v in -1000.0f64..1000.0) {
        let mut grid = Grid3D::new(nx, ny, nz, ghost);
        prop_assert_eq!(grid.px(), nx + 2 * ghost);
        prop_assert_eq!(grid.py(), ny + 2 * ghost);
        prop_assert_eq!(grid.pz(), nz + 2 * ghost);
        prop_assert_eq!(grid.cells().len(), grid.px() * grid.py() * grid.pz());
        prop_assert_eq!(grid.byte_len(), grid.cells().len() * 8);
        // get/set use logical (interior) coordinates; the ghost offset is applied internally.
        let (x, y, z) = (nx / 2, ny / 2, nz / 2);
        grid.set(x, y, z, v);
        prop_assert_eq!(grid.get(x, y, z), v);
        let idx = (z + ghost) * grid.px() * grid.py() + (y + ghost) * grid.px() + (x + ghost);
        prop_assert_eq!(grid.cells()[idx], v);
    }
}

// ---------------------------------------------------------------------------
// Reference filters (the correctness oracles)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invert is an involution: applying it twice restores the original image
    /// (including the padding ring), and each output byte is the bitwise
    /// complement of its input byte.
    #[test]
    fn photoflow_invert_is_an_involution(w in 2usize..24, h in 2usize..20, seed in any::<u64>()) {
        let img = PlanarImage::random(w, h, 1, 16, seed);
        let once = photoflow::reference_filter(PhotoFilter::Invert, &img, 128, 10);
        let twice = photoflow::reference_filter(PhotoFilter::Invert, &once, 128, 10);
        for p in 0..3 {
            prop_assert_eq!(twice.planes[p].bytes(), img.planes[p].bytes());
            for (a, b) in img.planes[p].bytes().iter().zip(once.planes[p].bytes()) {
                prop_assert_eq!(*b, a ^ 0xff);
            }
        }
    }

    /// Threshold only ever produces pure black or pure white, all three
    /// output channels agree, and raising the threshold never turns a black
    /// pixel white (monotonicity).
    #[test]
    fn photoflow_threshold_is_binary_and_monotone(w in 2usize..20, h in 2usize..16, seed in any::<u64>(), t in 0u8..255) {
        let img = PlanarImage::random(w, h, 1, 16, seed);
        let lo = photoflow::reference_filter(PhotoFilter::Threshold, &img, t, 0);
        let hi = photoflow::reference_filter(PhotoFilter::Threshold, &img, t.saturating_add(40), 0);
        for i in 0..lo.planes[0].bytes().len() {
            let v = lo.planes[0].bytes()[i];
            prop_assert!(v == 0 || v == 255);
            prop_assert_eq!(lo.planes[1].bytes()[i], v);
            prop_assert_eq!(lo.planes[2].bytes()[i], v);
            // Monotone: pixels white at the higher threshold were white at the lower one.
            if hi.planes[0].bytes()[i] == 255 {
                prop_assert_eq!(v, 255);
            }
        }
    }

    /// Brightness with adjustment 0 is the identity; positive adjustments
    /// never darken a pixel and saturate at 255.
    #[test]
    fn photoflow_brightness_is_monotone_and_saturating(w in 2usize..20, h in 2usize..16, seed in any::<u64>(), delta in 1i32..120) {
        let img = PlanarImage::random(w, h, 1, 16, seed);
        let id = photoflow::reference_filter(PhotoFilter::Brightness, &img, 128, 0);
        let brighter = photoflow::reference_filter(PhotoFilter::Brightness, &img, 128, delta);
        for p in 0..3 {
            prop_assert_eq!(id.planes[p].bytes(), img.planes[p].bytes());
            for (a, b) in img.planes[p].bytes().iter().zip(brighter.planes[p].bytes()) {
                prop_assert!(*b >= *a);
                prop_assert_eq!(*b as i32, (*a as i32 + delta).min(255));
            }
        }
    }

    /// The weighted blur filters are bounded by the local neighbourhood: every
    /// output pixel lies within [min, max] of the 3×3 input neighbourhood
    /// (for the blur family the weights are non-negative and sum to 2^shift).
    #[test]
    fn photoflow_blurs_stay_within_neighbourhood_bounds(w in 3usize..20, h in 3usize..16, seed in any::<u64>()) {
        for filter in [PhotoFilter::Blur, PhotoFilter::BlurMore, PhotoFilter::BoxBlur] {
            let img = PlanarImage::random(w, h, 1, 16, seed);
            let out = photoflow::reference_filter(filter, &img, 128, 0);
            let pad = 1usize;
            for y in 0..h {
                for x in 0..w {
                    let mut lo = u8::MAX;
                    let mut hi = u8::MIN;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let sx = (x + pad) as i64 + dx;
                            let sy = (y + pad) as i64 + dy;
                            let v = img.planes[0].get_padded(sx as usize, sy as usize);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    let got = out.planes[0].get(x, y);
                    prop_assert!(
                        got >= lo && got <= hi.saturating_add(1),
                        "{:?}: output {got} outside neighbourhood [{lo}, {hi}] at ({x},{y})",
                        filter
                    );
                }
            }
        }
    }

    /// The reference histogram counts every byte of the red plane exactly once.
    #[test]
    fn photoflow_histogram_counts_every_sample(w in 2usize..24, h in 2usize..20, seed in any::<u64>()) {
        let img = PlanarImage::random(w, h, 1, 16, seed);
        let app = photoflow::PhotoFlow::new(PhotoFilter::Equalize, img.clone());
        let hist = app.reference_histogram();
        prop_assert_eq!(hist.len(), 256);
        let total: u64 = hist.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total, img.planes[0].bytes().len() as u64);
        // Spot-check one bucket against a direct count.
        let probe = img.planes[0].bytes()[0];
        let direct = img.planes[0].bytes().iter().filter(|&&b| b == probe).count() as u32;
        prop_assert_eq!(hist[probe as usize], direct);
    }

    /// BatchView invert is an involution and solarize is idempotent on the
    /// already-solarized image's dark half.
    #[test]
    fn batchview_pointwise_filters(w in 2usize..24, h in 2usize..18, seed in any::<u64>()) {
        let img = InterleavedImage::random(w, h, seed);
        let inv = batchview::reference_filter(BatchFilter::Invert, &img);
        let back = batchview::reference_filter(BatchFilter::Invert, &inv);
        prop_assert_eq!(back.bytes(), img.bytes());

        let sol = batchview::reference_filter(BatchFilter::Solarize, &img);
        for (a, b) in img.bytes().iter().zip(sol.bytes()) {
            let expect = if *a > 128 { 255 - *a } else { *a };
            prop_assert_eq!(*b, expect);
            prop_assert!(*b <= 128 || *a <= 128, "solarized output is never bright unless input was dark");
        }
    }

    /// The float blur/sharpen stencils of BatchView stay within widened
    /// neighbourhood bounds (blur) and reproduce a constant image exactly
    /// (both): on a constant input the weighted sum collapses to the constant.
    #[test]
    fn batchview_float_stencils_preserve_constants(w in 4usize..16, h in 4usize..12, value in 0u8..255) {
        let mut img = InterleavedImage::new(w, h);
        img.bytes_mut().fill(value);
        for filter in [BatchFilter::Blur, BatchFilter::Sharpen] {
            let out = batchview::reference_filter(filter, &img);
            // Interior pixels (the legacy kernel skips a 1-pixel border and the
            // first/last channel triplet of each row).
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    for c in 0..3 {
                        prop_assert_eq!(
                            out.get(c, x, y),
                            value,
                            "{:?} must preserve constant images at ({},{},{})",
                            filter,
                            x,
                            y,
                            c
                        );
                    }
                }
            }
        }
    }

    /// The miniGMG Jacobi smooth preserves constant grids (the weights sum to
    /// one), never writes the ghost zone, and is linear in the input.
    #[test]
    fn minigmg_smooth_properties(nx in 2usize..8, ny in 2usize..8, nz in 2usize..6, c in -10.0f64..10.0) {
        let ghost = 1;
        let mut constant = Grid3D::new(nx, ny, nz, ghost);
        for v in constant.cells_mut() {
            *v = c;
        }
        let smoothed = helium_apps::minigmg::reference_smooth(&constant);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    prop_assert!((smoothed.get(x, y, z) - c).abs() < 1e-9);
                }
            }
        }
        // Ghost cells of the output stay zero (never written): the very first
        // padded cell is a corner of the ghost zone.
        prop_assert_eq!(smoothed.cells()[0], 0.0);

        // Linearity: smooth(2 * g) == 2 * smooth(g) for a random-ish grid.
        let g = Grid3D::random(nx, ny, nz, ghost, 42);
        let mut doubled = g.clone();
        for v in doubled.cells_mut() {
            *v *= 2.0;
        }
        let s1 = helium_apps::minigmg::reference_smooth(&g);
        let s2 = helium_apps::minigmg::reference_smooth(&doubled);
        for (a, b) in s1.cells().iter().zip(s2.cells()) {
            prop_assert!((2.0 * a - b).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy binaries vs reference ports (VM equivalence)
// ---------------------------------------------------------------------------

/// Every PhotoFlow filter executed inside the VM produces exactly the same
/// image as its native reference port (paper §6.1: the legacy binary is the
/// oracle for the lifted code; here we check our "binary" against its spec).
#[test]
fn photoflow_vm_matches_reference_for_all_filters() {
    for filter in PhotoFilter::ALL {
        let image = PlanarImage::random(20, 13, 1, 16, 0xBEEF + filter as u64);
        let app = photoflow::PhotoFlow::new(filter, image);
        let vm = app.run_in_vm();
        let reference = app.reference_output();
        for p in 0..3 {
            assert_eq!(
                vm.planes[p].bytes(),
                reference.planes[p].bytes(),
                "{}: plane {p} differs between VM and reference",
                filter.name()
            );
        }
        if filter == PhotoFilter::Equalize {
            let cpu = {
                let mut cpu = app.fresh_cpu(true);
                cpu.run(app.program(), 50_000_000, |_, _| {})
                    .expect("vm run");
                cpu
            };
            assert_eq!(
                photoflow::PhotoFlow::read_histogram(&cpu),
                app.reference_histogram()
            );
        }
    }
}

/// Every BatchView filter executed inside the VM matches its reference port.
#[test]
fn batchview_vm_matches_reference_for_all_filters() {
    for filter in BatchFilter::ALL {
        let image = InterleavedImage::random(14, 9, 0xF00D + filter as u64);
        let app = batchview::BatchView::new(filter, image);
        let vm = app.run_in_vm();
        let reference = app.reference_output();
        assert_eq!(
            vm.bytes(),
            reference.bytes(),
            "{}: VM and reference differ",
            filter.name()
        );
    }
}

/// The miniGMG kernel executed inside the VM matches the reference smooth.
#[test]
fn minigmg_vm_matches_reference() {
    let grid = Grid3D::random(6, 5, 4, 1, 0x517E);
    let app = helium_apps::MiniGmg::new(grid);
    let vm = app.run_in_vm();
    let reference = app.reference_output();
    for (a, b) in vm.cells().iter().zip(reference.cells()) {
        assert!((a - b).abs() < 1e-12, "VM {a} vs reference {b}");
    }
}
