//! # helium-apps
//!
//! The "legacy applications" whose stencil kernels the Helium reproduction
//! lifts. The paper evaluates on Adobe Photoshop, IrfanView and the miniGMG
//! HPC benchmark — closed binaries (or, for miniGMG, compiled code) running
//! on real x86. This crate provides faithful stand-ins built on the
//! [`helium_machine`] ISA:
//!
//! * [`photoflow`] — a Photoshop-like editor: planar padded channels, a tiled
//!   filter driver, unrolled+peeled inner loops, input-dependent conditionals
//!   (threshold), table lookups (brightness) and histogram reductions
//!   (equalize);
//! * [`batchview`] — an IrfanView-like converter: interleaved RGB, x87
//!   floating-point stencils with `fild`/`fistp` staging through stack slots;
//! * [`minigmg`] — a miniGMG-like 3-D Jacobi smooth over a double-precision
//!   grid with ghost zones and no known input/output data (forcing generic
//!   dimensionality inference).
//!
//! Every application offers:
//! * `program()` — the loaded binary image (main module + filter "DLL"),
//! * `fresh_cpu(with_filter)` — a primed VM for one run, with and without the
//!   kernel (for coverage differencing),
//! * known input/output data (when the paper's scenario has it),
//! * `reference_output()` — a native scalar port used as correctness oracle
//!   and as the "legacy native" baseline in the benchmarks,
//! * `run_in_vm()` — executes the actual legacy binary under the interpreter.

#![warn(missing_docs)]

pub mod batchview;
pub mod image;
pub mod minigmg;
pub mod photoflow;

pub use batchview::{BatchFilter, BatchView};
pub use image::{Grid3D, InterleavedImage, PlanarImage, PlanarPlane};
pub use minigmg::MiniGmg;
pub use photoflow::{PhotoFilter, PhotoFlow};
