//! "BatchView": the IrfanView-like legacy batch image converter.
//!
//! BatchView stores images as a single interleaved RGB buffer with no padding
//! and, like the binary the paper analyses, loads pixel data into the x87
//! floating-point register stack, computes its stencils in floating point and
//! rounds the result back to integers with `fistp`. The generated code also
//! stages integer values through stack slots (`fild dword [ebp-8]`), so the
//! lifted expressions must follow data flow through memory, partial-register
//! stores and the FP stack.

use crate::image::InterleavedImage;
use helium_machine::asm::Asm;
use helium_machine::isa::{regs, Cond, FpOp, FpSrc, MemRef, Operand, Reg, Width};
use helium_machine::program::Program;
use helium_machine::Cpu;
use serde::{Deserialize, Serialize};

/// Base address of the main executable module.
const MAIN_BASE: u32 = 0x0050_0000;
/// Base address of the filter module.
const FILTER_BASE: u32 = 0x2000_0000;
/// Base address of the input image.
const INPUT_BASE: u32 = 0x0800_0000;
/// Base address of the output image.
const OUTPUT_BASE: u32 = 0x0900_0000;
/// Run-filter flag.
const FLAG_ADDR: u32 = 0x0700_0000;
/// Base address of the floating-point weight constants.
const CONST_BASE: u32 = 0x0700_0100;
/// Scratch used by background code.
const BG_SCRATCH: u32 = 0x0700_0200;

/// The BatchView filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchFilter {
    /// Pointwise inversion (255 - v).
    Invert,
    /// Pointwise solarize (invert values above 128).
    Solarize,
    /// 9-point floating-point blur.
    Blur,
    /// 9-point floating-point sharpen.
    Sharpen,
}

impl BatchFilter {
    /// All filters in evaluation order.
    pub const ALL: [BatchFilter; 4] = [
        BatchFilter::Invert,
        BatchFilter::Solarize,
        BatchFilter::Blur,
        BatchFilter::Sharpen,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BatchFilter::Invert => "invert",
            BatchFilter::Solarize => "solarize",
            BatchFilter::Blur => "blur",
            BatchFilter::Sharpen => "sharpen",
        }
    }

    /// Center and neighbour weights for the floating-point stencils.
    pub fn float_weights(self) -> Option<(f64, f64)> {
        match self {
            BatchFilter::Blur => Some((0.5, 0.0625)),
            BatchFilter::Sharpen => Some((2.0, -0.125)),
            _ => None,
        }
    }
}

/// One BatchView application instance for a single filter.
#[derive(Debug, Clone)]
pub struct BatchView {
    filter: BatchFilter,
    image: InterleavedImage,
    program: Program,
    main_entry: u32,
    filter_entry: u32,
}

impl BatchView {
    /// Build a BatchView instance around an image and filter.
    pub fn new(filter: BatchFilter, image: InterleavedImage) -> BatchView {
        let (program, main_entry, filter_entry) = build_program(filter, &image);
        BatchView {
            filter,
            image,
            program,
            main_entry,
            filter_entry,
        }
    }

    /// The filter this instance applies.
    pub fn filter(&self) -> BatchFilter {
        self.filter
    }

    /// The input image.
    pub fn image(&self) -> &InterleavedImage {
        &self.image
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Address of the input buffer.
    pub fn input_addr(&self) -> u32 {
        INPUT_BASE
    }

    /// Address of the output buffer.
    pub fn output_addr(&self) -> u32 {
        OUTPUT_BASE
    }

    /// Filter-function entry, for white-box tests only.
    pub fn filter_entry_for_reference(&self) -> u32 {
        self.filter_entry
    }

    /// Prepare a CPU for one run.
    pub fn fresh_cpu(&self, with_filter: bool) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.pc = self.main_entry;
        cpu.mem.write_bytes(INPUT_BASE, self.image.bytes());
        cpu.mem.write_u32(FLAG_ADDR, with_filter as u32);
        if let Some((wc, wn)) = self.filter.float_weights() {
            cpu.mem.write_f64(CONST_BASE, wc);
            cpu.mem.write_f64(CONST_BASE + 8, wn);
        }
        cpu
    }

    /// Known input scanlines (interleaved) for dimension inference.
    pub fn known_input_rows(&self) -> Vec<Vec<Vec<u8>>> {
        vec![self.image.rows()]
    }

    /// Known output scanlines computed by the reference implementation.
    ///
    /// Only the interior scanlines are returned for the stencil filters (the
    /// legacy code leaves the one-pixel border untouched).
    pub fn known_output_rows(&self) -> Vec<Vec<Vec<u8>>> {
        let out = self.reference_output();
        let rows = out.rows();
        let rows = match self.filter {
            BatchFilter::Blur | BatchFilter::Sharpen => rows[1..rows.len() - 1].to_vec(),
            _ => rows,
        };
        vec![rows]
    }

    /// Approximate data size for candidate-instruction selection.
    pub fn approx_data_size(&self) -> usize {
        self.image.byte_len()
    }

    /// Run the legacy binary in the VM and return the output image.
    ///
    /// # Panics
    /// Panics if the interpreter fails.
    pub fn run_in_vm(&self) -> InterleavedImage {
        let mut cpu = self.fresh_cpu(true);
        cpu.run(&self.program, 2_000_000_000, |_, _| {})
            .expect("legacy binary runs");
        self.read_output(&cpu)
    }

    /// Extract the output image from a finished CPU.
    pub fn read_output(&self, cpu: &Cpu) -> InterleavedImage {
        let mut out = InterleavedImage::new(self.image.width, self.image.height);
        let bytes = cpu
            .mem
            .read_bytes(OUTPUT_BASE, self.image.byte_len() as u32);
        out.bytes_mut().copy_from_slice(&bytes);
        out
    }

    /// Native scalar reference implementation, matching the legacy assembly.
    pub fn reference_output(&self) -> InterleavedImage {
        reference_filter(self.filter, &self.image)
    }
}

/// Native scalar implementation of a BatchView filter (single thread,
/// identical operation order to the legacy assembly).
pub fn reference_filter(filter: BatchFilter, image: &InterleavedImage) -> InterleavedImage {
    let mut out = InterleavedImage::new(image.width, image.height);
    let stride = image.stride();
    let src = image.bytes();
    let dst = out.bytes_mut();
    match filter {
        BatchFilter::Invert => {
            for i in 0..src.len() {
                dst[i] = 255 - src[i];
            }
        }
        BatchFilter::Solarize => {
            for i in 0..src.len() {
                dst[i] = if src[i] > 128 { 255 - src[i] } else { src[i] };
            }
        }
        BatchFilter::Blur | BatchFilter::Sharpen => {
            let (wc, wn) = filter.float_weights().expect("float stencil");
            for y in 1..image.height - 1 {
                for x in 3..stride - 3 {
                    let i = y * stride + x;
                    // Operation order matches the x87 code: center product
                    // first, then each neighbour product added in turn.
                    let mut acc = src[i] as f64 * wc;
                    for &off in &[
                        -(stride as i64) - 3,
                        -(stride as i64),
                        -(stride as i64) + 3,
                        -3i64,
                        3,
                        stride as i64 - 3,
                        stride as i64,
                        stride as i64 + 3,
                    ] {
                        let v = src[(i as i64 + off) as usize] as f64;
                        acc += v * wn;
                    }
                    dst[i] = round_ties_even_to_u8(acc);
                }
            }
        }
    }
    out
}

fn round_ties_even_to_u8(v: f64) -> u8 {
    helium_machine::cpu::round_ties_even(v) as i64 as u8
}

// ---------------------------------------------------------------------------
// Assembly generation
// ---------------------------------------------------------------------------

fn mem8_idx(base: Reg, index: Reg, disp: i32) -> MemRef {
    MemRef::sib(base, index, 1, disp, Width::B1)
}

/// Pointwise filters: invert and solarize over the whole interleaved buffer.
fn emit_pointwise_filter(asm: &mut Asm, filter: BatchFilter, total: i64) -> u32 {
    let entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.mov(regs::esi(), Operand::Imm(0));
    asm.label("pw_loop");
    asm.movzx(
        regs::eax(),
        Operand::Mem(MemRef::sib(
            Reg::Esi,
            Reg::Esi,
            0,
            INPUT_BASE as i32,
            Width::B1,
        )),
    );
    match filter {
        BatchFilter::Invert => {
            asm.mov(regs::ebx(), Operand::Imm(255));
            asm.sub(regs::ebx(), regs::eax());
        }
        BatchFilter::Solarize => {
            asm.cmp(regs::eax(), Operand::Imm(128));
            asm.jcc(Cond::A, "pw_invert");
            asm.mov(regs::ebx(), regs::eax());
            asm.jmp("pw_store");
            asm.label("pw_invert");
            asm.mov(regs::ebx(), Operand::Imm(255));
            asm.sub(regs::ebx(), regs::eax());
            asm.label("pw_store");
            asm.nop();
        }
        _ => unreachable!("pointwise filters only"),
    }
    asm.mov(
        Operand::Mem(MemRef::sib(
            Reg::Esi,
            Reg::Esi,
            0,
            OUTPUT_BASE as i32,
            Width::B1,
        )),
        regs::bl(),
    );
    asm.inc(regs::esi());
    asm.cmp(regs::esi(), Operand::Imm(total));
    asm.jcc(Cond::B, "pw_loop");
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Floating-point 9-point stencil over the interleaved buffer, computed on
/// the x87 stack and rounded back with `fistp`.
fn emit_float_stencil(asm: &mut Asm, image: &InterleavedImage) -> u32 {
    let stride = image.stride() as i32;
    let height = image.height as i64;
    let entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.sub(regs::esp(), Operand::Imm(0x10));
    asm.push(regs::esi());
    asm.push(regs::edi());
    asm.push(regs::ebx());
    // esi = source row pointer, edi = destination row pointer, ecx = row index.
    asm.mov(
        regs::esi(),
        Operand::Imm((INPUT_BASE as i32 + stride) as i64),
    );
    asm.mov(
        regs::edi(),
        Operand::Imm((OUTPUT_BASE as i32 + stride) as i64),
    );
    asm.mov(regs::ecx(), Operand::Imm(1));
    asm.label("fs_row");
    asm.mov(regs::eax(), Operand::Imm(3));
    asm.label("fs_pixel");
    // Center tap: load the byte through a stack slot into the FP stack.
    asm.movzx(regs::ebx(), Operand::Mem(mem8_idx(Reg::Esi, Reg::Eax, 0)));
    asm.mov(
        Operand::Mem(MemRef::base_disp(Reg::Ebp, -8, Width::B4)),
        regs::ebx(),
    );
    asm.fld(FpSrc::MemI32(MemRef::base_disp(Reg::Ebp, -8, Width::B4)));
    asm.farith(
        FpOp::Mul,
        FpSrc::MemF64(MemRef::absolute(CONST_BASE as i32, Width::B8)),
    );
    // Neighbour taps.
    for off in [
        -stride - 3,
        -stride,
        -stride + 3,
        -3,
        3,
        stride - 3,
        stride,
        stride + 3,
    ] {
        asm.movzx(regs::ebx(), Operand::Mem(mem8_idx(Reg::Esi, Reg::Eax, off)));
        asm.mov(
            Operand::Mem(MemRef::base_disp(Reg::Ebp, -8, Width::B4)),
            regs::ebx(),
        );
        asm.fld(FpSrc::MemI32(MemRef::base_disp(Reg::Ebp, -8, Width::B4)));
        asm.farith(
            FpOp::Mul,
            FpSrc::MemF64(MemRef::absolute((CONST_BASE + 8) as i32, Width::B8)),
        );
        asm.farith_to(FpOp::Add, 1);
    }
    // Round and store.
    asm.fistp(MemRef::base_disp(Reg::Ebp, -12, Width::B4));
    asm.mov(
        regs::ebx(),
        Operand::Mem(MemRef::base_disp(Reg::Ebp, -12, Width::B4)),
    );
    asm.mov(Operand::Mem(mem8_idx(Reg::Edi, Reg::Eax, 0)), regs::bl());
    asm.inc(regs::eax());
    asm.cmp(regs::eax(), Operand::Imm((stride - 3) as i64));
    asm.jcc(Cond::B, "fs_pixel");
    asm.add(regs::esi(), Operand::Imm(stride as i64));
    asm.add(regs::edi(), Operand::Imm(stride as i64));
    asm.inc(regs::ecx());
    asm.cmp(regs::ecx(), Operand::Imm(height - 1));
    asm.jcc(Cond::B, "fs_row");
    asm.pop(regs::ebx());
    asm.pop(regs::edi());
    asm.pop(regs::esi());
    asm.mov(regs::esp(), regs::ebp());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

fn build_program(filter: BatchFilter, image: &InterleavedImage) -> (Program, u32, u32) {
    let mut filters = Asm::new(FILTER_BASE);
    let filter_entry = match filter {
        BatchFilter::Invert | BatchFilter::Solarize => {
            emit_pointwise_filter(&mut filters, filter, image.byte_len() as i64)
        }
        BatchFilter::Blur | BatchFilter::Sharpen => emit_float_stencil(&mut filters, image),
    };

    let mut main = Asm::new(MAIN_BASE);
    let main_entry = main.here();
    // Background work executed in both runs (a fake header parse).
    main.mov(regs::ecx(), Operand::Imm(0));
    main.mov(regs::eax(), Operand::Imm(0));
    main.label("hdr_loop");
    main.movzx(
        regs::edx(),
        Operand::Mem(MemRef::sib(
            Reg::Ecx,
            Reg::Ecx,
            0,
            BG_SCRATCH as i32,
            Width::B1,
        )),
    );
    main.add(regs::eax(), regs::edx());
    main.inc(regs::ecx());
    main.cmp(regs::ecx(), Operand::Imm(32));
    main.jcc(Cond::B, "hdr_loop");
    main.mov(
        Operand::Mem(MemRef::absolute((BG_SCRATCH + 64) as i32, Width::B4)),
        regs::eax(),
    );
    // Conditionally run the filter.
    main.mov(
        regs::eax(),
        Operand::Mem(MemRef::absolute(FLAG_ADDR as i32, Width::B4)),
    );
    main.test(regs::eax(), regs::eax());
    main.jcc(Cond::Z, "skip");
    main.call(filter_entry);
    main.label("skip");
    main.halt();

    let mut program = Program::new();
    program.add_module("batchview.exe", main.finish());
    program.add_module("bvfilters.dll", filters.finish());
    program.add_function(main_entry, Some("main"));
    program.add_function(filter_entry, None);
    (program, main_entry, filter_entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_image() -> InterleavedImage {
        InterleavedImage::random(20, 11, 1234)
    }

    #[test]
    fn legacy_binary_matches_reference_for_every_filter() {
        let image = small_image();
        for filter in BatchFilter::ALL {
            let app = BatchView::new(filter, image.clone());
            let vm_out = app.run_in_vm();
            let reference = app.reference_output();
            assert_eq!(
                vm_out.bytes(),
                reference.bytes(),
                "{} output differs from the reference",
                filter.name()
            );
        }
    }

    #[test]
    fn without_filter_output_is_untouched() {
        let app = BatchView::new(BatchFilter::Blur, small_image());
        let mut cpu = app.fresh_cpu(false);
        cpu.run(app.program(), 100_000_000, |_, _| {})
            .expect("runs");
        assert!(app.read_output(&cpu).bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn known_rows_shapes() {
        let app = BatchView::new(BatchFilter::Sharpen, small_image());
        let input_rows = &app.known_input_rows()[0];
        assert_eq!(input_rows.len(), 11);
        assert_eq!(input_rows[0].len(), 60);
        let output_rows = &app.known_output_rows()[0];
        assert_eq!(
            output_rows.len(),
            9,
            "stencil output rows exclude the border"
        );
        let pw = BatchView::new(BatchFilter::Invert, small_image());
        assert_eq!(pw.known_output_rows()[0].len(), 11);
        assert_eq!(pw.approx_data_size(), 20 * 11 * 3);
    }

    #[test]
    fn filter_metadata() {
        assert_eq!(BatchFilter::Blur.name(), "blur");
        assert_eq!(BatchFilter::Blur.float_weights(), Some((0.5, 0.0625)));
        assert_eq!(BatchFilter::Invert.float_weights(), None);
        assert_eq!(BatchFilter::ALL.len(), 4);
    }
}
