//! Image and grid containers used by the legacy applications.
//!
//! Two pixel layouts matter for the paper's evaluation:
//!
//! * **planar** images (Photoshop-style): R, G and B are stored in separate
//!   planes, each padded by one pixel on every edge and with scanlines rounded
//!   up to an alignment boundary — exactly the layout the paper describes for
//!   Photoshop's blur of a 32×32 image (one-pixel edge padding, 48-byte
//!   scanlines);
//! * **interleaved** images (IrfanView-style): a single buffer of RGB triples;
//! * **3-D grids with ghost zones** (miniGMG-style) of `f64` cells.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single padded, aligned image plane of `u8` samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanarPlane {
    /// Logical image width (without padding).
    pub width: usize,
    /// Logical image height (without padding).
    pub height: usize,
    /// Padding added to every edge, in pixels.
    pub pad: usize,
    /// Scanline alignment in bytes (the padded width is rounded up to this).
    pub align: usize,
    data: Vec<u8>,
}

impl PlanarPlane {
    /// Create a zeroed plane.
    ///
    /// # Panics
    /// Panics if `align` is zero.
    pub fn new(width: usize, height: usize, pad: usize, align: usize) -> PlanarPlane {
        assert!(align > 0, "alignment must be positive");
        let stride = Self::stride_for(width, pad, align);
        let rows = height + 2 * pad;
        PlanarPlane {
            width,
            height,
            pad,
            align,
            data: vec![0; stride * rows],
        }
    }

    /// Scanline stride in bytes for the given geometry.
    pub fn stride_for(width: usize, pad: usize, align: usize) -> usize {
        (width + 2 * pad).div_ceil(align) * align
    }

    /// Scanline stride of this plane in bytes.
    pub fn stride(&self) -> usize {
        Self::stride_for(self.width, self.pad, self.align)
    }

    /// Number of padded rows.
    pub fn padded_rows(&self) -> usize {
        self.height + 2 * self.pad
    }

    /// Total size of the plane in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Raw plane bytes (padded layout).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw plane bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read the sample at logical coordinates (no padding offset applied).
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[(y + self.pad) * self.stride() + x + self.pad]
    }

    /// Write the sample at logical coordinates.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        let stride = self.stride();
        self.data[(y + self.pad) * stride + x + self.pad] = v;
    }

    /// Read the sample at padded coordinates (0 ≤ x < stride, 0 ≤ y < padded rows).
    pub fn get_padded(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.stride() + x]
    }

    /// Write the sample at padded coordinates.
    pub fn set_padded(&mut self, x: usize, y: usize, v: u8) {
        let stride = self.stride();
        self.data[y * stride + x] = v;
    }

    /// Fill the interior with deterministic pseudo-random samples and
    /// replicate edge pixels into the padding ring (the usual boundary
    /// handling of image editors).
    pub fn fill_random(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for y in 0..self.height {
            for x in 0..self.width {
                self.set(x, y, rng.gen());
            }
        }
        self.replicate_edges();
    }

    /// Copy edge pixels outward into the padding ring.
    pub fn replicate_edges(&mut self) {
        let (w, h, pad) = (self.width, self.height, self.pad);
        if pad == 0 {
            return;
        }
        for y in 0..self.padded_rows() {
            for x in 0..self.stride() {
                let ix = x.saturating_sub(pad).min(w.saturating_sub(1));
                let iy = y.saturating_sub(pad).min(h.saturating_sub(1));
                let inside_x = x >= pad && x < pad + w;
                let inside_y = y >= pad && y < pad + h;
                if !(inside_x && inside_y) {
                    let v = self.get(ix, iy);
                    self.set_padded(x, y, v);
                }
            }
        }
    }

    /// The interior scanlines (logical rows of `width` bytes), used as the
    /// "known input/output data" Helium searches the memory dump for.
    pub fn interior_rows(&self) -> Vec<Vec<u8>> {
        (0..self.height)
            .map(|y| (0..self.width).map(|x| self.get(x, y)).collect())
            .collect()
    }
}

/// A planar RGB image: three [`PlanarPlane`]s with identical geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanarImage {
    /// The red, green and blue planes.
    pub planes: [PlanarPlane; 3],
}

impl PlanarImage {
    /// Create a zeroed image.
    pub fn new(width: usize, height: usize, pad: usize, align: usize) -> PlanarImage {
        PlanarImage {
            planes: [
                PlanarPlane::new(width, height, pad, align),
                PlanarPlane::new(width, height, pad, align),
                PlanarPlane::new(width, height, pad, align),
            ],
        }
    }

    /// Create an image with deterministic pseudo-random content.
    pub fn random(width: usize, height: usize, pad: usize, align: usize, seed: u64) -> PlanarImage {
        let mut img = PlanarImage::new(width, height, pad, align);
        for (i, plane) in img.planes.iter_mut().enumerate() {
            plane.fill_random(seed.wrapping_add(i as u64 * 7919));
        }
        img
    }

    /// Logical width.
    pub fn width(&self) -> usize {
        self.planes[0].width
    }

    /// Logical height.
    pub fn height(&self) -> usize {
        self.planes[0].height
    }

    /// Scanline stride in bytes.
    pub fn stride(&self) -> usize {
        self.planes[0].stride()
    }

    /// Total bytes across all planes.
    pub fn byte_len(&self) -> usize {
        self.planes.iter().map(PlanarPlane::byte_len).sum()
    }
}

/// An interleaved RGB image with no padding (IrfanView-style).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleavedImage {
    /// Logical width in pixels.
    pub width: usize,
    /// Logical height in pixels.
    pub height: usize,
    data: Vec<u8>,
}

impl InterleavedImage {
    /// Number of channels (always RGB).
    pub const CHANNELS: usize = 3;

    /// Create a zeroed image.
    pub fn new(width: usize, height: usize) -> InterleavedImage {
        InterleavedImage {
            width,
            height,
            data: vec![0; width * height * Self::CHANNELS],
        }
    }

    /// Create an image with deterministic pseudo-random content.
    pub fn random(width: usize, height: usize, seed: u64) -> InterleavedImage {
        let mut img = InterleavedImage::new(width, height);
        let mut rng = StdRng::seed_from_u64(seed);
        rng.fill(img.data.as_mut_slice());
        img
    }

    /// Scanline stride in bytes.
    pub fn stride(&self) -> usize {
        self.width * Self::CHANNELS
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample accessor.
    pub fn get(&self, c: usize, x: usize, y: usize) -> u8 {
        self.data[y * self.stride() + x * Self::CHANNELS + c]
    }

    /// Sample mutator.
    pub fn set(&mut self, c: usize, x: usize, y: usize, v: u8) {
        let stride = self.stride();
        self.data[y * stride + x * Self::CHANNELS + c] = v;
    }

    /// Interleaved scanlines, used as known data for dimension inference.
    pub fn rows(&self) -> Vec<Vec<u8>> {
        (0..self.height)
            .map(|y| self.data[y * self.stride()..(y + 1) * self.stride()].to_vec())
            .collect()
    }
}

/// A 3-D grid of `f64` cells with ghost zones (miniGMG-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid3D {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
    /// Ghost-zone width on every face.
    pub ghost: usize,
    data: Vec<f64>,
}

impl Grid3D {
    /// Create a zeroed grid.
    pub fn new(nx: usize, ny: usize, nz: usize, ghost: usize) -> Grid3D {
        let total = (nx + 2 * ghost) * (ny + 2 * ghost) * (nz + 2 * ghost);
        Grid3D {
            nx,
            ny,
            nz,
            ghost,
            data: vec![0.0; total],
        }
    }

    /// Create a grid with deterministic pseudo-random interior values.
    pub fn random(nx: usize, ny: usize, nz: usize, ghost: usize, seed: u64) -> Grid3D {
        let mut g = Grid3D::new(nx, ny, nz, ghost);
        let mut rng = StdRng::seed_from_u64(seed);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    g.set(x, y, z, rng.gen_range(-1.0..1.0));
                }
            }
        }
        g
    }

    /// Padded extent in x (interior plus ghost zones).
    pub fn px(&self) -> usize {
        self.nx + 2 * self.ghost
    }
    /// Padded extent in y.
    pub fn py(&self) -> usize {
        self.ny + 2 * self.ghost
    }
    /// Padded extent in z.
    pub fn pz(&self) -> usize {
        self.nz + 2 * self.ghost
    }

    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z + self.ghost) * self.px() * self.py() + (y + self.ghost) * self.px() + (x + self.ghost)
    }

    /// Read an interior cell.
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.index(x, y, z)]
    }

    /// Write an interior cell.
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.index(x, y, z);
        self.data[i] = v;
    }

    /// The raw padded cells.
    pub fn cells(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw padded cells.
    pub fn cells_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_geometry_matches_paper_example() {
        // Photoshop blurs a 32x32 image: pad each edge by one pixel, round each
        // scanline up to 48 bytes for 16-byte alignment.
        let p = PlanarPlane::new(32, 32, 1, 16);
        assert_eq!(p.stride(), 48);
        assert_eq!(p.padded_rows(), 34);
        assert_eq!(p.byte_len(), 48 * 34);
    }

    #[test]
    fn planar_accessors_and_padding() {
        let mut p = PlanarPlane::new(4, 3, 1, 8);
        p.set(0, 0, 10);
        p.set(3, 2, 20);
        p.replicate_edges();
        assert_eq!(p.get(0, 0), 10);
        assert_eq!(p.get_padded(1, 1), 10);
        assert_eq!(
            p.get_padded(0, 0),
            10,
            "corner padding replicates the corner pixel"
        );
        assert_eq!(
            p.get_padded(4 + 1, 3 + 1),
            20,
            "bottom-right padding replicates"
        );
        let rows = p.interior_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 4);
        assert_eq!(rows[0][0], 10);
    }

    #[test]
    fn planar_image_random_is_deterministic() {
        let a = PlanarImage::random(8, 8, 1, 16, 42);
        let b = PlanarImage::random(8, 8, 1, 16, 42);
        let c = PlanarImage::random(8, 8, 1, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.width(), 8);
        assert_eq!(a.stride(), 16);
        assert_eq!(a.byte_len(), 3 * 16 * 10);
    }

    #[test]
    fn interleaved_layout() {
        let mut img = InterleavedImage::new(5, 4);
        img.set(2, 3, 1, 99);
        assert_eq!(img.get(2, 3, 1), 99);
        assert_eq!(img.stride(), 15);
        assert_eq!(img.byte_len(), 60);
        assert_eq!(img.rows().len(), 4);
        assert_eq!(img.rows()[1][3 * 3 + 2], 99);
        let r = InterleavedImage::random(5, 4, 1);
        assert_eq!(r.bytes().len(), 60);
    }

    #[test]
    fn grid3d_ghost_zones() {
        let mut g = Grid3D::new(4, 3, 2, 1);
        assert_eq!(g.px(), 6);
        assert_eq!(g.py(), 5);
        assert_eq!(g.pz(), 4);
        assert_eq!(g.cells().len(), 6 * 5 * 4);
        g.set(0, 0, 0, 1.5);
        assert_eq!(g.get(0, 0, 0), 1.5);
        // Interior cell (0,0,0) sits at padded index (1,1,1).
        #[allow(clippy::identity_op)]
        let center = 1 * 30 + 1 * 6 + 1;
        assert_eq!(g.cells()[center], 1.5);
        let r = Grid3D::random(4, 3, 2, 1, 7);
        assert!(r.cells().iter().any(|&v| v != 0.0));
    }
}
