//! The miniGMG-like high-performance-computing benchmark.
//!
//! miniGMG is a geometric multigrid benchmark; the paper lifts its Jacobi
//! `smooth` stencil. Our substitute applies a weighted 7-point (3-D) stencil
//! to a double-precision grid with one-cell ghost zones, computed on the x87
//! floating-point stack. There is no known input or output image for this
//! workload (the benchmark generates its data at runtime), so the lifter must
//! fall back to the paper's *generic* dimensionality inference, which relies
//! on the address gaps the ghost zones leave between rows and planes.

use crate::image::Grid3D;
use helium_machine::asm::Asm;
use helium_machine::isa::{regs, Cond, FpOp, FpSrc, MemRef, Operand, Reg, Width};
use helium_machine::program::Program;
use helium_machine::Cpu;
use serde::{Deserialize, Serialize};

/// Base address of the benchmark executable.
const MAIN_BASE: u32 = 0x0060_0000;
/// Base address of the smooth kernel module.
const KERNEL_BASE: u32 = 0x3000_0000;
/// Base address of the input grid.
const INPUT_BASE: u32 = 0x0A00_0000;
/// Base address of the output grid.
const OUTPUT_BASE: u32 = 0x0B00_0000;
/// Run-kernel flag (the "command-line option to skip running the stencil").
const FLAG_ADDR: u32 = 0x0730_0000;
/// Address of the two stencil weights (center, neighbour), as f64.
const CONST_BASE: u32 = 0x0730_0100;

/// Weight applied to the centre cell.
pub const CENTER_WEIGHT: f64 = 0.5;
/// Weight applied to each of the six neighbours.
pub const NEIGHBOR_WEIGHT: f64 = 1.0 / 12.0;

/// One miniGMG smooth-stencil instance.
#[derive(Debug, Clone)]
pub struct MiniGmg {
    grid: Grid3D,
    program: Program,
    main_entry: u32,
    kernel_entry: u32,
}

/// Parameters describing the grid geometry of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridShape {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
}

impl MiniGmg {
    /// Build an instance around a grid.
    pub fn new(grid: Grid3D) -> MiniGmg {
        let (program, main_entry, kernel_entry) = build_program(&grid);
        MiniGmg {
            grid,
            program,
            main_entry,
            kernel_entry,
        }
    }

    /// The input grid.
    pub fn grid(&self) -> &Grid3D {
        &self.grid
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Grid geometry.
    pub fn shape(&self) -> GridShape {
        GridShape {
            nx: self.grid.nx,
            ny: self.grid.ny,
            nz: self.grid.nz,
        }
    }

    /// Kernel entry address, for white-box tests only.
    pub fn kernel_entry_for_reference(&self) -> u32 {
        self.kernel_entry
    }

    /// Address of the input grid in VM memory.
    pub fn input_addr(&self) -> u32 {
        INPUT_BASE
    }

    /// Address of the output grid in VM memory.
    pub fn output_addr(&self) -> u32 {
        OUTPUT_BASE
    }

    /// Prepare a CPU for one run.
    pub fn fresh_cpu(&self, with_kernel: bool) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.pc = self.main_entry;
        for (i, &v) in self.grid.cells().iter().enumerate() {
            cpu.mem.write_f64(INPUT_BASE + (i * 8) as u32, v);
        }
        cpu.mem.write_u32(FLAG_ADDR, with_kernel as u32);
        cpu.mem.write_f64(CONST_BASE, CENTER_WEIGHT);
        cpu.mem.write_f64(CONST_BASE + 8, NEIGHBOR_WEIGHT);
        cpu
    }

    /// There is no known input/output data for this benchmark; the lifter must
    /// use generic inference. The estimated data size guides candidate
    /// instruction selection, as in the paper.
    pub fn approx_data_size(&self) -> usize {
        self.grid.byte_len()
    }

    /// Run the legacy binary in the VM and return the smoothed grid.
    ///
    /// # Panics
    /// Panics if the interpreter fails.
    pub fn run_in_vm(&self) -> Grid3D {
        let mut cpu = self.fresh_cpu(true);
        cpu.run(&self.program, 2_000_000_000, |_, _| {})
            .expect("benchmark runs");
        self.read_output(&cpu)
    }

    /// Extract the output grid from a finished CPU.
    pub fn read_output(&self, cpu: &Cpu) -> Grid3D {
        let mut out = Grid3D::new(self.grid.nx, self.grid.ny, self.grid.nz, self.grid.ghost);
        let n = out.cells().len();
        for i in 0..n {
            let v = cpu.mem.read_f64(OUTPUT_BASE + (i * 8) as u32);
            out.cells_mut()[i] = v;
        }
        out
    }

    /// Native scalar reference implementation of the smooth stencil.
    pub fn reference_output(&self) -> Grid3D {
        reference_smooth(&self.grid)
    }
}

/// Native scalar Jacobi smooth, matching the kernel's operation order.
pub fn reference_smooth(grid: &Grid3D) -> Grid3D {
    let mut out = Grid3D::new(grid.nx, grid.ny, grid.nz, grid.ghost);
    let (px, py) = (grid.px(), grid.py());
    let cells = grid.cells();
    let idx = |x: usize, y: usize, z: usize| z * px * py + y * px + x;
    for z in grid.ghost..grid.ghost + grid.nz {
        for y in grid.ghost..grid.ghost + grid.ny {
            for x in grid.ghost..grid.ghost + grid.nx {
                // Neighbour sum in the same order as the x87 code.
                let nsum = ((((cells[idx(x - 1, y, z)] + cells[idx(x + 1, y, z)])
                    + cells[idx(x, y - 1, z)])
                    + cells[idx(x, y + 1, z)])
                    + cells[idx(x, y, z - 1)])
                    + cells[idx(x, y, z + 1)];
                let v = nsum * NEIGHBOR_WEIGHT + cells[idx(x, y, z)] * CENTER_WEIGHT;
                out.cells_mut()[idx(x, y, z)] = v;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Assembly generation
// ---------------------------------------------------------------------------

fn emit_smooth_kernel(asm: &mut Asm, grid: &Grid3D) -> u32 {
    let px = grid.px() as i64;
    let py = grid.py() as i64;
    let (nx, ny, nz) = (grid.nx as i64, grid.ny as i64, grid.nz as i64);
    let ghost = grid.ghost as i64;
    let row_bytes = px * 8;
    let plane_bytes = px * py * 8;
    let interior_off = (ghost * px * py + ghost * px + ghost) * 8;

    let q = |base: Reg, disp: i64| MemRef::base_disp(base, disp as i32, Width::B8);

    let entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.push(regs::edi());
    asm.push(regs::ebx());
    // esi = input cell pointer, edi = output cell pointer.
    asm.mov(regs::esi(), Operand::Imm(INPUT_BASE as i64 + interior_off));
    asm.mov(regs::edi(), Operand::Imm(OUTPUT_BASE as i64 + interior_off));
    asm.mov(regs::ecx(), Operand::Imm(0)); // z
    asm.label("z_loop");
    asm.mov(regs::ebx(), Operand::Imm(0)); // y
    asm.label("y_loop");
    asm.mov(regs::eax(), Operand::Imm(0)); // x
    asm.label("x_loop");
    // Neighbour sum on the FP stack.
    asm.fld(FpSrc::MemF64(q(Reg::Esi, -8)));
    asm.farith(FpOp::Add, FpSrc::MemF64(q(Reg::Esi, 8)));
    asm.farith(FpOp::Add, FpSrc::MemF64(q(Reg::Esi, -row_bytes)));
    asm.farith(FpOp::Add, FpSrc::MemF64(q(Reg::Esi, row_bytes)));
    asm.farith(FpOp::Add, FpSrc::MemF64(q(Reg::Esi, -plane_bytes)));
    asm.farith(FpOp::Add, FpSrc::MemF64(q(Reg::Esi, plane_bytes)));
    asm.farith(
        FpOp::Mul,
        FpSrc::MemF64(MemRef::absolute((CONST_BASE + 8) as i32, Width::B8)),
    );
    asm.fld(FpSrc::MemF64(q(Reg::Esi, 0)));
    asm.farith(
        FpOp::Mul,
        FpSrc::MemF64(MemRef::absolute(CONST_BASE as i32, Width::B8)),
    );
    asm.farith_to(FpOp::Add, 1);
    asm.fstp(FpSrc::MemF64(q(Reg::Edi, 0)));
    // Advance within the row.
    asm.add(regs::esi(), Operand::Imm(8));
    asm.add(regs::edi(), Operand::Imm(8));
    asm.inc(regs::eax());
    asm.cmp(regs::eax(), Operand::Imm(nx));
    asm.jcc(Cond::B, "x_loop");
    // Skip the ghost cells at the end of this row and the start of the next.
    asm.add(regs::esi(), Operand::Imm(2 * ghost * 8));
    asm.add(regs::edi(), Operand::Imm(2 * ghost * 8));
    asm.inc(regs::ebx());
    asm.cmp(regs::ebx(), Operand::Imm(ny));
    asm.jcc(Cond::B, "y_loop");
    // Skip the ghost rows between planes.
    asm.add(regs::esi(), Operand::Imm(2 * ghost * row_bytes));
    asm.add(regs::edi(), Operand::Imm(2 * ghost * row_bytes));
    asm.inc(regs::ecx());
    asm.cmp(regs::ecx(), Operand::Imm(nz));
    asm.jcc(Cond::B, "z_loop");
    asm.pop(regs::ebx());
    asm.pop(regs::edi());
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

fn build_program(grid: &Grid3D) -> (Program, u32, u32) {
    let mut kernel = Asm::new(KERNEL_BASE);
    let kernel_entry = emit_smooth_kernel(&mut kernel, grid);

    let mut main = Asm::new(MAIN_BASE);
    let main_entry = main.here();
    // Residual-norm-like background computation over a few cells (both runs).
    main.mov(regs::ecx(), Operand::Imm(0));
    main.label("bg_loop");
    main.fld(FpSrc::MemF64(MemRef::base_disp(
        Reg::Ecx,
        INPUT_BASE as i32,
        Width::B8,
    )));
    main.farith(FpOp::Mul, FpSrc::St(0));
    main.fstp(FpSrc::MemF64(MemRef::absolute(
        (FLAG_ADDR + 0x10) as i32,
        Width::B8,
    )));
    main.add(regs::ecx(), Operand::Imm(8));
    main.cmp(regs::ecx(), Operand::Imm(64));
    main.jcc(Cond::B, "bg_loop");
    main.mov(
        regs::eax(),
        Operand::Mem(MemRef::absolute(FLAG_ADDR as i32, Width::B4)),
    );
    main.test(regs::eax(), regs::eax());
    main.jcc(Cond::Z, "skip");
    main.call(kernel_entry);
    main.label("skip");
    main.halt();

    let mut program = Program::new();
    program.add_module("minigmg", main.finish());
    program.add_module("smooth.o", kernel.finish());
    program.add_function(main_entry, Some("main"));
    program.add_function(kernel_entry, None);
    (program, main_entry, kernel_entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_kernel_matches_reference() {
        let grid = Grid3D::random(6, 5, 4, 1, 77);
        let app = MiniGmg::new(grid.clone());
        let vm_out = app.run_in_vm();
        let reference = app.reference_output();
        for z in 0..4 {
            for y in 0..5 {
                for x in 0..6 {
                    let a = vm_out.get(x, y, z);
                    let b = reference.get(x, y, z);
                    assert!(
                        (a - b).abs() < 1e-12,
                        "mismatch at ({x},{y},{z}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn without_kernel_output_is_untouched() {
        let app = MiniGmg::new(Grid3D::random(4, 4, 4, 1, 1));
        let mut cpu = app.fresh_cpu(false);
        cpu.run(app.program(), 100_000_000, |_, _| {})
            .expect("runs");
        let out = app.read_output(&cpu);
        assert!(out.cells().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_and_sizes() {
        let app = MiniGmg::new(Grid3D::new(8, 6, 4, 1));
        assert_eq!(
            app.shape(),
            GridShape {
                nx: 8,
                ny: 6,
                nz: 4
            }
        );
        assert_eq!(app.approx_data_size(), 10 * 8 * 6 * 8);
        assert!(app.input_addr() < app.output_addr());
    }
}
