//! "PhotoFlow": the Photoshop-like legacy image editor.
//!
//! PhotoFlow stores images as three planar channels with one pixel of edge
//! padding and 16-byte-aligned scanlines, and applies its filters through a
//! tiled driver that hands the filter function one band of scanlines at a
//! time — the structure the paper describes for Photoshop. The filter
//! functions themselves are hand-written in the `helium-machine` ISA with the
//! optimization idioms that make lifting hard: unrolled inner loops with
//! fix-up iterations, three row pointers walked in lockstep, stack-spilled
//! locals, partial-register stores, input-dependent conditionals (threshold),
//! table lookups (brightness) and histogram reductions (equalize).

use crate::image::PlanarImage;
use helium_machine::asm::Asm;
use helium_machine::isa::{regs, Cond, MemRef, Operand, Reg, Width};
use helium_machine::program::Program;
use helium_machine::Cpu;
use serde::{Deserialize, Serialize};

/// Tile height (scanlines per filter-function invocation) used by the driver.
pub const TILE_ROWS: u32 = 8;

/// Base address of the main executable module.
const MAIN_BASE: u32 = 0x0040_0000;
/// Base address of the filter "DLL".
const FILTER_DLL_BASE: u32 = 0x1000_0000;
/// Base address of the input image planes.
const INPUT_BASE: u32 = 0x0EA2_0000;
/// Base address of the output image planes.
const OUTPUT_BASE: u32 = 0x0D32_0000;
/// Address of the run-filter flag (u32).
const FLAG_ADDR: u32 = 0x0C00_0000;
/// Address of the threshold parameter (u32).
const THRESHOLD_ADDR: u32 = 0x0C00_0004;
/// Address of the 256-entry brightness lookup table.
const LUT_ADDR: u32 = 0x0C10_0000;
/// Address of the 256-entry u32 histogram.
const HIST_ADDR: u32 = 0x0C20_0000;
/// Scratch area used by background (non-kernel) code.
const BG_SCRATCH: u32 = 0x0C30_0000;
/// Gap left between consecutive planes so buffer reconstruction can separate them.
const PLANE_GAP: u32 = 256;

/// The PhotoFlow filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhotoFilter {
    /// Pointwise bitwise inversion.
    Invert,
    /// 5-point weighted blur.
    Blur,
    /// 9-point weighted blur ("blur more").
    BlurMore,
    /// 5-point sharpen.
    Sharpen,
    /// 9-point sharpen ("sharpen more").
    SharpenMore,
    /// Pointwise threshold on luminance (input-dependent conditional).
    Threshold,
    /// Radius-1 box blur (9-point equal weights via fixed-point division).
    BoxBlur,
    /// Pointwise brightness adjustment through a lookup table.
    Brightness,
    /// Histogram computation (the lifted part of histogram equalization).
    Equalize,
}

impl PhotoFilter {
    /// All filters, in the order used by the evaluation tables.
    pub const ALL: [PhotoFilter; 9] = [
        PhotoFilter::Invert,
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Sharpen,
        PhotoFilter::SharpenMore,
        PhotoFilter::Threshold,
        PhotoFilter::BoxBlur,
        PhotoFilter::Brightness,
        PhotoFilter::Equalize,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PhotoFilter::Invert => "invert",
            PhotoFilter::Blur => "blur",
            PhotoFilter::BlurMore => "blur_more",
            PhotoFilter::Sharpen => "sharpen",
            PhotoFilter::SharpenMore => "sharpen_more",
            PhotoFilter::Threshold => "threshold",
            PhotoFilter::BoxBlur => "box_blur",
            PhotoFilter::Brightness => "brightness",
            PhotoFilter::Equalize => "equalize",
        }
    }

    /// Stencil taps `(dx, dy, weight)`, bias and shift for the weighted-stencil
    /// filters; `None` for the pointwise/reduction filters.
    #[allow(clippy::type_complexity)]
    pub fn stencil_spec(self) -> Option<(Vec<(i32, i32, u32)>, u32, u32)> {
        match self {
            PhotoFilter::Blur => Some((
                vec![(0, 0, 4), (-1, 0, 1), (1, 0, 1), (0, -1, 1), (0, 1, 1)],
                4,
                3,
            )),
            PhotoFilter::BlurMore => Some((
                vec![
                    (0, 0, 8),
                    (-1, -1, 1),
                    (0, -1, 1),
                    (1, -1, 1),
                    (-1, 0, 1),
                    (1, 0, 1),
                    (-1, 1, 1),
                    (0, 1, 1),
                    (1, 1, 1),
                ],
                8,
                4,
            )),
            PhotoFilter::Sharpen => Some((
                // (8c - l - r - u - d + 2) >> 2, computed in wrapping u32.
                vec![
                    (0, 0, 8),
                    (-1, 0, 0u32.wrapping_sub(1)),
                    (1, 0, 0u32.wrapping_sub(1)),
                    (0, -1, 0u32.wrapping_sub(1)),
                    (0, 1, 0u32.wrapping_sub(1)),
                ],
                2,
                2,
            )),
            PhotoFilter::SharpenMore => Some((
                // (16c - sum of 8 neighbours + 4) >> 3, wrapping u32.
                vec![
                    (0, 0, 16),
                    (-1, -1, 0u32.wrapping_sub(1)),
                    (0, -1, 0u32.wrapping_sub(1)),
                    (1, -1, 0u32.wrapping_sub(1)),
                    (-1, 0, 0u32.wrapping_sub(1)),
                    (1, 0, 0u32.wrapping_sub(1)),
                    (-1, 1, 0u32.wrapping_sub(1)),
                    (0, 1, 0u32.wrapping_sub(1)),
                    (1, 1, 0u32.wrapping_sub(1)),
                ],
                4,
                3,
            )),
            PhotoFilter::BoxBlur => Some((
                // 3x3 equal weights scaled by 7282 (~65536/9), shifted by 16:
                // a fixed-point division by nine.
                vec![
                    (0, 0, 7282),
                    (-1, -1, 7282),
                    (0, -1, 7282),
                    (1, -1, 7282),
                    (-1, 0, 7282),
                    (1, 0, 7282),
                    (-1, 1, 7282),
                    (0, 1, 7282),
                    (1, 1, 7282),
                ],
                32768,
                16,
            )),
            _ => None,
        }
    }

    /// Whether the filter is a pointwise operation over whole planes.
    pub fn is_pointwise(self) -> bool {
        matches!(
            self,
            PhotoFilter::Invert
                | PhotoFilter::Threshold
                | PhotoFilter::Brightness
                | PhotoFilter::Equalize
        )
    }
}

/// Memory layout of one PhotoFlow run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotoLayout {
    /// Base address of each input plane (R, G, B).
    pub input_planes: [u32; 3],
    /// Base address of each output plane (R, G, B).
    pub output_planes: [u32; 3],
    /// Scanline stride in bytes.
    pub stride: u32,
    /// Number of padded rows per plane.
    pub padded_rows: u32,
    /// Logical image width.
    pub width: u32,
    /// Logical image height.
    pub height: u32,
    /// Edge padding in pixels.
    pub pad: u32,
}

impl PhotoLayout {
    fn for_image(image: &PlanarImage) -> PhotoLayout {
        let stride = image.stride() as u32;
        let padded_rows = image.planes[0].padded_rows() as u32;
        let plane_bytes = stride * padded_rows;
        let plane_addr = |base: u32, i: u32| base + i * (plane_bytes + PLANE_GAP);
        PhotoLayout {
            input_planes: [
                plane_addr(INPUT_BASE, 0),
                plane_addr(INPUT_BASE, 1),
                plane_addr(INPUT_BASE, 2),
            ],
            output_planes: [
                plane_addr(OUTPUT_BASE, 0),
                plane_addr(OUTPUT_BASE, 1),
                plane_addr(OUTPUT_BASE, 2),
            ],
            stride,
            padded_rows,
            width: image.width() as u32,
            height: image.height() as u32,
            pad: image.planes[0].pad as u32,
        }
    }

    /// Size of one plane in bytes.
    pub fn plane_bytes(&self) -> u32 {
        self.stride * self.padded_rows
    }

    /// Address of the first interior pixel of input plane `p`.
    pub fn input_interior(&self, p: usize) -> u32 {
        self.input_planes[p] + self.pad * self.stride + self.pad
    }

    /// Address of the first interior pixel of output plane `p`.
    pub fn output_interior(&self, p: usize) -> u32 {
        self.output_planes[p] + self.pad * self.stride + self.pad
    }
}

/// One PhotoFlow application instance, configured for a single filter.
#[derive(Debug, Clone)]
pub struct PhotoFlow {
    filter: PhotoFilter,
    image: PlanarImage,
    layout: PhotoLayout,
    program: Program,
    main_entry: u32,
    filter_entry: u32,
    threshold: u8,
    brightness: i32,
}

impl PhotoFlow {
    /// Build a PhotoFlow instance around an image and a filter.
    pub fn new(filter: PhotoFilter, image: PlanarImage) -> PhotoFlow {
        PhotoFlow::with_params(filter, image, 128, 40)
    }

    /// Build with explicit threshold / brightness parameters.
    pub fn with_params(
        filter: PhotoFilter,
        image: PlanarImage,
        threshold: u8,
        brightness: i32,
    ) -> PhotoFlow {
        let layout = PhotoLayout::for_image(&image);
        let (program, main_entry, filter_entry) = build_program(filter, &layout);
        PhotoFlow {
            filter,
            image,
            layout,
            program,
            main_entry,
            filter_entry,
            threshold,
            brightness,
        }
    }

    /// The filter this instance applies.
    pub fn filter(&self) -> PhotoFilter {
        self.filter
    }

    /// The input image.
    pub fn image(&self) -> &PlanarImage {
        &self.image
    }

    /// The memory layout of this run.
    pub fn layout(&self) -> &PhotoLayout {
        &self.layout
    }

    /// The loaded program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The (stripped, unadvertised) entry address of the filter function.
    /// Only used by tests; Helium has to find it by itself.
    pub fn filter_entry_for_reference(&self) -> u32 {
        self.filter_entry
    }

    /// Threshold parameter (0-255).
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// Brightness parameter (-255..=255).
    pub fn brightness(&self) -> i32 {
        self.brightness
    }

    /// Prepare a CPU for one run of the application.
    ///
    /// `with_filter` controls whether the filter is applied (`false` produces
    /// the "same run without the kernel" needed for coverage differencing).
    pub fn fresh_cpu(&self, with_filter: bool) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.pc = self.main_entry;
        // Input planes.
        for (p, plane) in self.image.planes.iter().enumerate() {
            cpu.mem
                .write_bytes(self.layout.input_planes[p], plane.bytes());
        }
        // Parameters and flags.
        cpu.mem.write_u32(FLAG_ADDR, with_filter as u32);
        cpu.mem.write_u32(THRESHOLD_ADDR, self.threshold as u32);
        // The brightness LUT is prepared by the host application (outside the
        // filter function), exactly like Photoshop computes it from the dialog
        // parameter: lut[v] = clamp(v + brightness, 0, 255).
        if self.filter == PhotoFilter::Brightness {
            for v in 0..256i32 {
                let out = (v + self.brightness).clamp(0, 255) as u8;
                cpu.mem.write_u8(LUT_ADDR + v as u32, out);
            }
        }
        cpu
    }

    /// Known input data (interior scanlines per plane) for dimension inference.
    pub fn known_input_rows(&self) -> Vec<Vec<Vec<u8>>> {
        self.image
            .planes
            .iter()
            .map(|p| p.interior_rows())
            .collect()
    }

    /// Known output data (interior scanlines per plane), computed by the
    /// native reference implementation.
    pub fn known_output_rows(&self) -> Vec<Vec<Vec<u8>>> {
        if self.filter == PhotoFilter::Equalize {
            // The histogram output is not an image; no known output data.
            return Vec::new();
        }
        let out = self.reference_output();
        out.planes.iter().map(|p| p.interior_rows()).collect()
    }

    /// Approximate size of the image data, used to pick candidate instructions.
    pub fn approx_data_size(&self) -> usize {
        self.layout.plane_bytes() as usize
    }

    /// Run the legacy binary inside the VM and return the produced output image.
    ///
    /// # Panics
    /// Panics if the interpreter fails (the binary is trusted to be correct).
    pub fn run_in_vm(&self) -> PlanarImage {
        let mut cpu = self.fresh_cpu(true);
        cpu.run(&self.program, 2_000_000_000, |_, _| {})
            .expect("legacy binary runs");
        self.read_output(&cpu)
    }

    /// Run the legacy binary and return the number of executed instructions.
    ///
    /// # Panics
    /// Panics if the interpreter fails.
    pub fn run_in_vm_counting(&self) -> u64 {
        let mut cpu = self.fresh_cpu(true);
        cpu.run(&self.program, 2_000_000_000, |_, _| {})
            .expect("legacy binary runs")
    }

    /// Extract the output image from a finished CPU.
    pub fn read_output(&self, cpu: &Cpu) -> PlanarImage {
        let mut out = PlanarImage::new(
            self.image.width(),
            self.image.height(),
            self.image.planes[0].pad,
            self.image.planes[0].align,
        );
        for (p, plane) in out.planes.iter_mut().enumerate() {
            let bytes = cpu
                .mem
                .read_bytes(self.layout.output_planes[p], self.layout.plane_bytes());
            plane.bytes_mut().copy_from_slice(&bytes);
        }
        out
    }

    /// Extract the histogram (for the equalize filter) from a finished CPU.
    pub fn read_histogram(cpu: &Cpu) -> Vec<u32> {
        (0..256)
            .map(|i| cpu.mem.read_u32(HIST_ADDR + 4 * i))
            .collect()
    }

    /// Address of the brightness lookup table (an input buffer of the lifted
    /// brightness kernel).
    pub fn lut_addr() -> u32 {
        LUT_ADDR
    }

    /// Address of the histogram buffer (the output of the lifted equalize kernel).
    pub fn hist_addr() -> u32 {
        HIST_ADDR
    }

    /// The native scalar reference implementation of the filter (single
    /// thread, mirrors the legacy algorithm exactly; used as the correctness
    /// oracle and as the "native legacy port" baseline in the benchmarks).
    pub fn reference_output(&self) -> PlanarImage {
        reference_filter(self.filter, &self.image, self.threshold, self.brightness)
    }

    /// Reference histogram of the red plane (for the equalize filter).
    pub fn reference_histogram(&self) -> Vec<u32> {
        let mut hist = vec![0u32; 256];
        let plane = &self.image.planes[0];
        for &b in plane.bytes() {
            hist[b as usize] += 1;
        }
        hist
    }
}

/// Native scalar implementation of a PhotoFlow filter, matching the legacy
/// assembly bit for bit (wrapping 32-bit arithmetic, same padding behaviour).
pub fn reference_filter(
    filter: PhotoFilter,
    image: &PlanarImage,
    threshold: u8,
    brightness: i32,
) -> PlanarImage {
    let mut out = PlanarImage::new(
        image.width(),
        image.height(),
        image.planes[0].pad,
        image.planes[0].align,
    );
    let stride = image.stride();
    let padded_rows = image.planes[0].padded_rows();
    let pad = image.planes[0].pad;
    match filter {
        PhotoFilter::Invert => {
            for p in 0..3 {
                let src = image.planes[p].bytes();
                let dst = out.planes[p].bytes_mut();
                for i in 0..src.len() {
                    dst[i] = src[i] ^ 0xff;
                }
            }
        }
        PhotoFilter::Threshold => {
            let total = stride * padded_rows;
            for i in 0..total {
                let r = image.planes[0].bytes()[i] as u32;
                let g = image.planes[1].bytes()[i] as u32;
                let b = image.planes[2].bytes()[i] as u32;
                let lum = (77 * r + 151 * g + 28 * b) >> 8;
                let v = if lum > threshold as u32 { 255 } else { 0 };
                for plane in out.planes.iter_mut() {
                    plane.bytes_mut()[i] = v;
                }
            }
        }
        PhotoFilter::Brightness => {
            let mut lut = [0u8; 256];
            for (v, slot) in lut.iter_mut().enumerate() {
                *slot = (v as i32 + brightness).clamp(0, 255) as u8;
            }
            for p in 0..3 {
                let src = image.planes[p].bytes();
                let dst = out.planes[p].bytes_mut();
                for i in 0..src.len() {
                    dst[i] = lut[src[i] as usize];
                }
            }
        }
        PhotoFilter::Equalize => {
            // The lifted portion is the histogram; the output image is unchanged.
        }
        _ => {
            let (taps, bias, shift) = filter.stencil_spec().expect("stencil filters have a spec");
            for p in 0..3 {
                let src = image.planes[p].bytes();
                let dst = out.planes[p].bytes_mut();
                for y in 0..image.height() {
                    for x in 0..image.width() {
                        let mut acc: u32 = bias;
                        for &(dx, dy, w) in &taps {
                            let sx = (x + pad) as i64 + dx as i64;
                            let sy = (y + pad) as i64 + dy as i64;
                            let v = src[sy as usize * stride + sx as usize] as u32;
                            acc = acc.wrapping_add(v.wrapping_mul(w));
                        }
                        dst[(y + pad) * stride + x + pad] = (acc >> shift) as u8;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Assembly generation
// ---------------------------------------------------------------------------

fn mem8(base: Reg, disp: i32) -> MemRef {
    MemRef::base_disp(base, disp, Width::B1)
}

fn mem32(base: Reg, disp: i32) -> MemRef {
    MemRef::base_disp(base, disp, Width::B4)
}

/// `width ptr [index*scale + disp]` (no base register), used for table indexing.
fn mem_index(index: Reg, scale: u8, disp: i32, width: Width) -> MemRef {
    MemRef {
        base: None,
        index: Some(index),
        scale,
        disp,
        width,
    }
}

/// Emit the weighted-stencil computation for the pixel at `offset` from the
/// current row pointers (`eax` = current row, `esi` = previous row, `edi` =
/// next row). The result byte is stored through the destination pointer
/// spilled at `[ebp-4]`.
fn emit_stencil_pixel(asm: &mut Asm, taps: &[(i32, i32, u32)], bias: u32, shift: u32, offset: i32) {
    // ecx accumulates the weighted sum, ebx is the per-tap temporary.
    asm.mov(regs::ecx(), Operand::Imm(bias as i64));
    for &(dx, dy, w) in taps {
        let row = match dy {
            -1 => Reg::Esi,
            0 => Reg::Eax,
            1 => Reg::Edi,
            _ => unreachable!("taps are within a 3x3 window"),
        };
        asm.movzx(regs::ebx(), Operand::Mem(mem8(row, offset + dx)));
        if w != 1 {
            asm.imul(regs::ebx(), Operand::Imm(w as i64));
        }
        asm.add(regs::ecx(), regs::ebx());
    }
    asm.shr(regs::ecx(), Operand::Imm(shift as i64));
    asm.mov(regs::ebx(), Operand::Mem(mem32(Reg::Ebp, -4)));
    asm.mov(Operand::Mem(mem8(Reg::Ebx, offset)), regs::cl());
}

/// Emit a weighted-stencil filter function (the "filter function" Helium has
/// to localize). Arguments, cdecl-style:
/// `[ebp+8]=src`, `[ebp+12]=dst`, `[ebp+16]=width`, `[ebp+20]=rows`,
/// `[ebp+24]=src_stride`, `[ebp+28]=dst_stride`.
fn emit_stencil_filter(asm: &mut Asm, taps: &[(i32, i32, u32)], bias: u32, shift: u32) -> u32 {
    const UNROLL: i64 = 2;
    let entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.sub(regs::esp(), Operand::Imm(0x10));
    asm.push(regs::ebx());
    asm.push(regs::esi());
    asm.push(regs::edi());
    // eax = current source row, esi = previous row, edi = next row.
    asm.mov(regs::eax(), Operand::Mem(mem32(Reg::Ebp, 8)));
    asm.mov(regs::esi(), regs::eax());
    asm.sub(regs::esi(), Operand::Mem(mem32(Reg::Ebp, 24)));
    asm.mov(regs::edi(), regs::eax());
    asm.add(regs::edi(), Operand::Mem(mem32(Reg::Ebp, 24)));
    // [ebp-4] = destination pointer, [ebp-12] = rows remaining.
    asm.mov(regs::edx(), Operand::Mem(mem32(Reg::Ebp, 12)));
    asm.mov(Operand::Mem(mem32(Reg::Ebp, -4)), regs::edx());
    asm.mov(regs::edx(), Operand::Mem(mem32(Reg::Ebp, 20)));
    asm.mov(Operand::Mem(mem32(Reg::Ebp, -12)), regs::edx());

    asm.label("row_loop");
    // [ebp-8] = end of row, [ebp-16] = end of the unrolled portion.
    asm.mov(regs::edx(), Operand::Mem(mem32(Reg::Ebp, 16)));
    asm.add(regs::edx(), regs::eax());
    asm.mov(Operand::Mem(mem32(Reg::Ebp, -8)), regs::edx());
    asm.sub(regs::edx(), Operand::Imm(UNROLL - 1));
    asm.mov(Operand::Mem(mem32(Reg::Ebp, -16)), regs::edx());
    asm.cmp(regs::eax(), Operand::Mem(mem32(Reg::Ebp, -16)));
    asm.jcc(Cond::Nb, "fixup_entry");

    asm.label("unrolled_loop");
    for k in 0..UNROLL {
        emit_stencil_pixel(asm, taps, bias, shift, k as i32);
    }
    asm.add(regs::eax(), Operand::Imm(UNROLL));
    asm.add(regs::esi(), Operand::Imm(UNROLL));
    asm.add(regs::edi(), Operand::Imm(UNROLL));
    asm.add(Operand::Mem(mem32(Reg::Ebp, -4)), Operand::Imm(UNROLL));
    asm.cmp(regs::eax(), Operand::Mem(mem32(Reg::Ebp, -16)));
    asm.jcc(Cond::B, "unrolled_loop");

    asm.label("fixup_entry");
    asm.cmp(regs::eax(), Operand::Mem(mem32(Reg::Ebp, -8)));
    asm.jcc(Cond::Nb, "row_done");
    asm.label("fixup_loop");
    emit_stencil_pixel(asm, taps, bias, shift, 0);
    asm.inc(regs::eax());
    asm.inc(regs::esi());
    asm.inc(regs::edi());
    asm.inc(Operand::Mem(mem32(Reg::Ebp, -4)));
    asm.cmp(regs::eax(), Operand::Mem(mem32(Reg::Ebp, -8)));
    asm.jcc(Cond::B, "fixup_loop");

    asm.label("row_done");
    // Advance all pointers to the next scanline.
    asm.mov(regs::edx(), Operand::Mem(mem32(Reg::Ebp, 24)));
    asm.sub(regs::edx(), Operand::Mem(mem32(Reg::Ebp, 16)));
    asm.add(regs::eax(), regs::edx());
    asm.add(regs::esi(), regs::edx());
    asm.add(regs::edi(), regs::edx());
    asm.mov(regs::ecx(), Operand::Mem(mem32(Reg::Ebp, 28)));
    asm.sub(regs::ecx(), Operand::Mem(mem32(Reg::Ebp, 16)));
    asm.add(Operand::Mem(mem32(Reg::Ebp, -4)), regs::ecx());
    asm.dec(Operand::Mem(mem32(Reg::Ebp, -12)));
    asm.jcc(Cond::Nz, "row_loop");

    asm.pop(regs::edi());
    asm.pop(regs::esi());
    asm.pop(regs::ebx());
    asm.mov(regs::esp(), regs::ebp());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit the pointwise invert filter over all three planes (4x unrolled).
fn emit_invert_filter(asm: &mut Asm, layout: &PhotoLayout) -> u32 {
    let entry = asm.here();
    let total = layout.plane_bytes() as i64;
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.push(regs::ebx());
    for p in 0..3 {
        let src = layout.input_planes[p] as i64;
        let dst = layout.output_planes[p] as i64;
        let loop_label = format!("inv_loop_{p}");
        let fix_label = format!("inv_fix_{p}");
        let fix_loop = format!("inv_fix_loop_{p}");
        let done = format!("inv_done_{p}");
        asm.mov(regs::esi(), Operand::Imm(0));
        asm.label(&loop_label);
        for k in 0..4i64 {
            asm.movzx(
                regs::eax(),
                Operand::Mem(MemRef::sib(
                    Reg::Esi,
                    Reg::Esi,
                    0,
                    (src + k) as i32,
                    Width::B1,
                )),
            );
            asm.xor(regs::eax(), Operand::Imm(0xff));
            asm.mov(
                Operand::Mem(MemRef::sib(
                    Reg::Esi,
                    Reg::Esi,
                    0,
                    (dst + k) as i32,
                    Width::B1,
                )),
                regs::al(),
            );
        }
        asm.add(regs::esi(), Operand::Imm(4));
        asm.mov(regs::ebx(), Operand::Imm(total - 3));
        asm.cmp(regs::esi(), regs::ebx());
        asm.jcc(Cond::B, &loop_label);
        // Fix-up loop for the last (total % 4) bytes.
        asm.label(&fix_label);
        asm.cmp(regs::esi(), Operand::Imm(total));
        asm.jcc(Cond::Nb, &done);
        asm.label(&fix_loop);
        asm.movzx(
            regs::eax(),
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, src as i32, Width::B1)),
        );
        asm.xor(regs::eax(), Operand::Imm(0xff));
        asm.mov(
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, dst as i32, Width::B1)),
            regs::al(),
        );
        asm.inc(regs::esi());
        asm.cmp(regs::esi(), Operand::Imm(total));
        asm.jcc(Cond::B, &fix_loop);
        asm.label(&done);
        asm.nop();
    }
    asm.pop(regs::ebx());
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit the threshold filter: luminance against a runtime parameter, writing
/// 0 or 255 to all three output planes (one input-dependent conditional).
fn emit_threshold_filter(asm: &mut Asm, layout: &PhotoLayout) -> u32 {
    let entry = asm.here();
    let total = layout.plane_bytes() as i64;
    let (r, g, b) = (
        layout.input_planes[0] as i32,
        layout.input_planes[1] as i32,
        layout.input_planes[2] as i32,
    );
    let (or, og, ob) = (
        layout.output_planes[0] as i32,
        layout.output_planes[1] as i32,
        layout.output_planes[2] as i32,
    );
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.push(regs::ebx());
    asm.mov(regs::esi(), Operand::Imm(0));
    asm.label("th_loop");
    asm.movzx(
        regs::eax(),
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, r, Width::B1)),
    );
    asm.imul(regs::eax(), Operand::Imm(77));
    asm.movzx(
        regs::ebx(),
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, g, Width::B1)),
    );
    asm.imul(regs::ebx(), Operand::Imm(151));
    asm.add(regs::eax(), regs::ebx());
    asm.movzx(
        regs::ebx(),
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, b, Width::B1)),
    );
    asm.imul(regs::ebx(), Operand::Imm(28));
    asm.add(regs::eax(), regs::ebx());
    asm.shr(regs::eax(), Operand::Imm(8));
    asm.cmp(
        regs::eax(),
        Operand::Mem(MemRef::absolute(THRESHOLD_ADDR as i32, Width::B4)),
    );
    asm.jcc(Cond::A, "th_white");
    asm.mov(regs::ebx(), Operand::Imm(0));
    asm.jmp("th_store");
    asm.label("th_white");
    asm.mov(regs::ebx(), Operand::Imm(255));
    asm.label("th_store");
    asm.mov(
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, or, Width::B1)),
        regs::bl(),
    );
    asm.mov(
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, og, Width::B1)),
        regs::bl(),
    );
    asm.mov(
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, ob, Width::B1)),
        regs::bl(),
    );
    asm.inc(regs::esi());
    asm.cmp(regs::esi(), Operand::Imm(total));
    asm.jcc(Cond::B, "th_loop");
    asm.pop(regs::ebx());
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit the brightness filter: a pointwise lookup-table application (the table
/// itself is prepared by the host application before the filter runs).
fn emit_brightness_filter(asm: &mut Asm, layout: &PhotoLayout) -> u32 {
    let entry = asm.here();
    let total = layout.plane_bytes() as i64;
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.push(regs::ebx());
    for p in 0..3 {
        let src = layout.input_planes[p] as i32;
        let dst = layout.output_planes[p] as i32;
        let loop_label = format!("br_loop_{p}");
        asm.mov(regs::esi(), Operand::Imm(0));
        asm.label(&loop_label);
        asm.movzx(
            regs::eax(),
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, src, Width::B1)),
        );
        // Indirect (table) access: the address depends on the input value.
        asm.movzx(
            regs::ebx(),
            Operand::Mem(MemRef::sib(
                Reg::Eax,
                Reg::Eax,
                0,
                LUT_ADDR as i32,
                Width::B1,
            )),
        );
        asm.mov(
            Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, dst, Width::B1)),
            regs::bl(),
        );
        asm.inc(regs::esi());
        asm.cmp(regs::esi(), Operand::Imm(total));
        asm.jcc(Cond::B, &loop_label);
    }
    asm.pop(regs::ebx());
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit the histogram part of the equalize filter: zero 256 bins, then
/// increment the bin selected by each input pixel of the red plane.
fn emit_equalize_filter(asm: &mut Asm, layout: &PhotoLayout) -> u32 {
    let entry = asm.here();
    let total = layout.plane_bytes() as i64;
    let src = layout.input_planes[0] as i32;
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    // Zero the histogram.
    asm.mov(regs::esi(), Operand::Imm(0));
    asm.label("eq_zero");
    asm.mov(
        Operand::Mem(mem_index(Reg::Esi, 4, HIST_ADDR as i32, Width::B4)),
        Operand::Imm(0),
    );
    asm.inc(regs::esi());
    asm.cmp(regs::esi(), Operand::Imm(256));
    asm.jcc(Cond::B, "eq_zero");
    // Accumulate.
    asm.mov(regs::esi(), Operand::Imm(0));
    asm.label("eq_loop");
    asm.movzx(
        regs::eax(),
        Operand::Mem(MemRef::sib(Reg::Esi, Reg::Esi, 0, src, Width::B1)),
    );
    asm.add(
        Operand::Mem(mem_index(Reg::Eax, 4, HIST_ADDR as i32, Width::B4)),
        Operand::Imm(1),
    );
    asm.inc(regs::esi());
    asm.cmp(regs::esi(), Operand::Imm(total));
    asm.jcc(Cond::B, "eq_loop");
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit the tiled driver that hands bands of scanlines to a stencil filter
/// function, once per plane.
fn emit_stencil_driver(asm: &mut Asm, layout: &PhotoLayout, filter_entry: u32) -> u32 {
    let entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.push(regs::esi());
    asm.push(regs::edi());
    asm.push(regs::ebx());
    for p in 0..3 {
        let tile_label = format!("tile_loop_{p}");
        let clamp_label = format!("tile_clamp_{p}");
        let call_label = format!("tile_call_{p}");
        asm.mov(regs::esi(), Operand::Imm(layout.input_interior(p) as i64));
        asm.mov(regs::edi(), Operand::Imm(layout.output_interior(p) as i64));
        // ebx tracks the rows already processed; the filter function preserves
        // ebx/esi/edi but clobbers eax/ecx/edx.
        asm.mov(regs::ebx(), Operand::Imm(0));
        asm.label(&tile_label);
        // eax = min(TILE_ROWS, height - ebx)
        asm.mov(regs::eax(), Operand::Imm(layout.height as i64));
        asm.sub(regs::eax(), regs::ebx());
        asm.cmp(regs::eax(), Operand::Imm(TILE_ROWS as i64));
        asm.jcc(Cond::Be, &call_label);
        asm.label(&clamp_label);
        asm.mov(regs::eax(), Operand::Imm(TILE_ROWS as i64));
        asm.label(&call_label);
        asm.push(Operand::Imm(layout.stride as i64));
        asm.push(Operand::Imm(layout.stride as i64));
        asm.push(regs::eax());
        asm.push(Operand::Imm(layout.width as i64));
        asm.push(regs::edi());
        asm.push(regs::esi());
        asm.call(filter_entry);
        asm.add(regs::esp(), Operand::Imm(24));
        asm.add(
            regs::esi(),
            Operand::Imm((TILE_ROWS * layout.stride) as i64),
        );
        asm.add(
            regs::edi(),
            Operand::Imm((TILE_ROWS * layout.stride) as i64),
        );
        asm.add(regs::ebx(), Operand::Imm(TILE_ROWS as i64));
        asm.cmp(regs::ebx(), Operand::Imm(layout.height as i64));
        asm.jcc(Cond::B, &tile_label);
    }
    asm.pop(regs::ebx());
    asm.pop(regs::edi());
    asm.pop(regs::esi());
    asm.pop(regs::ebp());
    asm.ret();
    entry
}

/// Emit innocuous background code that runs in every execution: a checksum
/// over a small header area and a fake UI update loop. Coverage differencing
/// screens these blocks out because they execute with and without the filter.
fn emit_background(asm: &mut Asm) -> (u32, u32) {
    let checksum_entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.mov(regs::eax(), Operand::Imm(0));
    asm.mov(regs::ecx(), Operand::Imm(0));
    asm.label("bg_sum");
    asm.movzx(
        regs::edx(),
        Operand::Mem(MemRef::sib(
            Reg::Ecx,
            Reg::Ecx,
            0,
            BG_SCRATCH as i32,
            Width::B1,
        )),
    );
    asm.add(regs::eax(), regs::edx());
    asm.inc(regs::ecx());
    asm.cmp(regs::ecx(), Operand::Imm(64));
    asm.jcc(Cond::B, "bg_sum");
    asm.mov(
        Operand::Mem(MemRef::absolute((BG_SCRATCH + 64) as i32, Width::B4)),
        regs::eax(),
    );
    asm.pop(regs::ebp());
    asm.ret();

    let ui_entry = asm.here();
    asm.push(regs::ebp());
    asm.mov(regs::ebp(), regs::esp());
    asm.mov(regs::ecx(), Operand::Imm(0));
    asm.label("bg_ui");
    asm.mov(
        Operand::Mem(mem_index(Reg::Ecx, 4, (BG_SCRATCH + 128) as i32, Width::B4)),
        regs::ecx(),
    );
    asm.inc(regs::ecx());
    asm.cmp(regs::ecx(), Operand::Imm(16));
    asm.jcc(Cond::B, "bg_ui");
    asm.pop(regs::ebp());
    asm.ret();
    (checksum_entry, ui_entry)
}

/// Build the complete PhotoFlow program for one filter.
fn build_program(filter: PhotoFilter, layout: &PhotoLayout) -> (Program, u32, u32) {
    // Filter "DLL": the filter function (and the tiled driver for stencils).
    let mut dll = Asm::new(FILTER_DLL_BASE);
    let (filter_entry, dll_entry_for_main) = match filter {
        PhotoFilter::Invert => {
            let e = emit_invert_filter(&mut dll, layout);
            (e, e)
        }
        PhotoFilter::Threshold => {
            let e = emit_threshold_filter(&mut dll, layout);
            (e, e)
        }
        PhotoFilter::Brightness => {
            let e = emit_brightness_filter(&mut dll, layout);
            (e, e)
        }
        PhotoFilter::Equalize => {
            let e = emit_equalize_filter(&mut dll, layout);
            (e, e)
        }
        _ => {
            let (taps, bias, shift) = filter.stencil_spec().expect("stencil filter");
            let filter_fn = emit_stencil_filter(&mut dll, &taps, bias, shift);
            let driver = emit_stencil_driver(&mut dll, layout, filter_fn);
            (filter_fn, driver)
        }
    };

    // Main module: background code plus the conditional filter invocation.
    let mut main = Asm::new(MAIN_BASE);
    let main_entry = main.here();
    main.call("bg_checksum");
    main.call("bg_ui_update");
    main.mov(
        regs::eax(),
        Operand::Mem(MemRef::absolute(FLAG_ADDR as i32, Width::B4)),
    );
    main.test(regs::eax(), regs::eax());
    main.jcc(Cond::Z, "skip_filter");
    main.call(dll_entry_for_main);
    main.label("skip_filter");
    main.halt();
    main.label("bg_checksum");
    // Thunks so the background functions live in the main module.
    main.jmp("bg_checksum_impl");
    main.label("bg_ui_update");
    main.jmp("bg_ui_impl");
    main.label("bg_checksum_impl");
    main.nop();
    main.jmp("bg_real");
    main.label("bg_ui_impl");
    main.nop();
    main.jmp("bg_real_ui");
    // Real background implementations appended after the thunk area.
    main.label("bg_real");
    {
        // Inline a tiny checksum (identical in both runs).
        main.mov(regs::eax(), Operand::Imm(0));
        main.mov(regs::ecx(), Operand::Imm(0));
        main.label("main_bg_sum");
        main.movzx(
            regs::edx(),
            Operand::Mem(MemRef::sib(
                Reg::Ecx,
                Reg::Ecx,
                0,
                BG_SCRATCH as i32,
                Width::B1,
            )),
        );
        main.add(regs::eax(), regs::edx());
        main.inc(regs::ecx());
        main.cmp(regs::ecx(), Operand::Imm(64));
        main.jcc(Cond::B, "main_bg_sum");
        main.ret();
    }
    main.label("bg_real_ui");
    {
        main.mov(regs::ecx(), Operand::Imm(0));
        main.label("main_bg_ui");
        main.mov(
            Operand::Mem(mem_index(Reg::Ecx, 4, (BG_SCRATCH + 128) as i32, Width::B4)),
            regs::ecx(),
        );
        main.inc(regs::ecx());
        main.cmp(regs::ecx(), Operand::Imm(16));
        main.jcc(Cond::B, "main_bg_ui");
        main.ret();
    }

    let mut program = Program::new();
    program.add_module("photoflow.exe", main.finish());
    program.add_module("pffilters.dll", dll.finish());
    program.add_function(main_entry, Some("main"));
    // Filter functions are stripped: registered without a name so analyses
    // cannot cheat, but the entry is known for white-box tests.
    program.add_function(filter_entry, None);
    let _ = emit_background; // retained for potential multi-module variants
    (program, main_entry, filter_entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_image() -> PlanarImage {
        PlanarImage::random(24, 13, 1, 16, 99)
    }

    #[test]
    fn legacy_binary_matches_reference_for_every_filter() {
        let image = small_image();
        for filter in PhotoFilter::ALL {
            let app = PhotoFlow::new(filter, image.clone());
            if filter == PhotoFilter::Equalize {
                let mut cpu = app.fresh_cpu(true);
                cpu.run(app.program(), 500_000_000, |_, _| {})
                    .expect("runs");
                let hist = PhotoFlow::read_histogram(&cpu);
                let expect: Vec<u32> = app.reference_histogram();
                assert_eq!(hist, expect, "histogram mismatch");
                continue;
            }
            let vm_out = app.run_in_vm();
            let reference = app.reference_output();
            for p in 0..3 {
                for y in 0..image.height() {
                    for x in 0..image.width() {
                        assert_eq!(
                            vm_out.planes[p].get(x, y),
                            reference.planes[p].get(x, y),
                            "{} mismatch at plane {p} ({x},{y})",
                            filter.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn without_filter_output_is_untouched() {
        let app = PhotoFlow::new(PhotoFilter::Blur, small_image());
        let mut cpu = app.fresh_cpu(false);
        cpu.run(app.program(), 100_000_000, |_, _| {})
            .expect("runs");
        let out = app.read_output(&cpu);
        assert!(out.planes[0].bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn known_rows_and_layout_are_consistent() {
        let app = PhotoFlow::new(PhotoFilter::Blur, small_image());
        let rows = app.known_input_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 13);
        assert_eq!(rows[0][0].len(), 24);
        assert_eq!(app.layout().stride, 32);
        assert_eq!(app.layout().plane_bytes(), 32 * 15);
        assert!(app.approx_data_size() > 0);
        let outs = app.known_output_rows();
        assert_eq!(outs.len(), 3);
        // Equalize has no image output.
        let eq = PhotoFlow::new(PhotoFilter::Equalize, small_image());
        assert!(eq.known_output_rows().is_empty());
    }

    #[test]
    fn filter_metadata() {
        assert_eq!(PhotoFilter::Blur.name(), "blur");
        assert!(PhotoFilter::Invert.is_pointwise());
        assert!(!PhotoFilter::Blur.is_pointwise());
        assert!(PhotoFilter::Blur.stencil_spec().is_some());
        assert!(PhotoFilter::Threshold.stencil_spec().is_none());
        assert_eq!(PhotoFilter::ALL.len(), 9);
    }
}
