//! Warm-up hook: consult the persistent [`ScheduleCache`] before first
//! compile, so a serving process that has been tuned before performs **zero
//! timed trials** — it compiles the cached winner, primes the program cache
//! with one untimed run, and is ready to serve.
//!
//! The flow a production process runs at startup, before accepting requests:
//!
//! ```text
//!   ScheduleCache::load_env()            (HELIUM_SCHEDULE_CACHE)
//!        │
//!   warm(pipeline, extents, inputs, &mut cache, &config)
//!        │ hit:  compile cached schedule, 1 warm run, 0 timed trials
//!        │ miss: guided search (model-ranked, bandit-refined),
//!        │       insert winner, compile, 1 warm run
//!   cache.save_env()                     (persist for the next process)
//! ```

use helium_halide::{CompileOptions, CompiledPipeline, Pipeline, RealizeError, RealizeInputs};
use helium_tune::{guided_search_cached, ScheduleCache, SearchConfig};
use std::sync::Arc;

/// What a warm-up did, and the compiled pipeline ready to serve.
#[derive(Debug)]
pub struct WarmReport {
    /// The pipeline compiled under the winning schedule, program cache
    /// primed for the warmed extents — hand this to [`crate::ServeRequest`]s.
    pub compiled: Arc<CompiledPipeline>,
    /// The schedule the pipeline was compiled under.
    pub schedule: helium_halide::Schedule,
    /// Whether the schedule came from the cache without any search.
    pub cache_hit: bool,
    /// Timed trials spent (0 on a cache hit — the warm-start contract).
    pub timed_trials: usize,
    /// The pipeline's structural fingerprint — the key
    /// [`crate::ServeConfig::with_pipeline_quota`] admission accounting
    /// uses, so a warmed process can map quota/in-flight observations back
    /// to the pipeline it warmed.
    pub fingerprint: u64,
}

/// Warm one pipeline for serving over `extents`: resolve the schedule
/// through `cache` (guided search on a miss, inserting the winner), compile
/// it, and prime the program cache with one untimed run.
///
/// # Errors
/// Returns an error if the pipeline cannot be realized (missing inputs,
/// undefined funcs, ...).
pub fn warm(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    cache: &mut ScheduleCache,
    config: &SearchConfig,
) -> Result<WarmReport, RealizeError> {
    let report = guided_search_cached(pipeline, extents, inputs, config, cache)?;
    let compiled = Arc::new(pipeline.compile(&report.best, &CompileOptions::default())?);
    let _ = compiled.run(inputs, extents)?;
    Ok(WarmReport {
        fingerprint: compiled.pipeline_fingerprint(),
        compiled,
        schedule: report.best,
        cache_hit: report.from_cache,
        timed_trials: report.timed_trials,
    })
}

/// [`warm`] against the process-wide cache file named by
/// `HELIUM_SCHEDULE_CACHE`: load it leniently, warm, and persist the
/// (possibly grown) cache back if the variable is set. The save is
/// best-effort — an unwritable cache path degrades to re-tuning next start,
/// never to a failed warm-up.
///
/// # Errors
/// See [`warm`].
pub fn warm_from_env(
    pipeline: &Pipeline,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    config: &SearchConfig,
) -> Result<WarmReport, RealizeError> {
    let mut cache = ScheduleCache::load_env();
    let report = warm(pipeline, extents, inputs, &mut cache, config)?;
    let _ = cache.save_env();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::{
        BinOp, Buffer, Expr, Func, ImageParam, Realizer, ScalarType, Schedule, Value,
    };
    use std::time::Duration;

    fn invert_pipeline() -> (Pipeline, Buffer) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Xor,
                Expr::Image("in".into(), vec![x, y]),
                Expr::int(255),
            ),
        );
        let p = Pipeline::new(
            Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value),
            vec![ImageParam::new("in", ScalarType::UInt8, 2)],
        );
        let mut input = Buffer::new(ScalarType::UInt8, &[48, 40]);
        for c in input.coords().collect::<Vec<_>>() {
            input.set(&c, Value::Int((c[0] * 3 + c[1]) % 256));
        }
        (p, input)
    }

    fn quick_config() -> SearchConfig {
        SearchConfig {
            top_k: 2,
            repetitions: 1,
            max_candidates: 12,
            budget: Duration::from_secs(30),
        }
    }

    #[test]
    fn warm_miss_searches_then_hit_performs_zero_timed_trials() {
        let (p, input) = invert_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let mut cache = ScheduleCache::new();

        let cold = warm(&p, &[48, 40], &inputs, &mut cache, &quick_config()).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timed_trials >= 1, "a miss must search");
        assert_eq!(cache.len(), 1, "the winner is inserted");

        let hot = warm(&p, &[48, 40], &inputs, &mut cache, &quick_config()).unwrap();
        assert!(hot.cache_hit);
        assert_eq!(hot.timed_trials, 0, "a warmed process never times trials");
        assert_eq!(hot.schedule, cold.schedule);
        assert_eq!(
            hot.fingerprint,
            hot.compiled.pipeline_fingerprint(),
            "the report's fingerprint is the admission-quota key"
        );
        assert_eq!(hot.fingerprint, cold.fingerprint);
        // The warm run primed the program cache: serving is all hits.
        let stats = hot.compiled.cache_stats();
        assert_eq!(stats.misses, 1, "exactly the priming compile");
        let _ = hot.compiled.run(&inputs, &[48, 40]).unwrap();
        assert!(hot.compiled.cache_stats().hits >= 1);
    }

    #[test]
    fn warmed_pipeline_serves_correct_results() {
        let (p, input) = invert_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let mut cache = ScheduleCache::new();
        let report = warm(&p, &[48, 40], &inputs, &mut cache, &quick_config()).unwrap();
        let served = report.compiled.run(&inputs, &[48, 40]).unwrap();
        let oracle = Realizer::new(Schedule::naive())
            .realize(&p, &[48, 40], &inputs)
            .unwrap();
        assert_eq!(served, oracle, "warmed schedule must preserve values");
    }

    #[test]
    fn persisted_cache_warms_a_fresh_process_state_with_zero_search() {
        let (p, input) = invert_pipeline();
        let inputs = RealizeInputs::new().with_image("in", &input);
        let dir = std::env::temp_dir().join(format!("helium_warm_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schedules.txt");

        // Process 1: tune, persist.
        let mut cache = ScheduleCache::new();
        let cold = warm(&p, &[48, 40], &inputs, &mut cache, &quick_config()).unwrap();
        assert!(cold.timed_trials >= 1);
        cache.save(&path).unwrap();

        // Process 2 (fresh state, only the file survives): zero timed trials.
        let mut fresh = ScheduleCache::load(&path).unwrap();
        let hot = warm(&p, &[48, 40], &inputs, &mut fresh, &quick_config()).unwrap();
        assert!(hot.cache_hit, "the persisted winner must be found");
        assert_eq!(hot.timed_trials, 0, "warm start performs no timed trials");
        assert_eq!(hot.schedule, cold.schedule);
        std::fs::remove_dir_all(&dir).ok();
    }
}
