//! An HDR-style bucketed latency histogram with an allocation-free hot path.
//!
//! Values (nanoseconds) land in logarithmic octaves subdivided into
//! `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error to
//! `2^-SUB_BITS` (12.5%) while keeping the table a fixed array of atomic
//! counters. [`LatencyHistogram::record`] is three relaxed atomic ops — no
//! locks, no allocation — so worker threads can record on the request path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution bits per octave.
const SUB_BITS: usize = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: indices `0..SUB` are exact,
/// then `(64 - SUB_BITS)` octaves of `SUB` sub-buckets each.
const BUCKETS: usize = (64 - SUB_BITS + 1) * SUB;

/// Bucket index for a value: exact below [`SUB`], then the octave of the
/// leading bit with the next [`SUB_BITS`] bits as linear position.
fn bucket(v: u64) -> usize {
    let v = v.max(1);
    let msb = 63 - v.leading_zeros() as usize;
    if msb < SUB_BITS {
        v as usize
    } else {
        let oct = msb - SUB_BITS;
        ((oct + 1) << SUB_BITS) | ((v >> oct) as usize & (SUB - 1))
    }
}

/// Smallest value landing in `idx` — the bound reported for quantiles.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let oct = (idx >> SUB_BITS) - 1;
        ((SUB | (idx & (SUB - 1))) as u64) << oct
    }
}

/// A fixed-size concurrent latency histogram (see module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time digest of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency lower bound, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency lower bound, nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded latency, exact, nanoseconds.
    pub max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram. The bucket table is allocated once here; nothing
    /// on the record path allocates.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample in nanoseconds (lock-free, allocation-free).
    pub fn record(&self, ns: u64) {
        self.counts[bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_low(idx);
            }
        }
        self.max_ns()
    }

    /// Count, p50, p99 and max in one digest.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            max_ns: self.max_ns(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            for nudge in [0u64, 1, 3] {
                let v = (1u64 << shift) | nudge.min((1u64 << shift) - 1);
                let idx = bucket(v);
                assert!(idx >= last, "bucket index regressed at {v}");
                assert!(bucket_low(idx) <= v, "lower bound above value at {v}");
                last = idx;
            }
        }
        assert!(bucket(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let hist = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            hist.record(v);
        }
        let s = hist.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max_ns, 10_000);
        // Bucket lower bounds sit within one sub-bucket of the true value.
        assert!(s.p50_ns <= 5_000 && s.p50_ns as f64 >= 5_000.0 * (1.0 - 1.0 / SUB as f64));
        assert!(s.p99_ns <= 9_900 && s.p99_ns as f64 >= 9_900.0 * (1.0 - 1.0 / SUB as f64));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.summary(), LatencySummary::default());
    }
}
