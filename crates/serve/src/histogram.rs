//! An HDR-style bucketed latency histogram with an allocation-free hot path.
//!
//! Values (nanoseconds) land in logarithmic octaves subdivided into
//! `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error to
//! `2^-SUB_BITS` (12.5%) while keeping the table a fixed array of atomic
//! counters. [`LatencyHistogram::record`] is a handful of relaxed atomic ops
//! — no locks, no allocation — so worker threads can record on the request
//! path.
//!
//! Besides the cumulative table the histogram keeps a **live window**: two
//! epoch bucket arrays rotated every [`LIVE_WINDOW`] samples, so
//! [`LatencyHistogram::live_p99`] reflects only the most recent
//! `LIVE_WINDOW..2*LIVE_WINDOW` samples. The serving layer's load shedding
//! reads this live p99 — a cumulative quantile would never come back down
//! after an overload burst, so shedding would never stop. Epoch rotation is
//! racy by design (a clear concurrent with recorders can drop a handful of
//! samples from the live view); the cumulative table never loses a sample.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution bits per octave.
const SUB_BITS: usize = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: indices `0..SUB` are exact,
/// then `(64 - SUB_BITS)` octaves of `SUB` sub-buckets each.
const BUCKETS: usize = (64 - SUB_BITS + 1) * SUB;
/// Samples per live-window epoch; [`LatencyHistogram::live_p99`] covers the
/// current epoch plus the previous one.
pub const LIVE_WINDOW: u64 = 512;

/// Bucket index for a value: exact below [`SUB`], then the octave of the
/// leading bit with the next [`SUB_BITS`] bits as linear position.
fn bucket(v: u64) -> usize {
    let v = v.max(1);
    let msb = 63 - v.leading_zeros() as usize;
    if msb < SUB_BITS {
        v as usize
    } else {
        let oct = msb - SUB_BITS;
        ((oct + 1) << SUB_BITS) | ((v >> oct) as usize & (SUB - 1))
    }
}

/// Rank into a bucket table: lower bound of the bucket holding the
/// `q`-quantile of `total` samples read through `count_at`. `Some(0)` when
/// empty, `None` when the scan ran past the table (counts raced downward —
/// callers fall back to the recorded max).
fn quantile_over(count_at: impl Fn(usize) -> u64, total: u64, q: f64) -> Option<u64> {
    if total == 0 {
        return Some(0);
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for idx in 0..BUCKETS {
        seen += count_at(idx);
        if seen >= rank {
            return Some(bucket_low(idx));
        }
    }
    None
}

/// Smallest value landing in `idx` — the bound reported for quantiles.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let oct = (idx >> SUB_BITS) - 1;
        ((SUB | (idx & (SUB - 1))) as u64) << oct
    }
}

/// A fixed-size concurrent latency histogram (see module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    max: AtomicU64,
    /// Live-window epoch arrays; `epoch & 1` selects the current one.
    live: [Vec<AtomicU64>; 2],
    /// Samples recorded into the current epoch.
    live_filled: AtomicU64,
    epoch: AtomicU64,
}

/// A point-in-time digest of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency lower bound, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency lower bound, nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded latency, exact, nanoseconds.
    pub max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram. The bucket table is allocated once here; nothing
    /// on the record path allocates.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
            live: [
                (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            ],
            live_filled: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Record one sample in nanoseconds (lock-free, allocation-free).
    pub fn record(&self, ns: u64) {
        let b = bucket(ns);
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        let e = self.epoch.load(Ordering::Relaxed);
        self.live[(e & 1) as usize][b].fetch_add(1, Ordering::Relaxed);
        if self.live_filled.fetch_add(1, Ordering::Relaxed) + 1 >= LIVE_WINDOW
            && self
                .epoch
                .compare_exchange(e, e.wrapping_add(1), Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // The rotation winner resets the fill counter and clears the
            // array that just became current. Recorders racing with the
            // clear can lose a few live samples; the cumulative table is
            // untouched.
            self.live_filled.store(0, Ordering::Relaxed);
            for c in &self.live[((e & 1) ^ 1) as usize] {
                c.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        quantile_over(|i| self.counts[i].load(Ordering::Relaxed), total, q)
            .unwrap_or_else(|| self.max_ns())
    }

    /// `(samples, p99 lower bound)` over the live window — the most recent
    /// `LIVE_WINDOW..2*LIVE_WINDOW` samples (current + previous epoch).
    /// Overload control reads this instead of the cumulative [`Self::quantile`]
    /// so the signal decays once the burst that inflated it has aged out.
    pub fn live_p99(&self) -> (u64, u64) {
        let load = |i: usize| {
            self.live[0][i].load(Ordering::Relaxed) + self.live[1][i].load(Ordering::Relaxed)
        };
        let total: u64 = (0..BUCKETS).map(load).sum();
        let p99 = quantile_over(load, total, 0.99).unwrap_or_else(|| self.max_ns());
        (total, p99)
    }

    /// Count, p50, p99 and max in one digest.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            max_ns: self.max_ns(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            for nudge in [0u64, 1, 3] {
                let v = (1u64 << shift) | nudge.min((1u64 << shift) - 1);
                let idx = bucket(v);
                assert!(idx >= last, "bucket index regressed at {v}");
                assert!(bucket_low(idx) <= v, "lower bound above value at {v}");
                last = idx;
            }
        }
        assert!(bucket(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let hist = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            hist.record(v);
        }
        let s = hist.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max_ns, 10_000);
        // Bucket lower bounds sit within one sub-bucket of the true value.
        assert!(s.p50_ns <= 5_000 && s.p50_ns as f64 >= 5_000.0 * (1.0 - 1.0 / SUB as f64));
        assert!(s.p99_ns <= 9_900 && s.p99_ns as f64 >= 9_900.0 * (1.0 - 1.0 / SUB as f64));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.summary(), LatencySummary::default());
        assert_eq!(hist.live_p99(), (0, 0));
    }

    #[test]
    fn live_p99_tracks_recent_samples_and_forgets_old_ones() {
        let hist = LatencyHistogram::new();
        // An old burst of slow samples, then enough fast samples to rotate
        // the slow epoch entirely out of the live window.
        for _ in 0..LIVE_WINDOW {
            hist.record(1_000_000);
        }
        let (n, p99) = hist.live_p99();
        assert!(n >= 1, "live window holds the burst");
        assert!(p99 >= 800_000, "live p99 sees the slow burst, got {p99}");
        for _ in 0..3 * LIVE_WINDOW {
            hist.record(100);
        }
        let (_, p99) = hist.live_p99();
        assert!(
            p99 < 1_000,
            "live p99 must decay after the burst, got {p99}"
        );
        // The cumulative view never forgets.
        assert!(hist.quantile(0.999) >= 800_000);
        assert_eq!(hist.count(), 4 * LIVE_WINDOW);
    }
}
