//! # helium-serve
//!
//! A concurrent realize service over compiled Helium pipelines — the
//! lift-once/run-forever half of the paper's story. Helium lifts a stencil
//! kernel from a stripped binary once; after that the compiled pipeline is
//! realized at request rate, from many callers, over varying extents and
//! parameter bindings. This crate packages that serving loop:
//!
//! ```text
//!   submit()/try_submit()          Server worker threads
//!  ┌───────────────────┐   pop   ┌─────────┐
//!  │ BoundedQueue<Job> │ ──────▶ │ worker 0 │──▶ CompiledPipeline::run
//!  │  (backpressure)   │ ──────▶ │ worker 1 │──▶   │
//!  └───────────────────┘         │   ...    │      ▼
//!        ▲      Ticket◀──────────┴─────────┘  ShardedCache (per pipeline)
//!        │       (result)                      shard 0 │ shard 1 │ ...
//!   ServeRequest                               LRU+stats│LRU+stats│
//! ```
//!
//! * **Backpressure** — submissions land in a bounded MPMC queue
//!   ([`queue::BoundedQueue`]); [`Server::try_submit`] fails fast with
//!   [`SubmitError::QueueFull`] when the service is saturated, while
//!   [`Server::submit`] blocks for space.
//! * **Coalescing** — workers realize through each request's
//!   [`CompiledPipeline`], whose sharded program cache coalesces same-key
//!   work: when several in-flight requests need the same
//!   (pipeline, extents, binding signature) program that is not yet cached,
//!   exactly one worker builds it and the rest block on the in-flight slot
//!   and share the prepared program (`misses == compiles + coalesced`).
//!   Distinct keys proceed independently on separate cache shards.
//! * **Latency accounting** — each request's submit→complete time is
//!   recorded into a fixed HDR-style bucketed histogram
//!   ([`histogram::LatencyHistogram`]) with an allocation-free hot path;
//!   [`Server::stats`] digests it to p50/p99/max.
//!
//! Results are delivered through a [`Ticket`] — a one-shot slot the worker
//! fills and the submitter waits on — so callers can pipeline many requests
//! before collecting any.

#![warn(missing_docs)]

pub mod histogram;
pub mod queue;
pub mod warm;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use queue::{BoundedQueue, PushError};
pub use warm::{warm, warm_from_env, WarmReport};

use helium_halide::buffer::Buffer;
use helium_halide::compile::CompiledPipeline;
use helium_halide::realize::{RealizeError, RealizeInputs};
use helium_halide::types::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads realizing requests. `0` means one per available core.
    pub workers: usize,
    /// Bounded submission-queue depth (backpressure point).
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 256,
        }
    }
}

impl ServeConfig {
    /// Set the worker-thread count (`0` = one per available core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the bounded submission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One realize request: which compiled pipeline to run, over which output
/// extents, with which image and scalar-parameter bindings.
///
/// Images and the pipeline ride in [`Arc`]s so a request is cheap to build
/// from shared inputs and owns everything it needs across threads (the
/// borrowed [`RealizeInputs`] view is constructed inside the worker).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The compiled pipeline to realize.
    pub pipeline: Arc<CompiledPipeline>,
    /// Output extents, innermost dimension first.
    pub extents: Vec<usize>,
    /// Input images by image-parameter name.
    pub images: BTreeMap<String, Arc<Buffer>>,
    /// Scalar parameter bindings by name.
    pub params: BTreeMap<String, Value>,
}

impl ServeRequest {
    /// A request over `pipeline` with the given output extents and no
    /// bindings yet.
    pub fn new(pipeline: Arc<CompiledPipeline>, extents: &[usize]) -> Self {
        ServeRequest {
            pipeline,
            extents: extents.to_vec(),
            images: BTreeMap::new(),
            params: BTreeMap::new(),
        }
    }

    /// Bind an input image.
    pub fn with_image(mut self, name: &str, image: Arc<Buffer>) -> Self {
        self.images.insert(name.to_string(), image);
        self
    }

    /// Bind a scalar parameter.
    pub fn with_param(mut self, name: &str, value: Value) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }
}

/// Why a submission was rejected; the request is handed back.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full ([`Server::try_submit`] only) — back off
    /// or block with [`Server::submit`].
    QueueFull(ServeRequest),
    /// The server is shutting down and accepts no further work.
    ShuttingDown(ServeRequest),
}

#[derive(Debug)]
struct TicketInner {
    slot: Mutex<Option<Result<Buffer, RealizeError>>>,
    done: Condvar,
}

/// A one-shot handle to a submitted request's result.
#[derive(Debug, Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (
            Ticket {
                inner: Arc::clone(&inner),
            },
            inner,
        )
    }

    /// Block until the request completes and take its result.
    pub fn wait(self) -> Result<Buffer, RealizeError> {
        let mut slot = self.inner.slot.lock().expect("ticket mutex");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.inner.done.wait(slot).expect("ticket mutex");
        }
    }

    /// Whether the result has arrived (without consuming it).
    pub fn is_done(&self) -> bool {
        self.inner.slot.lock().expect("ticket mutex").is_some()
    }
}

struct Job {
    request: ServeRequest,
    ticket: Arc<TicketInner>,
    submitted: Instant,
}

struct Shared {
    queue: BoundedQueue<Job>,
    latency: LatencyHistogram,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// A point-in-time view of server activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (successfully or with an error).
    pub completed: u64,
    /// Completed requests that returned a [`RealizeError`].
    pub failed: u64,
    /// Requests currently waiting in the queue.
    pub queued: usize,
    /// Submit→complete latency digest.
    pub latency: LatencySummary,
}

/// A running realize service: N worker threads draining the bounded queue.
///
/// Dropping the server shuts it down: the queue closes, workers drain the
/// backlog (every accepted request still gets its [`Ticket`] result) and
/// are joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn run_job(job: Job, shared: &Shared) {
    let mut inputs = RealizeInputs::new();
    for (name, image) in &job.request.images {
        inputs = inputs.with_image(name, image);
    }
    for (name, value) in &job.request.params {
        inputs = inputs.with_param(name, *value);
    }
    let result = job.request.pipeline.run(&inputs, &job.request.extents);
    shared
        .latency
        .record(job.submitted.elapsed().as_nanos() as u64);
    if result.is_err() {
        shared.failed.fetch_add(1, Ordering::Relaxed);
    }
    shared.completed.fetch_add(1, Ordering::Relaxed);
    *job.ticket.slot.lock().expect("ticket mutex") = Some(result);
    job.ticket.done.notify_all();
}

impl Server {
    /// Start the service with `config` worker threads and queue depth.
    pub fn start(config: ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            latency: LatencyHistogram::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let workers = (0..config.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("helium-serve-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.queue.pop() {
                            run_job(job, &shared);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit without blocking; fails fast when the queue is full.
    pub fn try_submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let (ticket, inner) = Ticket::new();
        let job = Job {
            request,
            ticket: inner,
            submitted: Instant::now(),
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(PushError::Full(job)) => Err(SubmitError::QueueFull(job.request)),
            Err(PushError::Closed(job)) => Err(SubmitError::ShuttingDown(job.request)),
        }
    }

    /// Submit, blocking while the queue is full.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let (ticket, inner) = Ticket::new();
        let job = Job {
            request,
            ticket: inner,
            submitted: Instant::now(),
        };
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                Err(SubmitError::ShuttingDown(job.request))
            }
        }
    }

    /// Current counters and latency digest.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            queued: self.shared.queue.len(),
            latency: self.shared.latency.summary(),
        }
    }

    /// Worker threads serving this instance.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Stop accepting work, drain the backlog and join the workers. Every
    /// request accepted before shutdown still completes its [`Ticket`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::prelude::*;

    fn invert_pipeline() -> (Arc<CompiledPipeline>, Arc<Buffer>) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Sub,
                Expr::int(255),
                Expr::Image("in".into(), vec![x, y]),
            ),
        );
        let func = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
        let pipeline = Pipeline::new(func, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let compiled = pipeline
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .expect("compile");
        let mut input = Buffer::new(ScalarType::UInt8, &[16, 16]);
        let mut s = 7u64;
        for c in input.coords().collect::<Vec<_>>() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            input.set(&c, Value::Int(((s >> 33) % 256) as i64));
        }
        (Arc::new(compiled), Arc::new(input))
    }

    #[test]
    fn serve_round_trip_matches_direct_run() {
        let (compiled, input) = invert_pipeline();
        let direct = {
            let inputs = RealizeInputs::new().with_image("in", &input);
            compiled.run(&inputs, &[16, 16]).expect("direct")
        };
        let server = Server::start(ServeConfig::default().with_workers(2));
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| {
                server
                    .submit(
                        ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                            .with_image("in", Arc::clone(&input)),
                    )
                    .expect("submit")
            })
            .collect();
        for ticket in tickets {
            assert_eq!(ticket.wait().expect("serve"), direct);
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.latency.count, 8);
        assert!(stats.latency.max_ns > 0);
        server.shutdown();
    }

    #[test]
    fn errors_flow_back_through_tickets() {
        let (compiled, _input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(1));
        // Missing image binding: the realize fails, the ticket reports it.
        let ticket = server
            .submit(ServeRequest::new(Arc::clone(&compiled), &[8, 8]))
            .expect("submit");
        assert!(matches!(ticket.wait(), Err(RealizeError::MissingInput(_))));
        assert_eq!(server.stats().failed, 1);
    }

    #[test]
    fn try_submit_applies_backpressure() {
        let (compiled, input) = invert_pipeline();
        // Workers blocked behind a deep pipeline of work on one thread with a
        // tiny queue: try_submit must eventually report QueueFull.
        let server = Server::start(ServeConfig::default().with_workers(1).with_queue_depth(1));
        let mut tickets = Vec::new();
        let mut saw_full = false;
        for _ in 0..256 {
            // Larger extents than the submit loop can keep up with.
            let request = ServeRequest::new(Arc::clone(&compiled), &[128, 128])
                .with_image("in", Arc::clone(&input));
            match server.try_submit(request) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull(_)) => {
                    saw_full = true;
                    break;
                }
                Err(SubmitError::ShuttingDown(_)) => panic!("not shutting down"),
            }
        }
        for t in tickets {
            t.wait().expect("serve");
        }
        assert!(saw_full, "a depth-1 queue must reject a fast burst");
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let (compiled, input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(2));
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| {
                server
                    .submit(
                        ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                            .with_image("in", Arc::clone(&input)),
                    )
                    .expect("submit")
            })
            .collect();
        server.shutdown();
        for ticket in tickets {
            ticket.wait().expect("accepted work completes");
        }
    }
}
