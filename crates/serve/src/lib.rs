//! # helium-serve
//!
//! A concurrent realize service over compiled Helium pipelines — the
//! lift-once/run-forever half of the paper's story. Helium lifts a stencil
//! kernel from a stripped binary once; after that the compiled pipeline is
//! realized at request rate, from many callers, over varying extents and
//! parameter bindings. This crate packages that serving loop:
//!
//! ```text
//!   submit()/try_submit()          Server worker threads
//!  ┌───────────────────┐   pop   ┌─────────┐
//!  │ BoundedQueue<Job> │ ──────▶ │ worker 0 │──▶ CompiledPipeline::run
//!  │  (backpressure)   │ ──────▶ │ worker 1 │──▶   │
//!  └───────────────────┘         │   ...    │      ▼
//!        ▲      Ticket◀──────────┴─────────┘  ShardedCache (per pipeline)
//!        │       (result)                      shard 0 │ shard 1 │ ...
//!   ServeRequest                               LRU+stats│LRU+stats│
//! ```
//!
//! * **Backpressure** — submissions land in a bounded MPMC queue
//!   ([`queue::BoundedQueue`]); [`Server::try_submit`] fails fast with
//!   [`SubmitError::QueueFull`] when the service is saturated, while
//!   [`Server::submit`] blocks for space.
//! * **Coalescing** — workers realize through each request's
//!   [`CompiledPipeline`], whose sharded program cache coalesces same-key
//!   work: when several in-flight requests need the same
//!   (pipeline, extents, binding signature) program that is not yet cached,
//!   exactly one worker builds it and the rest block on the in-flight slot
//!   and share the prepared program (`misses == compiles + coalesced`).
//!   Distinct keys proceed independently on separate cache shards.
//! * **Latency accounting** — each request's submit→complete time is
//!   recorded into a fixed HDR-style bucketed histogram
//!   ([`histogram::LatencyHistogram`]) with an allocation-free hot path;
//!   [`Server::stats`] digests it to p50/p99/max.
//!
//! ## Overload behavior
//!
//! Overload degrades predictably instead of queue-deep, through three
//! independently-configurable mechanisms, each with a dedicated
//! [`ServeStats`] counter:
//!
//! * **Deadlines** ([`ServeRequest::with_deadline`]) — a worker checks the
//!   deadline when it dequeues a job; an expired job completes its ticket
//!   immediately with [`RealizeError::DeadlineExceeded`] instead of burning
//!   a realize on a result nobody is waiting for (`stats().expired`).
//! * **Admission control** ([`ServeConfig::with_pipeline_quota`]) — each
//!   pipeline (keyed by its structural fingerprint) may have at most N
//!   requests in flight (queued + running). Over-quota submissions fail
//!   fast with [`SubmitError::QuotaExceeded`], handing the request back
//!   (`stats().quota_rejected`).
//! * **Load shedding** ([`ServeConfig::with_p99_target`]) — when the
//!   latency histogram's *live* p99 (a sliding window, so the signal decays
//!   after a burst) exceeds the target, [`Server::try_submit`] sheds
//!   incoming work probabilistically, proportional to the overshoot, so the
//!   queue never sits at depth during sustained overload
//!   ([`SubmitError::Shed`], `stats().shed`). The blocking [`Server::submit`]
//!   path never sheds — callers that block have opted into waiting.
//!
//! Every accepted request resolves its [`Ticket`] exactly once — including
//! expired ones, and including jobs whose realize panics (an unwind guard
//! completes the ticket with [`RealizeError::Panicked`] and the worker
//! thread survives to serve the next request).
//!
//! Results are delivered through a [`Ticket`] — a one-shot slot the worker
//! fills and the submitter waits on — so callers can pipeline many requests
//! before collecting any.

#![warn(missing_docs)]

pub mod histogram;
pub mod queue;
pub mod warm;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use queue::{BoundedQueue, PushError};
pub use warm::{warm, warm_from_env, WarmReport};

use helium_halide::buffer::Buffer;
use helium_halide::compile::CompiledPipeline;
use helium_halide::realize::{RealizeError, RealizeInputs};
use helium_halide::types::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Minimum live-window samples before shedding may trigger — below this the
/// p99 estimate is noise, not signal.
const MIN_SHED_SAMPLES: u64 = 16;
/// Shed probability ceiling. Capped below 1.0 so a trickle of admissions
/// keeps refreshing the live p99 — shedding everything would freeze the
/// signal at its overload value and never recover.
const MAX_SHED_PROB: f64 = 0.9;

/// Sizing and overload knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads realizing requests. `0` means one per available core.
    pub workers: usize,
    /// Bounded submission-queue depth (backpressure point).
    pub queue_depth: usize,
    /// Per-pipeline in-flight quota (queued + running, keyed by pipeline
    /// fingerprint); `None` = unlimited.
    pub pipeline_quota: Option<usize>,
    /// Live-p99 latency target; when exceeded, [`Server::try_submit`] sheds
    /// incoming work probabilistically. `None` disables shedding.
    pub p99_target: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 256,
            pipeline_quota: None,
            p99_target: None,
        }
    }
}

impl ServeConfig {
    /// Set the worker-thread count (`0` = one per available core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the bounded submission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Cap in-flight requests per pipeline fingerprint; over-quota
    /// submissions fail fast with [`SubmitError::QuotaExceeded`].
    pub fn with_pipeline_quota(mut self, quota: usize) -> Self {
        self.pipeline_quota = Some(quota.max(1));
        self
    }

    /// Shed [`Server::try_submit`] traffic when the live p99 exceeds
    /// `target`, with probability proportional to the overshoot.
    pub fn with_p99_target(mut self, target: Duration) -> Self {
        self.p99_target = Some(target);
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One realize request: which compiled pipeline to run, over which output
/// extents, with which image and scalar-parameter bindings.
///
/// Images and the pipeline ride in [`Arc`]s so a request is cheap to build
/// from shared inputs and owns everything it needs across threads (the
/// borrowed [`RealizeInputs`] view is constructed inside the worker).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The compiled pipeline to realize.
    pub pipeline: Arc<CompiledPipeline>,
    /// Output extents, innermost dimension first.
    pub extents: Vec<usize>,
    /// Input images by image-parameter name.
    pub images: BTreeMap<String, Arc<Buffer>>,
    /// Scalar parameter bindings by name.
    pub params: BTreeMap<String, Value>,
    /// Latest useful completion time: a worker that dequeues this request
    /// after the deadline completes it with
    /// [`RealizeError::DeadlineExceeded`] instead of realizing it.
    pub deadline: Option<Instant>,
}

impl ServeRequest {
    /// A request over `pipeline` with the given output extents and no
    /// bindings yet.
    pub fn new(pipeline: Arc<CompiledPipeline>, extents: &[usize]) -> Self {
        ServeRequest {
            pipeline,
            extents: extents.to_vec(),
            images: BTreeMap::new(),
            params: BTreeMap::new(),
            deadline: None,
        }
    }

    /// Bind an input image.
    pub fn with_image(mut self, name: &str, image: Arc<Buffer>) -> Self {
        self.images.insert(name.to_string(), image);
        self
    }

    /// Bind a scalar parameter.
    pub fn with_param(mut self, name: &str, value: Value) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Set the deadline: past it, the result is useless to the caller, so a
    /// worker dequeuing the job expires it instead of realizing it.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Self::with_deadline`] relative to now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }
}

/// Why a submission was rejected; the request is handed back.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full ([`Server::try_submit`] only) — back off
    /// or block with [`Server::submit`].
    QueueFull(ServeRequest),
    /// The server is shutting down and accepts no further work.
    ShuttingDown(ServeRequest),
    /// The pipeline's in-flight quota is spent
    /// ([`ServeConfig::with_pipeline_quota`]) — retry after some of its
    /// tickets resolve.
    QuotaExceeded(ServeRequest),
    /// Shed by overload control: the live p99 is over the configured target
    /// ([`Server::try_submit`] only) — back off and retry later.
    Shed(ServeRequest),
}

impl SubmitError {
    /// Recover the rejected request regardless of the rejection reason.
    pub fn into_request(self) -> ServeRequest {
        match self {
            SubmitError::QueueFull(r)
            | SubmitError::ShuttingDown(r)
            | SubmitError::QuotaExceeded(r)
            | SubmitError::Shed(r) => r,
        }
    }
}

#[derive(Debug)]
struct TicketInner {
    slot: Mutex<Option<Result<Buffer, RealizeError>>>,
    done: Condvar,
}

/// A one-shot handle to a submitted request's result.
#[derive(Debug, Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (
            Ticket {
                inner: Arc::clone(&inner),
            },
            inner,
        )
    }

    /// Block until the request completes and take its result.
    pub fn wait(self) -> Result<Buffer, RealizeError> {
        let mut slot = self.inner.slot.lock().expect("ticket mutex");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.inner.done.wait(slot).expect("ticket mutex");
        }
    }

    /// Whether the result has arrived (without consuming it).
    pub fn is_done(&self) -> bool {
        self.inner.slot.lock().expect("ticket mutex").is_some()
    }
}

struct Job {
    request: ServeRequest,
    ticket: Arc<TicketInner>,
    submitted: Instant,
    /// Pipeline fingerprint, cached at submit for quota release.
    fp: u64,
}

struct Shared {
    queue: BoundedQueue<Job>,
    latency: LatencyHistogram,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    quota_rejected: AtomicU64,
    shed: AtomicU64,
    /// In-flight (queued + running) requests per pipeline fingerprint.
    /// Only maintained when a quota is configured.
    inflight: Mutex<HashMap<u64, usize>>,
    pipeline_quota: Option<usize>,
    p99_target_ns: Option<u64>,
    /// Shedding-decision RNG state (splitmix64 over a Weyl sequence).
    rng: AtomicU64,
}

impl Shared {
    /// Reserve an in-flight slot for `fp`, or fail when the quota is spent.
    fn try_reserve_inflight(&self, fp: u64) -> bool {
        let Some(quota) = self.pipeline_quota else {
            return true;
        };
        let mut inflight = self.inflight.lock().expect("inflight mutex");
        let n = inflight.entry(fp).or_insert(0);
        if *n >= quota {
            false
        } else {
            *n += 1;
            true
        }
    }

    /// Release an in-flight slot (request delivered or never enqueued).
    fn release_inflight(&self, fp: u64) {
        if self.pipeline_quota.is_none() {
            return;
        }
        let mut inflight = self.inflight.lock().expect("inflight mutex");
        if let Some(n) = inflight.get_mut(&fp) {
            *n -= 1;
            if *n == 0 {
                inflight.remove(&fp);
            }
        }
    }

    /// Lock-free uniform sample in `[0, 1)` for shedding decisions.
    fn next_unit(&self) -> f64 {
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Shed decision for one incoming non-blocking submission: when the
    /// live p99 overshoots the target, shed with probability proportional
    /// to the overshoot (capped at [`MAX_SHED_PROB`]).
    fn should_shed(&self) -> bool {
        let Some(target) = self.p99_target_ns else {
            return false;
        };
        let (samples, live_p99) = self.latency.live_p99();
        if samples < MIN_SHED_SAMPLES || live_p99 <= target {
            return false;
        }
        let overshoot = (live_p99 - target) as f64 / target.max(1) as f64;
        self.next_unit() < overshoot.min(MAX_SHED_PROB)
    }
}

/// A point-in-time view of server activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Tickets delivered (success, realize error, panic, or expiry).
    pub completed: u64,
    /// Completed requests that returned a [`RealizeError`] from the realize
    /// itself (including [`RealizeError::Panicked`]; deadline expiries are
    /// counted in [`Self::expired`] instead).
    pub failed: u64,
    /// Requests whose deadline passed before a worker could start them;
    /// their tickets resolve with [`RealizeError::DeadlineExceeded`].
    pub expired: u64,
    /// Submissions rejected at admission because their pipeline's in-flight
    /// quota was spent (never enqueued, not counted in [`Self::submitted`]).
    pub quota_rejected: u64,
    /// Submissions shed by overload control (never enqueued, not counted in
    /// [`Self::submitted`]).
    pub shed: u64,
    /// Requests currently waiting in the queue.
    pub queued: usize,
    /// Submit→complete latency digest (all delivered tickets, expiries
    /// included — queue delay is part of the overload signal).
    pub latency: LatencySummary,
}

/// A running realize service: N worker threads draining the bounded queue.
///
/// Dropping the server shuts it down: the queue closes, workers drain the
/// backlog (every accepted request still gets its [`Ticket`] result) and
/// are joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Completion guard for a dequeued job: guarantees the ticket resolves
/// exactly once, even if the worker unwinds mid-realize. Dropping the guard
/// without [`CompletionGuard::complete`] (a panic escaping the realize's
/// catch, or any future code path that forgets) delivers
/// [`RealizeError::Panicked`] — a lost worker must never strand a waiter.
struct CompletionGuard<'a> {
    shared: &'a Shared,
    ticket: Arc<TicketInner>,
    submitted: Instant,
    fp: u64,
    delivered: bool,
}

impl CompletionGuard<'_> {
    /// Deliver `result` and update the counters. Counter updates happen
    /// while the ticket's slot lock is held: a waiter can only observe the
    /// result after they land, so `stats().completed` never exceeds the
    /// number of resolvable tickets and post-`wait()` stats are exact.
    fn complete(mut self, result: Result<Buffer, RealizeError>) {
        self.deliver(result);
    }

    fn deliver(&mut self, result: Result<Buffer, RealizeError>) {
        self.delivered = true;
        let elapsed_ns = self.submitted.elapsed().as_nanos() as u64;
        let expired = matches!(result, Err(RealizeError::DeadlineExceeded));
        let failed = result.is_err() && !expired;
        let mut slot = self.ticket.slot.lock().expect("ticket mutex");
        *slot = Some(result);
        self.shared.latency.record(elapsed_ns);
        if expired {
            self.shared.expired.fetch_add(1, Ordering::Relaxed);
        }
        if failed {
            self.shared.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.release_inflight(self.fp);
        self.shared.completed.fetch_add(1, Ordering::Relaxed);
        drop(slot);
        self.ticket.done.notify_all();
    }
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        if !self.delivered {
            self.deliver(Err(RealizeError::Panicked(
                "worker unwound before delivering the result".into(),
            )));
        }
    }
}

/// Render a `catch_unwind` payload for [`RealizeError::Panicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job(job: Job, shared: &Shared) {
    let Job {
        request,
        ticket,
        submitted,
        fp,
    } = job;
    let guard = CompletionGuard {
        shared,
        ticket,
        submitted,
        fp,
        delivered: false,
    };
    // Deadline check at dequeue: an expired job completes immediately
    // instead of burning a realize on a result nobody is waiting for.
    if request.deadline.is_some_and(|d| Instant::now() >= d) {
        guard.complete(Err(RealizeError::DeadlineExceeded));
        return;
    }
    // Catch unwinds from the realize so the worker thread survives and the
    // panic message reaches the ticket; the guard's `Drop` is the backstop
    // for unwinds outside this catch.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut inputs = RealizeInputs::new();
        for (name, image) in &request.images {
            inputs = inputs.with_image(name, image);
        }
        for (name, value) in &request.params {
            inputs = inputs.with_param(name, *value);
        }
        request.pipeline.run(&inputs, &request.extents)
    }));
    match outcome {
        Ok(result) => guard.complete(result),
        Err(payload) => guard.complete(Err(RealizeError::Panicked(panic_message(payload)))),
    }
}

impl Server {
    /// Start the service with `config` worker threads and queue depth.
    pub fn start(config: ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            latency: LatencyHistogram::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            pipeline_quota: config.pipeline_quota,
            p99_target_ns: config
                .p99_target
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            rng: AtomicU64::new(0x5EED_1E55_C0FF_EE00),
        });
        let workers = (0..config.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("helium-serve-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.queue.pop() {
                            run_job(job, &shared);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Reserve the pipeline's quota slot and build the job, or reject.
    fn admit(&self, request: ServeRequest) -> Result<(Job, Ticket), SubmitError> {
        let fp = request.pipeline.pipeline_fingerprint();
        if !self.shared.try_reserve_inflight(fp) {
            self.shared.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QuotaExceeded(request));
        }
        let (ticket, inner) = Ticket::new();
        let job = Job {
            request,
            ticket: inner,
            submitted: Instant::now(),
            fp,
        };
        Ok((job, ticket))
    }

    /// Submit without blocking; fails fast when the queue is full, the
    /// pipeline's quota is spent, or overload control sheds the request.
    pub fn try_submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        if self.shared.should_shed() {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Shed(request));
        }
        let (job, ticket) = self.admit(request)?;
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(PushError::Full(job)) => {
                self.shared.release_inflight(job.fp);
                Err(SubmitError::QueueFull(job.request))
            }
            Err(PushError::Closed(job)) => {
                self.shared.release_inflight(job.fp);
                Err(SubmitError::ShuttingDown(job.request))
            }
        }
    }

    /// Submit, blocking while the queue is full. Still fails fast on a
    /// spent pipeline quota (blocking a caller on another caller's backlog
    /// would defeat per-pipeline isolation); never sheds.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let (job, ticket) = self.admit(request)?;
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            // A blocking push waits out a full queue; `BoundedQueue::push`
            // can only fail `Closed`. Keep the arm explicit so a queue
            // regression panics here instead of masquerading as a shutdown.
            Err(PushError::Full(_)) => unreachable!("BoundedQueue::push never fails Full"),
            Err(PushError::Closed(job)) => {
                self.shared.release_inflight(job.fp);
                Err(SubmitError::ShuttingDown(job.request))
            }
        }
    }

    /// Current counters and latency digest.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            quota_rejected: self.shared.quota_rejected.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            queued: self.shared.queue.len(),
            latency: self.shared.latency.summary(),
        }
    }

    /// `(samples, p99 lower bound)` over the latency histogram's live
    /// window — the signal overload shedding reads.
    pub fn live_p99(&self) -> (u64, u64) {
        self.shared.latency.live_p99()
    }

    /// Worker threads serving this instance.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Stop accepting new work without waiting for the drain (idempotent).
    /// In-queue requests still complete their tickets; workers are joined
    /// by [`Self::shutdown`] or drop. Callable by shared reference so a
    /// coordinator can begin shutdown while submitters still hold the
    /// server.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Stop accepting work, drain the backlog and join the workers. Every
    /// request accepted before shutdown still completes its [`Ticket`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helium_halide::prelude::*;

    fn invert_pipeline() -> (Arc<CompiledPipeline>, Arc<Buffer>) {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::bin(
                BinOp::Sub,
                Expr::int(255),
                Expr::Image("in".into(), vec![x, y]),
            ),
        );
        let func = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
        let pipeline = Pipeline::new(func, vec![ImageParam::new("in", ScalarType::UInt8, 2)]);
        let compiled = pipeline
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .expect("compile");
        let mut input = Buffer::new(ScalarType::UInt8, &[16, 16]);
        let mut s = 7u64;
        for c in input.coords().collect::<Vec<_>>() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            input.set(&c, Value::Int(((s >> 33) % 256) as i64));
        }
        (Arc::new(compiled), Arc::new(input))
    }

    #[test]
    fn serve_round_trip_matches_direct_run() {
        let (compiled, input) = invert_pipeline();
        let direct = {
            let inputs = RealizeInputs::new().with_image("in", &input);
            compiled.run(&inputs, &[16, 16]).expect("direct")
        };
        let server = Server::start(ServeConfig::default().with_workers(2));
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| {
                server
                    .submit(
                        ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                            .with_image("in", Arc::clone(&input)),
                    )
                    .expect("submit")
            })
            .collect();
        for ticket in tickets {
            assert_eq!(ticket.wait().expect("serve"), direct);
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.latency.count, 8);
        assert!(stats.latency.max_ns > 0);
        server.shutdown();
    }

    #[test]
    fn errors_flow_back_through_tickets() {
        let (compiled, _input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(1));
        // Missing image binding: the realize fails, the ticket reports it.
        let ticket = server
            .submit(ServeRequest::new(Arc::clone(&compiled), &[8, 8]))
            .expect("submit");
        assert!(matches!(ticket.wait(), Err(RealizeError::MissingInput(_))));
        assert_eq!(server.stats().failed, 1);
    }

    #[test]
    fn try_submit_applies_backpressure() {
        let (compiled, input) = invert_pipeline();
        // Workers blocked behind a deep pipeline of work on one thread with a
        // tiny queue: try_submit must eventually report QueueFull.
        let server = Server::start(ServeConfig::default().with_workers(1).with_queue_depth(1));
        let mut tickets = Vec::new();
        let mut saw_full = false;
        for _ in 0..256 {
            // Larger extents than the submit loop can keep up with.
            let request = ServeRequest::new(Arc::clone(&compiled), &[128, 128])
                .with_image("in", Arc::clone(&input));
            match server.try_submit(request) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull(_)) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("only QueueFull is expected here: {e:?}"),
            }
        }
        for t in tickets {
            t.wait().expect("serve");
        }
        assert!(saw_full, "a depth-1 queue must reject a fast burst");
    }

    /// A structurally valid pipeline whose realize panics: the image access
    /// carries more indices than the bound buffer has dimensions, which
    /// trips the executor's index-arity invariant at run time — compile
    /// cannot see it because arity is only checkable against the binding.
    fn panicking_pipeline() -> Arc<CompiledPipeline> {
        let x = Expr::var("x_0");
        let y = Expr::var("x_1");
        let value = Expr::cast(
            ScalarType::UInt8,
            Expr::Image("in".into(), vec![x, y, Expr::int(0)]),
        );
        let func = Func::pure("out", &["x_0", "x_1"], ScalarType::UInt8, value);
        let pipeline = Pipeline::new(func, vec![ImageParam::new("in", ScalarType::UInt8, 3)]);
        Arc::new(
            pipeline
                .compile(&Schedule::stencil_default(), &CompileOptions::default())
                .expect("compile"),
        )
    }

    #[test]
    fn deadline_expired_request_completes_without_realize() {
        let (compiled, input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(1));
        // Occupy the single worker so the expired request waits in queue.
        let busy = server
            .submit(
                ServeRequest::new(Arc::clone(&compiled), &[128, 128])
                    .with_image("in", Arc::clone(&input)),
            )
            .expect("submit");
        // Already expired at submit: the worker must complete it at dequeue
        // without burning a realize on it.
        let expired = server
            .submit(
                ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                    .with_image("in", Arc::clone(&input))
                    .with_deadline(Instant::now()),
            )
            .expect("submit");
        assert!(matches!(
            expired.wait(),
            Err(RealizeError::DeadlineExceeded)
        ));
        busy.wait().expect("busy request");
        let stats = server.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 2, "expired tickets still complete");
        assert_eq!(stats.failed, 0, "an expiry is not a realize failure");
        // The expired request never reached the program cache: only the
        // busy request's key was ever looked up.
        let cache = compiled.cache_stats();
        assert_eq!(cache.hits + cache.misses, 1, "no realize was burned");
    }

    #[test]
    fn quota_rejects_over_inflight_and_releases_on_completion() {
        let (compiled, input) = invert_pipeline();
        let server = Server::start(
            ServeConfig::default()
                .with_workers(1)
                .with_pipeline_quota(1),
        );
        let first = server
            .submit(
                ServeRequest::new(Arc::clone(&compiled), &[64, 64])
                    .with_image("in", Arc::clone(&input)),
            )
            .expect("first submit fits the quota");
        // While the first request is in flight, the pipeline's quota is
        // spent — both submit paths must hand the request back.
        let second = ServeRequest::new(Arc::clone(&compiled), &[16, 16])
            .with_image("in", Arc::clone(&input));
        let rejected = match server.try_submit(second) {
            Err(SubmitError::QuotaExceeded(r)) => r,
            other => panic!("expected QuotaExceeded, got {other:?}"),
        };
        assert!(matches!(
            server.submit(rejected),
            Err(SubmitError::QuotaExceeded(_))
        ));
        assert_eq!(server.stats().quota_rejected, 2);
        first.wait().expect("first request");
        // Delivery released the slot (counter updates land before `wait`
        // returns), so the pipeline is admissible again.
        let third = server
            .submit(
                ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                    .with_image("in", Arc::clone(&input)),
            )
            .expect("quota released after completion");
        third.wait().expect("third request");
        assert_eq!(server.stats().quota_rejected, 2);
    }

    #[test]
    fn shedding_activates_when_live_p99_exceeds_target() {
        let (compiled, input) = invert_pipeline();
        // A 1ns target is unreachably low: once the live window has enough
        // samples, every real completion keeps p99 far above it.
        let server = Server::start(
            ServeConfig::default()
                .with_workers(2)
                .with_p99_target(std::time::Duration::from_nanos(1)),
        );
        let request = || {
            ServeRequest::new(Arc::clone(&compiled), &[16, 16]).with_image("in", Arc::clone(&input))
        };
        // Blocking submits never shed; they prime the live histogram.
        for _ in 0..32 {
            server
                .submit(request())
                .expect("submit")
                .wait()
                .expect("serve");
        }
        let mut outcomes = (0usize, 0usize); // (admitted, shed)
        for _ in 0..64 {
            match server.try_submit(request()) {
                Ok(t) => {
                    outcomes.0 += 1;
                    t.wait().expect("serve");
                }
                Err(SubmitError::Shed(_)) => outcomes.1 += 1,
                Err(e) => panic!("unexpected rejection: {e:?}"),
            }
        }
        let stats = server.stats();
        assert!(
            outcomes.1 > 0,
            "a 1ns target under real latencies must shed (admitted {}, shed {})",
            outcomes.0,
            outcomes.1
        );
        assert_eq!(stats.shed, outcomes.1 as u64);
        assert_eq!(stats.submitted, 32 + outcomes.0 as u64);
        assert_eq!(
            stats.completed, stats.submitted,
            "every admitted ticket resolved"
        );
    }

    #[test]
    fn full_queue_blocking_submit_never_reports_shutdown() {
        let (compiled, input) = invert_pipeline();
        // Depth-1 queue behind one worker: keep it saturated and push a
        // burst of *blocking* submits through. Every one must be accepted —
        // a full queue blocks, it does not masquerade as ShuttingDown.
        let server = Server::start(ServeConfig::default().with_workers(1).with_queue_depth(1));
        let server = Arc::new(server);
        let tickets: Vec<Ticket> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let server = Arc::clone(&server);
                    let compiled = Arc::clone(&compiled);
                    let input = Arc::clone(&input);
                    scope.spawn(move || {
                        (0..8)
                            .map(|_| {
                                server
                                    .submit(
                                        ServeRequest::new(Arc::clone(&compiled), &[64, 64])
                                            .with_image("in", Arc::clone(&input)),
                                    )
                                    .expect("a live server's blocking submit cannot fail")
                            })
                            .collect::<Vec<Ticket>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter"))
                .collect()
        });
        for t in tickets {
            t.wait().expect("serve");
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.completed, 32);
    }

    #[test]
    fn panicking_realize_resolves_ticket_and_worker_survives() {
        let (compiled, input) = invert_pipeline();
        let bad = panicking_pipeline();
        let bad_input = Arc::new(Buffer::new(ScalarType::UInt8, &[8, 8]));
        let server = Server::start(ServeConfig::default().with_workers(1));
        // Quiet the default panic hook for the deliberate panic below.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ticket = server
            .submit(
                ServeRequest::new(Arc::clone(&bad), &[8, 8])
                    .with_image("in", Arc::clone(&bad_input)),
            )
            .expect("submit");
        // The ticket resolves with the panic instead of hanging forever.
        assert!(matches!(ticket.wait(), Err(RealizeError::Panicked(_))));
        std::panic::set_hook(prev_hook);
        let stats = server.stats();
        assert_eq!(stats.failed, 1, "a panicked realize counts as failed");
        assert_eq!(stats.completed, 1);
        // The sole worker survived the unwind and still serves.
        let ok = server
            .submit(
                ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                    .with_image("in", Arc::clone(&input)),
            )
            .expect("submit");
        ok.wait().expect("the worker must still be alive");
        assert_eq!(server.stats().completed, 2);
    }

    #[test]
    fn completed_counter_trails_ticket_delivery() {
        let (compiled, input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(1));
        for round in 0..16u64 {
            let ticket = server
                .submit(
                    ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                        .with_image("in", Arc::clone(&input)),
                )
                .expect("submit");
            // `completed` is bumped after the result is in the slot, so the
            // moment the counter reaches round+1 the ticket must be done —
            // a coordinator can trust `completed` as a delivery watermark.
            while server.stats().completed < round + 1 {
                std::hint::spin_loop();
            }
            assert!(
                ticket.is_done(),
                "completed advanced past an undelivered ticket"
            );
            ticket.wait().expect("serve");
        }
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let (compiled, input) = invert_pipeline();
        let server = Server::start(ServeConfig::default().with_workers(2));
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| {
                server
                    .submit(
                        ServeRequest::new(Arc::clone(&compiled), &[16, 16])
                            .with_image("in", Arc::clone(&input)),
                    )
                    .expect("submit")
            })
            .collect();
        server.shutdown();
        for ticket in tickets {
            ticket.wait().expect("accepted work completes");
        }
    }
}
