//! A bounded multi-producer/multi-consumer queue on std primitives.
//!
//! The submission side of the serve loop: producers block (or fail fast with
//! [`PushError::Full`]) when the queue is at capacity, consumers block until
//! an item arrives or the queue is closed and drained. Closing wakes every
//! waiter; producers then fail with [`PushError::Closed`] and consumers
//! drain the backlog before seeing `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue. The rejected item is handed back so callers
/// can retry, reroute, or surface it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (only from [`BoundedQueue::try_push`]).
    Full(T),
    /// The queue has been closed; no further items are accepted.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: `Mutex<VecDeque>` plus two condition variables
/// (`not_empty` for consumers, `not_full` for producers).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; fails fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue mutex");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the queue is full. Fails only when closed —
    /// a blocking push never returns [`PushError::Full`]; callers may treat
    /// that arm as unreachable.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue mutex");
        while !state.closed && state.items.len() >= self.capacity {
            state = self.not_full.wait(state).expect("queue mutex");
        }
        if state.closed {
            return Err(PushError::Closed(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty. Returns `None` only once
    /// the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue mutex");
        }
    }

    /// Close the queue: reject future pushes and wake every waiter.
    pub fn close(&self) {
        self.state.lock().expect("queue mutex").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex").items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_fails_fast_when_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_push_fails_closed_never_full() {
        // A push blocked on a full queue that then closes must report
        // `Closed` — the queue is still full, but `Full` is a try_push-only
        // outcome and the serving layer relies on that distinction.
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        // Let the producer reach the wait; closing must wake and fail it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(matches!(
            producer.join().expect("producer"),
            Err(PushError::Closed(1))
        ));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_wakes_on_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue until this pop.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().expect("producer"));
        assert_eq!(q.pop(), Some(1));
    }
}
