//! Shared helpers for the cross-crate integration tests: binding lifted
//! pipelines to the memory image of the legacy application and realizing them.

use helium::core::{GeneratedKernel, LiftedStencil};
use helium::halide::{Buffer, RealizeInputs, Realizer, ScalarType, Schedule, Value};
use helium::machine::Memory;

/// Build a [`Buffer`] for `layout` by reading every element from `mem`,
/// honouring the inferred strides (so alignment padding and ghost gaps are
/// reproduced faithfully).
pub fn buffer_from_memory(
    mem: &Memory,
    lifted: &LiftedStencil,
    name: &str,
    ty: ScalarType,
) -> Buffer {
    let layout = lifted.buffer(name).expect("layout for named buffer");
    let extents: Vec<usize> = layout.extents.iter().map(|&e| e as usize).collect();
    let mut buf = Buffer::new(ty, &extents);
    let dims = extents.len();
    let mut idx = vec![0usize; dims];
    loop {
        let mut addr = layout.base;
        for (d, &i) in idx.iter().enumerate() {
            addr += i as u32 * layout.strides[d];
        }
        let coord: Vec<i64> = idx.iter().map(|&i| i as i64).collect();
        let value = match ty {
            ScalarType::Float64 => Value::Float(mem.read_f64(addr)),
            ScalarType::Float32 => Value::Float(mem.read_f32(addr) as f64),
            _ => Value::Int(mem.read_uint(addr, layout.element_size) as i64),
        };
        buf.set(&coord, value);
        // Advance the odometer.
        let mut d = 0;
        loop {
            if d == dims {
                return buf;
            }
            idx[d] += 1;
            if idx[d] < extents[d] {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// Realize one generated kernel against the memory image in `mem`, returning
/// the output buffer realized over `extents` (defaults to the inferred output
/// extents when `None`).
#[allow(dead_code)] // shared across test binaries; not all of them use it
pub fn realize_kernel(
    mem: &Memory,
    lifted: &LiftedStencil,
    kernel: &GeneratedKernel,
    extents: Option<Vec<usize>>,
    schedule: Schedule,
) -> Buffer {
    let mut buffers = Vec::new();
    for (name, param) in &kernel.pipeline.images {
        buffers.push((
            name.clone(),
            buffer_from_memory(mem, lifted, name, param.ty),
        ));
    }
    let mut inputs = RealizeInputs::new();
    for (name, buf) in &buffers {
        inputs = inputs.with_image(name, buf);
    }
    for (name, value) in &kernel.parameter_values {
        inputs = inputs.with_param(name, *value);
    }
    let out_layout = lifted.buffer(&kernel.output).expect("output layout");
    let extents = extents.unwrap_or_else(|| {
        out_layout
            .extents
            .iter()
            .map(|&e| e as usize)
            .collect::<Vec<_>>()
    });
    Realizer::new(schedule)
        .realize(&kernel.pipeline, &extents, &inputs)
        .expect("lifted kernel realizes")
}
