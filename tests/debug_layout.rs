//! Diagnostic helper (ignored by default): prints the inferred buffer layouts
//! for a PhotoFlow blur lift. Run with `cargo test --test debug_layout -- --ignored --nocapture`.

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::layout::{infer_from_known_data, BufferRole, KnownData};
use helium::core::localize::localize;
use helium::core::regions::reconstruct_filtered;
use helium::dbi::{Instrumenter, MemTraceEntry};

#[test]
#[ignore = "diagnostic output only"]
fn print_blur_layouts() {
    let image = PlanarImage::random(32, 17, 1, 16, 0xC0FFEE);
    let app = PhotoFlow::new(PhotoFilter::Blur, image);
    println!("layout: {:?}", app.layout());
    let instr = Instrumenter::new();
    let with = instr
        .coverage(app.program(), &mut app.fresh_cpu(true))
        .unwrap();
    let without = instr
        .coverage(app.program(), &mut app.fresh_cpu(false))
        .unwrap();
    let diff = with.difference(&without);
    let profile = instr
        .profile(app.program(), &mut app.fresh_cpu(true), &diff)
        .unwrap();
    let loc = localize(
        app.program(),
        &with,
        &without,
        &profile,
        app.approx_data_size(),
    )
    .unwrap();
    println!(
        "filter fn {:#x} (expected {:#x})",
        loc.filter_function,
        app.filter_entry_for_reference()
    );
    let (trace, dump) = instr
        .function_trace(
            app.program(),
            &mut app.fresh_cpu(true),
            loc.filter_function,
            &loc.candidate_instructions,
        )
        .unwrap();
    println!("trace len {} dump {} bytes", trace.len(), dump.size_bytes());
    let entries: Vec<MemTraceEntry> = trace
        .records
        .iter()
        .flat_map(|r| {
            r.mem.iter().map(move |m| MemTraceEntry {
                instr_addr: r.addr,
                addr: m.addr,
                width: m.width,
                is_write: m.is_write,
            })
        })
        .collect();
    let stack_top = helium::machine::cpu::DEFAULT_STACK_TOP;
    let regions = reconstruct_filtered(&entries, |e| {
        e.addr < stack_top - 0x10_0000 || e.addr > stack_top
    });
    for r in &regions {
        println!(
            "region {:#x}..{:#x} len {} elem {} strides {:?} r/w {}/{}",
            r.start,
            r.end,
            r.len(),
            r.element_width,
            r.group_strides,
            r.read,
            r.written
        );
    }
    for (i, rows) in app.known_input_rows().into_iter().enumerate() {
        let l = infer_from_known_data(
            &KnownData::from_rows(rows),
            &dump,
            &regions,
            false,
            &format!("input_{}", i + 1),
            BufferRole::Input,
        );
        println!("input_{} layout: {:?}", i + 1, l);
    }
    for (i, rows) in app.known_output_rows().into_iter().enumerate() {
        let l = infer_from_known_data(
            &KnownData::from_rows(rows),
            &dump,
            &regions,
            true,
            &format!("output_{}", i + 1),
            BufferRole::Output,
        );
        println!("output_{} layout: {:?}", i + 1, l);
    }
}
