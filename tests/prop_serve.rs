//! Concurrency differential stress tests for the serving stack: many
//! threads hammering a shared set of [`CompiledPipeline`]s — directly and
//! through a [`Server`] — with mixed extents, bit-compared against the
//! per-element interpreter oracle. The CI `serve` job runs this suite under
//! both `HELIUM_FORCE_SCALAR=1` and `HELIUM_FORCE_SIMD=1`, so every
//! execution tier (including the parallel-reduce deferred-accumulation
//! path) is differentially covered under contention.
//!
//! The suite also reconciles the sharded program-cache counters: per-shard
//! stats must sum to the aggregate, and every miss must be accounted for by
//! either a build or a coalesced wait.

use helium::halide::prelude::*;
use helium::halide::realize::{ExecBackend, RealizeError};
use helium_bench::{hist64_pipeline, hist64_rdom_pipeline, minigmg_smooth_f32};
use helium_serve::{ServeConfig, ServeRequest, Server, SubmitError, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const ITERS_PER_THREAD: usize = 24;

/// One shared pipeline under test: its compiled form, the interpreter
/// oracle's outputs per extent, and the input buffer both bind.
struct Subject {
    name: &'static str,
    compiled: Arc<CompiledPipeline>,
    input: Arc<Buffer>,
    input_name: &'static str,
    /// Mixed realize extents, each with the oracle's output.
    cases: Vec<(Vec<usize>, Buffer)>,
}

fn subject(
    name: &'static str,
    pipeline: &Pipeline,
    input_name: &'static str,
    input: Buffer,
    extents: &[&[usize]],
) -> Subject {
    let schedule = Schedule::stencil_default();
    let compiled = pipeline
        .compile(&schedule, &CompileOptions::default())
        .expect("compile lowered");
    let oracle = pipeline
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Interpret,
                ..CompileOptions::default()
            },
        )
        .expect("compile oracle");
    let inputs = RealizeInputs::new().with_image(input_name, &input);
    let cases = extents
        .iter()
        .map(|e| (e.to_vec(), oracle.run(&inputs, e).expect("oracle run")))
        .collect();
    Subject {
        name,
        compiled: Arc::new(compiled),
        input: Arc::new(input),
        input_name,
        cases,
    }
}

/// The shared pipeline set: an i64-lane pure stencil, an f32-lane 3-D
/// smoother, and the histogram reduction (guarded stores + the
/// parallel-reduce deferred path), each over three extents.
fn subjects() -> Vec<Subject> {
    let (hist_pure, hist_pure_in) = hist64_pipeline(46, 38, 0xA11CE);
    let (smooth, grid) = minigmg_smooth_f32(18, 10, 6, 0x6116);
    let (hist_rdom, hist_rdom_in) = hist64_rdom_pipeline(96, 64, 0xB16B);
    vec![
        subject(
            "hist64_pure",
            &hist_pure,
            "in",
            hist_pure_in,
            &[&[46, 38], &[32, 24], &[16, 8]],
        ),
        subject(
            "minigmg_smooth_f32",
            &smooth,
            "grid",
            grid,
            &[&[18, 10, 6], &[16, 8, 6], &[8, 10, 4]],
        ),
        subject(
            "hist64_rdom",
            &hist_rdom,
            "in",
            hist_rdom_in,
            &[&[256], &[128], &[64]],
        ),
    ]
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Reconcile a compiled pipeline's sharded cache counters after `runs`
/// total realizes of `distinct` distinct keys (no evictions expected at
/// these counts).
fn reconcile(subject: &Subject, runs: u64, distinct: usize) {
    let stats = subject.compiled.cache_stats();
    let shards = subject.compiled.cache_shard_stats();
    assert_eq!(
        stats.hits,
        shards.iter().map(|s| s.hits).sum::<u64>(),
        "{}: aggregate hits != shard sum",
        subject.name
    );
    assert_eq!(
        stats.misses,
        shards.iter().map(|s| s.misses).sum::<u64>(),
        "{}: aggregate misses != shard sum",
        subject.name
    );
    assert_eq!(
        stats.evictions,
        shards.iter().map(|s| s.evictions).sum::<u64>(),
        "{}: aggregate evictions != shard sum",
        subject.name
    );
    assert_eq!(
        stats.hits + stats.misses,
        runs,
        "{}: every realize is a lookup",
        subject.name
    );
    assert_eq!(
        stats.misses,
        subject.compiled.compiles() + subject.compiled.coalesced_compiles(),
        "{}: every miss either built or joined an in-flight build",
        subject.name
    );
    assert_eq!(
        stats.evictions, 0,
        "{}: no evictions expected",
        subject.name
    );
    assert_eq!(
        subject.compiled.compiles(),
        distinct as u64,
        "{}: one build per distinct key",
        subject.name
    );
    assert_eq!(
        subject.compiled.cached_programs(),
        distinct,
        "{}: all programs retained",
        subject.name
    );
}

#[test]
fn concurrent_direct_runs_match_interpreter_oracle() {
    let subjects = subjects();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let subjects = &subjects;
            scope.spawn(move || {
                let mut state = 0x5EED ^ (t as u64) << 17;
                for _ in 0..ITERS_PER_THREAD {
                    let s = &subjects[(lcg(&mut state) % subjects.len() as u64) as usize];
                    let (extents, expected) =
                        &s.cases[(lcg(&mut state) % s.cases.len() as u64) as usize];
                    let inputs = RealizeInputs::new().with_image(s.input_name, &s.input);
                    let got = s.compiled.run(&inputs, extents).expect("compiled run");
                    assert_eq!(
                        &got, expected,
                        "{} diverged from the oracle at {extents:?}",
                        s.name
                    );
                }
            });
        }
    });
    let total: u64 = (THREADS * ITERS_PER_THREAD) as u64;
    let per_subject: u64 = subjects
        .iter()
        .map(|s| {
            let stats = s.compiled.cache_stats();
            stats.hits + stats.misses
        })
        .sum();
    assert_eq!(per_subject, total, "every run hit exactly one cache");
    for s in &subjects {
        let runs = {
            let stats = s.compiled.cache_stats();
            stats.hits + stats.misses
        };
        reconcile(s, runs, s.cases.len());
    }
}

#[test]
fn served_requests_match_interpreter_oracle() {
    let subjects = subjects();
    let server = Server::start(ServeConfig::default().with_workers(THREADS));
    let mut state = 0xCAFE_F00Du64;
    let mut pending = Vec::new();
    for _ in 0..THREADS * ITERS_PER_THREAD {
        let si = (lcg(&mut state) % subjects.len() as u64) as usize;
        let s = &subjects[si];
        let ci = (lcg(&mut state) % s.cases.len() as u64) as usize;
        let request = ServeRequest::new(Arc::clone(&s.compiled), &s.cases[ci].0)
            .with_image(s.input_name, Arc::clone(&s.input));
        pending.push((si, ci, server.submit(request).expect("submit")));
    }
    for (si, ci, ticket) in pending {
        let s = &subjects[si];
        let got = ticket.wait().expect("served run");
        assert_eq!(
            got, s.cases[ci].1,
            "{} diverged from the oracle at {:?} when served",
            s.name, s.cases[ci].0
        );
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, (THREADS * ITERS_PER_THREAD) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.latency.count, stats.completed);
    server.shutdown();
    for s in &subjects {
        let runs = {
            let cache = s.compiled.cache_stats();
            cache.hits + cache.misses
        };
        reconcile(s, runs, s.cases.len());
    }
}

/// Shutdown/submit race: threads submitting concurrently with `shutdown()`
/// must each get either a resolvable ticket or `SubmitError::ShuttingDown`,
/// never a hang. Runs under both forced-tier CI legs like the rest of the
/// suite.
#[test]
fn shutdown_concurrent_with_submit_never_strands_a_ticket() {
    let subjects = subjects();
    let server = Server::start(ServeConfig::default().with_workers(4));
    let barrier = std::sync::Barrier::new(THREADS + 1);
    let accepted: Vec<(usize, usize, Ticket)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = &server;
                let subjects = &subjects;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut state = 0xD00F ^ (t as u64) << 13;
                    let mut mine = Vec::new();
                    barrier.wait();
                    for _ in 0..ITERS_PER_THREAD {
                        let si = (lcg(&mut state) % subjects.len() as u64) as usize;
                        let s = &subjects[si];
                        let ci = (lcg(&mut state) % s.cases.len() as u64) as usize;
                        let request = ServeRequest::new(Arc::clone(&s.compiled), &s.cases[ci].0)
                            .with_image(s.input_name, Arc::clone(&s.input));
                        match server.submit(request) {
                            Ok(ticket) => mine.push((si, ci, ticket)),
                            Err(SubmitError::ShuttingDown(_)) => break,
                            Err(e) => panic!("unexpected rejection during shutdown race: {e:?}"),
                        }
                    }
                    mine
                })
            })
            .collect();
        barrier.wait();
        // Give the submitters a moment to race, then close mid-stream —
        // submits after this fail ShuttingDown, accepted work still drains.
        std::thread::sleep(Duration::from_millis(2));
        server.close();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect()
    });
    let stats_handed_out = accepted.len() as u64;
    // Every accepted ticket resolves — bit-exactly, since no deadline or
    // panic is in play here.
    for (si, ci, ticket) in accepted {
        let s = &subjects[si];
        let got = ticket.wait().expect("accepted ticket resolves");
        assert_eq!(
            got, s.cases[ci].1,
            "{} diverged from the oracle under the shutdown race",
            s.name
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.submitted, stats_handed_out,
        "accepted == tickets handed out"
    );
    assert_eq!(
        stats.completed, stats.submitted,
        "accepted work all drained"
    );
    server.shutdown();
}

/// Saturate one worker and race deadlines against the queue: every ticket
/// resolves either bit-exactly or with `DeadlineExceeded`, the `expired`
/// counter reconciles with observations, and expired requests never reach
/// the program cache.
#[test]
fn deadline_overload_every_ticket_resolves() {
    let (pipeline, input) = hist64_rdom_pipeline(96, 64, 0xDEAD);
    let compiled = Arc::new(
        pipeline
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .expect("compile"),
    );
    let oracle = {
        let inputs = RealizeInputs::new().with_image("in", &input);
        pipeline
            .compile(
                &Schedule::stencil_default(),
                &CompileOptions {
                    backend: ExecBackend::Interpret,
                    ..CompileOptions::default()
                },
            )
            .expect("compile oracle")
            .run(&inputs, &[256])
            .expect("oracle run")
    };
    let input = Arc::new(input);
    let server = Server::start(ServeConfig::default().with_workers(1).with_queue_depth(256));
    let mut state = 0x5AFE_u64;
    let mut tickets = Vec::new();
    for i in 0..96 {
        let mut request =
            ServeRequest::new(Arc::clone(&compiled), &[256]).with_image("in", Arc::clone(&input));
        // A mix of no deadline, already-expired, and tight-racy deadlines.
        request = match i % 3 {
            0 => request,
            1 => request.with_deadline(Instant::now()),
            _ => request.with_timeout(Duration::from_micros(lcg(&mut state) % 3000)),
        };
        tickets.push(server.submit(request).expect("submit"));
    }
    let mut expired_seen = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(got) => assert_eq!(got, oracle, "served result diverged under deadline load"),
            Err(RealizeError::DeadlineExceeded) => expired_seen += 1,
            Err(e) => panic!("unexpected realize error under deadline load: {e}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 96, "every ticket resolved");
    assert_eq!(stats.expired, expired_seen, "expired counter reconciles");
    assert!(stats.expired >= 32, "the already-expired third must expire");
    assert_eq!(stats.failed, 0, "expiries are not failures");
    // Expired jobs skipped the realize entirely: cache lookups == realized.
    let cache = compiled.cache_stats();
    assert_eq!(cache.hits + cache.misses, 96 - expired_seen);
}

/// Per-pipeline quotas under a concurrent storm: rejections reconcile with
/// the counter, accepted work is bit-exact, and a quota on one pipeline
/// never starves another.
#[test]
fn quota_storm_rejections_reconcile_and_other_pipelines_proceed() {
    let subjects = subjects();
    let quota = 4usize;
    let server = Arc::new(Server::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(256)
            .with_pipeline_quota(quota),
    ));

    // Phase 1 — deterministic trip: fill subjects[0]'s quota with blocking
    // submits. In-flight = queued + running, released only at ticket
    // delivery; with one worker the earliest release is after the first job
    // finishes its cold-start program build, so the immediate try_submit
    // below races against milliseconds, not microseconds. Meanwhile a
    // different pipeline must sail through.
    let s0 = &subjects[0];
    let s1 = &subjects[1];
    let held: Vec<Ticket> = (0..quota)
        .map(|_| {
            let request = ServeRequest::new(Arc::clone(&s0.compiled), &s0.cases[0].0)
                .with_image(s0.input_name, Arc::clone(&s0.input));
            server.submit(request).expect("fill quota")
        })
        .collect();
    let over = ServeRequest::new(Arc::clone(&s0.compiled), &s0.cases[0].0)
        .with_image(s0.input_name, Arc::clone(&s0.input));
    // The quota counts queued + running; nothing has been waited on, so the
    // pipeline is pinned at its limit right now.
    assert!(
        matches!(server.try_submit(over), Err(SubmitError::QuotaExceeded(_))),
        "a full quota must reject the next try_submit"
    );
    let other = ServeRequest::new(Arc::clone(&s1.compiled), &s1.cases[0].0)
        .with_image(s1.input_name, Arc::clone(&s1.input));
    let other_ticket = server
        .try_submit(other)
        .expect("a quota on one pipeline never starves another");
    for t in held {
        t.wait().expect("held ticket");
    }
    assert_eq!(other_ticket.wait().expect("other pipeline"), s1.cases[0].1);

    // Phase 2 — concurrent storm: rejections may or may not happen (the
    // quota releases as work drains), but the counter must reconcile and
    // accepted work must stay bit-exact.
    let rejected = Arc::new(std::sync::atomic::AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = Arc::clone(&server);
            let rejected = Arc::clone(&rejected);
            let subjects = &subjects;
            scope.spawn(move || {
                let mut state = 0xBEEF ^ (t as u64) << 19;
                for _ in 0..ITERS_PER_THREAD {
                    let s = &subjects[(lcg(&mut state) % subjects.len() as u64) as usize];
                    let (extents, expected) =
                        &s.cases[(lcg(&mut state) % s.cases.len() as u64) as usize];
                    let request = ServeRequest::new(Arc::clone(&s.compiled), extents)
                        .with_image(s.input_name, Arc::clone(&s.input));
                    match server.try_submit(request) {
                        Ok(ticket) => {
                            let got = ticket.wait().expect("accepted ticket");
                            assert_eq!(&got, expected, "{} diverged under quota storm", s.name);
                        }
                        Err(SubmitError::QuotaExceeded(_)) => {
                            rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected rejection under quota storm: {e:?}"),
                    }
                }
            });
        }
    });
    let stats = server.stats();
    let storm_rejected = rejected.load(std::sync::atomic::Ordering::Relaxed);
    // +1 for the deterministic phase-1 trip.
    assert_eq!(
        stats.quota_rejected,
        storm_rejected + 1,
        "rejection counter reconciles"
    );
    let phase1_submitted = quota as u64 + 1;
    assert_eq!(
        stats.submitted + storm_rejected,
        phase1_submitted + (THREADS * ITERS_PER_THREAD) as u64,
        "every attempt either submitted or was quota-rejected"
    );
    assert_eq!(
        stats.completed, stats.submitted,
        "accepted work all resolved"
    );
}

/// Load shedding under a try_submit storm with an unreachably low p99
/// target: sheds happen, the counter reconciles, and accepted work stays
/// bit-exact.
#[test]
fn shed_storm_reconciles_and_accepted_work_is_exact() {
    let subjects = subjects();
    let server = Arc::new(Server::start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_depth(256)
            .with_p99_target(Duration::from_nanos(1)),
    ));
    // Prime the live histogram past the shedding minimum via blocking
    // submits (which never shed).
    let s0 = &subjects[0];
    for _ in 0..32 {
        let request = ServeRequest::new(Arc::clone(&s0.compiled), &s0.cases[0].0)
            .with_image(s0.input_name, Arc::clone(&s0.input));
        server
            .submit(request)
            .expect("priming submit")
            .wait()
            .expect("priming ticket");
    }
    let shed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let admitted = Arc::new(std::sync::atomic::AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = Arc::clone(&server);
            let shed = Arc::clone(&shed);
            let admitted = Arc::clone(&admitted);
            let subjects = &subjects;
            scope.spawn(move || {
                let mut state = 0x51ED ^ (t as u64) << 23;
                for _ in 0..ITERS_PER_THREAD {
                    let s = &subjects[(lcg(&mut state) % subjects.len() as u64) as usize];
                    let (extents, expected) =
                        &s.cases[(lcg(&mut state) % s.cases.len() as u64) as usize];
                    let request = ServeRequest::new(Arc::clone(&s.compiled), extents)
                        .with_image(s.input_name, Arc::clone(&s.input));
                    match server.try_submit(request) {
                        Ok(ticket) => {
                            admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let got = ticket.wait().expect("accepted ticket");
                            assert_eq!(&got, expected, "{} diverged under shed storm", s.name);
                        }
                        Err(SubmitError::Shed(_)) => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected rejection under shed storm: {e:?}"),
                    }
                }
            });
        }
    });
    let stats = server.stats();
    let shed = shed.load(std::sync::atomic::Ordering::Relaxed);
    let admitted = admitted.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(stats.shed, shed, "shed counter reconciles");
    assert_eq!(stats.submitted, 32 + admitted);
    assert_eq!(
        stats.completed, stats.submitted,
        "accepted work all resolved"
    );
    assert!(
        shed > 0,
        "a 1ns p99 target under a {THREADS}-thread storm must shed"
    );
}

#[test]
fn cold_cache_same_key_storm_coalesces() {
    // Every worker needs the same cold (pipeline, extents, bindings) key at
    // once: exactly one build must happen, everyone else shares it.
    let (pipeline, input) = hist64_rdom_pipeline(96, 64, 0x0C0A);
    let compiled = Arc::new(
        pipeline
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .expect("compile"),
    );
    let input = Arc::new(input);
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let compiled = &compiled;
            let input = &input;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let inputs = RealizeInputs::new().with_image("in", input);
                compiled.run(&inputs, &[256]).expect("run");
            });
        }
    });
    let stats = compiled.cache_stats();
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert_eq!(compiled.compiles(), 1, "one build for one key");
    assert_eq!(
        stats.misses,
        compiled.compiles() + compiled.coalesced_compiles(),
        "misses reconcile with builds + coalesced waits"
    );
}
