//! Concurrency differential stress tests for the serving stack: many
//! threads hammering a shared set of [`CompiledPipeline`]s — directly and
//! through a [`Server`] — with mixed extents, bit-compared against the
//! per-element interpreter oracle. The CI `serve` job runs this suite under
//! both `HELIUM_FORCE_SCALAR=1` and `HELIUM_FORCE_SIMD=1`, so every
//! execution tier (including the parallel-reduce deferred-accumulation
//! path) is differentially covered under contention.
//!
//! The suite also reconciles the sharded program-cache counters: per-shard
//! stats must sum to the aggregate, and every miss must be accounted for by
//! either a build or a coalesced wait.

use helium::halide::prelude::*;
use helium::halide::realize::ExecBackend;
use helium_bench::{hist64_pipeline, hist64_rdom_pipeline, minigmg_smooth_f32};
use helium_serve::{ServeConfig, ServeRequest, Server};
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS_PER_THREAD: usize = 24;

/// One shared pipeline under test: its compiled form, the interpreter
/// oracle's outputs per extent, and the input buffer both bind.
struct Subject {
    name: &'static str,
    compiled: Arc<CompiledPipeline>,
    input: Arc<Buffer>,
    input_name: &'static str,
    /// Mixed realize extents, each with the oracle's output.
    cases: Vec<(Vec<usize>, Buffer)>,
}

fn subject(
    name: &'static str,
    pipeline: &Pipeline,
    input_name: &'static str,
    input: Buffer,
    extents: &[&[usize]],
) -> Subject {
    let schedule = Schedule::stencil_default();
    let compiled = pipeline
        .compile(&schedule, &CompileOptions::default())
        .expect("compile lowered");
    let oracle = pipeline
        .compile(
            &schedule,
            &CompileOptions {
                backend: ExecBackend::Interpret,
                ..CompileOptions::default()
            },
        )
        .expect("compile oracle");
    let inputs = RealizeInputs::new().with_image(input_name, &input);
    let cases = extents
        .iter()
        .map(|e| (e.to_vec(), oracle.run(&inputs, e).expect("oracle run")))
        .collect();
    Subject {
        name,
        compiled: Arc::new(compiled),
        input: Arc::new(input),
        input_name,
        cases,
    }
}

/// The shared pipeline set: an i64-lane pure stencil, an f32-lane 3-D
/// smoother, and the histogram reduction (guarded stores + the
/// parallel-reduce deferred path), each over three extents.
fn subjects() -> Vec<Subject> {
    let (hist_pure, hist_pure_in) = hist64_pipeline(46, 38, 0xA11CE);
    let (smooth, grid) = minigmg_smooth_f32(18, 10, 6, 0x6116);
    let (hist_rdom, hist_rdom_in) = hist64_rdom_pipeline(96, 64, 0xB16B);
    vec![
        subject(
            "hist64_pure",
            &hist_pure,
            "in",
            hist_pure_in,
            &[&[46, 38], &[32, 24], &[16, 8]],
        ),
        subject(
            "minigmg_smooth_f32",
            &smooth,
            "grid",
            grid,
            &[&[18, 10, 6], &[16, 8, 6], &[8, 10, 4]],
        ),
        subject(
            "hist64_rdom",
            &hist_rdom,
            "in",
            hist_rdom_in,
            &[&[256], &[128], &[64]],
        ),
    ]
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Reconcile a compiled pipeline's sharded cache counters after `runs`
/// total realizes of `distinct` distinct keys (no evictions expected at
/// these counts).
fn reconcile(subject: &Subject, runs: u64, distinct: usize) {
    let stats = subject.compiled.cache_stats();
    let shards = subject.compiled.cache_shard_stats();
    assert_eq!(
        stats.hits,
        shards.iter().map(|s| s.hits).sum::<u64>(),
        "{}: aggregate hits != shard sum",
        subject.name
    );
    assert_eq!(
        stats.misses,
        shards.iter().map(|s| s.misses).sum::<u64>(),
        "{}: aggregate misses != shard sum",
        subject.name
    );
    assert_eq!(
        stats.evictions,
        shards.iter().map(|s| s.evictions).sum::<u64>(),
        "{}: aggregate evictions != shard sum",
        subject.name
    );
    assert_eq!(
        stats.hits + stats.misses,
        runs,
        "{}: every realize is a lookup",
        subject.name
    );
    assert_eq!(
        stats.misses,
        subject.compiled.compiles() + subject.compiled.coalesced_compiles(),
        "{}: every miss either built or joined an in-flight build",
        subject.name
    );
    assert_eq!(
        stats.evictions, 0,
        "{}: no evictions expected",
        subject.name
    );
    assert_eq!(
        subject.compiled.compiles(),
        distinct as u64,
        "{}: one build per distinct key",
        subject.name
    );
    assert_eq!(
        subject.compiled.cached_programs(),
        distinct,
        "{}: all programs retained",
        subject.name
    );
}

#[test]
fn concurrent_direct_runs_match_interpreter_oracle() {
    let subjects = subjects();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let subjects = &subjects;
            scope.spawn(move || {
                let mut state = 0x5EED ^ (t as u64) << 17;
                for _ in 0..ITERS_PER_THREAD {
                    let s = &subjects[(lcg(&mut state) % subjects.len() as u64) as usize];
                    let (extents, expected) =
                        &s.cases[(lcg(&mut state) % s.cases.len() as u64) as usize];
                    let inputs = RealizeInputs::new().with_image(s.input_name, &s.input);
                    let got = s.compiled.run(&inputs, extents).expect("compiled run");
                    assert_eq!(
                        &got, expected,
                        "{} diverged from the oracle at {extents:?}",
                        s.name
                    );
                }
            });
        }
    });
    let total: u64 = (THREADS * ITERS_PER_THREAD) as u64;
    let per_subject: u64 = subjects
        .iter()
        .map(|s| {
            let stats = s.compiled.cache_stats();
            stats.hits + stats.misses
        })
        .sum();
    assert_eq!(per_subject, total, "every run hit exactly one cache");
    for s in &subjects {
        let runs = {
            let stats = s.compiled.cache_stats();
            stats.hits + stats.misses
        };
        reconcile(s, runs, s.cases.len());
    }
}

#[test]
fn served_requests_match_interpreter_oracle() {
    let subjects = subjects();
    let server = Server::start(ServeConfig::default().with_workers(THREADS));
    let mut state = 0xCAFE_F00Du64;
    let mut pending = Vec::new();
    for _ in 0..THREADS * ITERS_PER_THREAD {
        let si = (lcg(&mut state) % subjects.len() as u64) as usize;
        let s = &subjects[si];
        let ci = (lcg(&mut state) % s.cases.len() as u64) as usize;
        let request = ServeRequest::new(Arc::clone(&s.compiled), &s.cases[ci].0)
            .with_image(s.input_name, Arc::clone(&s.input));
        pending.push((si, ci, server.submit(request).expect("submit")));
    }
    for (si, ci, ticket) in pending {
        let s = &subjects[si];
        let got = ticket.wait().expect("served run");
        assert_eq!(
            got, s.cases[ci].1,
            "{} diverged from the oracle at {:?} when served",
            s.name, s.cases[ci].0
        );
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, (THREADS * ITERS_PER_THREAD) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.latency.count, stats.completed);
    server.shutdown();
    for s in &subjects {
        let runs = {
            let cache = s.compiled.cache_stats();
            cache.hits + cache.misses
        };
        reconcile(s, runs, s.cases.len());
    }
}

#[test]
fn cold_cache_same_key_storm_coalesces() {
    // Every worker needs the same cold (pipeline, extents, bindings) key at
    // once: exactly one build must happen, everyone else shares it.
    let (pipeline, input) = hist64_rdom_pipeline(96, 64, 0x0C0A);
    let compiled = Arc::new(
        pipeline
            .compile(&Schedule::stencil_default(), &CompileOptions::default())
            .expect("compile"),
    );
    let input = Arc::new(input);
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let compiled = &compiled;
            let input = &input;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let inputs = RealizeInputs::new().with_image("in", input);
                compiled.run(&inputs, &[256]).expect("run");
            });
        }
    });
    let stats = compiled.cache_stats();
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert_eq!(compiled.compiles(), 1, "one build for one key");
    assert_eq!(
        stats.misses,
        compiled.compiles() + compiled.coalesced_compiles(),
        "misses reconcile with builds + coalesced waits"
    );
}
