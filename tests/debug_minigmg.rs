//! Diagnostic helper (ignored by default): prints the reconstructed regions,
//! generically inferred layouts and cluster statistics for a miniGMG smooth
//! lift. Run with `cargo test --test debug_minigmg -- --ignored --nocapture`.

use helium::apps::{Grid3D, MiniGmg};
use helium::core::extract::{prepare_trace, TreeBuilder};
use helium::core::layout::{infer_generic, BufferRole};
use helium::core::localize::localize;
use helium::core::regions::reconstruct_filtered;
use helium::core::symbolic::{abstract_guarded, cluster_trees};
use helium::dbi::{Instrumenter, MemTraceEntry};

#[test]
#[ignore = "diagnostic output only"]
fn print_minigmg_layouts() {
    let grid = Grid3D::random(12, 10, 8, 1, 3);
    let app = MiniGmg::new(grid.clone());
    let instr = Instrumenter::new();
    let with = instr
        .coverage(app.program(), &mut app.fresh_cpu(true))
        .unwrap();
    let without = instr
        .coverage(app.program(), &mut app.fresh_cpu(false))
        .unwrap();
    let diff = with.difference(&without);
    let profile = instr
        .profile(app.program(), &mut app.fresh_cpu(true), &diff)
        .unwrap();
    let loc = localize(
        app.program(),
        &with,
        &without,
        &profile,
        app.approx_data_size(),
    )
    .unwrap();
    println!(
        "filter fn {:#x} (expected {:#x})",
        loc.filter_function,
        app.kernel_entry_for_reference()
    );
    let (trace, dump) = instr
        .function_trace(
            app.program(),
            &mut app.fresh_cpu(true),
            loc.filter_function,
            &loc.candidate_instructions,
        )
        .unwrap();
    println!("trace len {} dump {} bytes", trace.len(), dump.size_bytes());
    println!(
        "grid: px {} py {} pz {} input {:#x} output {:#x}",
        grid.px(),
        grid.py(),
        grid.pz(),
        app.input_addr(),
        app.output_addr()
    );
    let entries: Vec<MemTraceEntry> = trace
        .records
        .iter()
        .flat_map(|r| {
            r.mem.iter().map(move |m| MemTraceEntry {
                instr_addr: r.addr,
                addr: m.addr,
                width: m.width,
                is_write: m.is_write,
            })
        })
        .collect();
    let stack_top = helium::machine::cpu::DEFAULT_STACK_TOP;
    let regions = reconstruct_filtered(&entries, |e| {
        e.addr < stack_top - 0x10_0000 || e.addr > stack_top
    });
    let mut buffers = Vec::new();
    let mut n_in = 0;
    let mut n_out = 0;
    for r in &regions {
        println!(
            "region {:#x}..{:#x} len {} elem {} strides {:?} r/w {}/{}",
            r.start,
            r.end,
            r.len(),
            r.element_width,
            r.group_strides,
            r.read,
            r.written
        );
        if r.len() < 128 {
            continue;
        }
        let big = r.len() as f64 >= app.approx_data_size() as f64 * 0.5;
        if r.written && big {
            n_out += 1;
            let l = infer_generic(r, &format!("output_{n_out}"), BufferRole::Output);
            println!("  -> {:?}", l);
            buffers.push(l);
        } else if r.read && !r.written && big {
            n_in += 1;
            let l = infer_generic(r, &format!("input_{n_in}"), BufferRole::Input);
            println!("  -> {:?}", l);
            buffers.push(l);
        }
    }
    let input_layouts: Vec<_> = buffers
        .iter()
        .filter(|b| b.role != BufferRole::Output)
        .cloned()
        .collect();
    let prepared = prepare_trace(&trace, &input_layouts).unwrap();
    let builder = TreeBuilder::new(&prepared, &buffers);
    let writes = builder.output_writes();
    println!("output writes: {}", writes.len());
    let mut guarded = Vec::new();
    for (i, d) in writes {
        if let Some(tree) = builder.build_output_tree(i, d) {
            guarded.push(abstract_guarded(&tree, &buffers));
        }
    }
    let clusters = cluster_trees(guarded);
    println!("clusters: {}", clusters.len());
    for (i, c) in clusters.iter().enumerate() {
        let mut outputs: Vec<String> = c
            .trees
            .iter()
            .take(8)
            .map(|t| format!("{:?}", t.tree.output))
            .collect();
        outputs.dedup();
        println!(
            "cluster {i}: {} trees, output buffer {:?}, sample outputs {:?}",
            c.trees.len(),
            c.output_buffer(),
            outputs
        );
        if let Some(t) = c.trees.first() {
            println!("  first tree: {}", t.tree.render());
        }
    }
}
