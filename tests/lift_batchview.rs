//! End-to-end lifting of the BatchView (IrfanView-analogue) filters: the
//! interleaved-RGB, x87 floating-point kernels of paper §6.1. The integer
//! filters must reproduce the legacy output exactly; the float stencils are
//! allowed to differ in the low-order bit (the paper reports the same
//! tolerance, caused by reassociation during canonicalization).

mod common;

use helium::apps::batchview::{BatchFilter, BatchView};
use helium::apps::InterleavedImage;
use helium::core::{KnownData, LiftRequest, LiftedStencil, Lifter};
use helium::halide::Schedule;

fn lift_batchview(filter: BatchFilter, w: usize, h: usize) -> (BatchView, LiftedStencil) {
    let image = InterleavedImage::random(w, h, 0x1AF1 + filter as u64);
    let app = BatchView::new(filter, image);
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the BatchView filter succeeds");
    (app, lifted)
}

/// Realize every lifted kernel and compare each pixel the legacy filter
/// actually writes against the lifted result (pointwise filters write every
/// pixel; the float stencils skip a one-pixel border).
fn check_against_legacy(app: &BatchView, lifted: &LiftedStencil, tolerance: i64) {
    // Run the legacy binary once more and keep its final memory image.
    let mut cpu = app.fresh_cpu(true);
    cpu.run(app.program(), 500_000_000, |_, _| {})
        .expect("legacy run completes");
    let legacy = app.read_output(&cpu);

    let (w, h) = (app.image().width, app.image().height);
    let border = if app.filter().float_weights().is_some() {
        1
    } else {
        0
    };

    assert!(!lifted.kernels.is_empty());
    let mut checked = 0usize;
    for kernel in &lifted.kernels {
        let out_layout = lifted.buffer(&kernel.output).expect("output layout");
        let realized =
            common::realize_kernel(&cpu.mem, lifted, kernel, None, Schedule::stencil_default());
        for y in border..h - border {
            for x in border..w - border {
                for c in 0..3 {
                    let addr = app.output_addr() + (y * legacy.stride() + 3 * x + c) as u32;
                    let Some(coord) = out_layout.index_of(addr) else {
                        continue;
                    };
                    if coord
                        .iter()
                        .zip(&out_layout.extents)
                        .any(|(&i, &e)| i < 0 || i >= e as i64)
                    {
                        continue;
                    }
                    let got = realized.get(&coord).as_i64();
                    let want = legacy.get(c, x, y) as i64;
                    assert!(
                        (got - want).abs() <= tolerance,
                        "{}: pixel ({c},{x},{y}) (addr {addr:#x}): lifted {got} vs legacy {want}",
                        app.filter().name()
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked >= 3 * (w - 2 * border) * (h - 2 * border),
        "too few pixels compared ({checked})"
    );
}

#[test]
fn lifted_batchview_invert_is_bit_identical() {
    let (app, lifted) = lift_batchview(BatchFilter::Invert, 20, 11);
    check_against_legacy(&app, &lifted, 0);
}

#[test]
fn lifted_batchview_solarize_handles_the_conditional() {
    let (app, lifted) = lift_batchview(BatchFilter::Solarize, 18, 10);
    // Solarize has an input-dependent conditional: the lifted source must
    // contain a select over the pixel value.
    let src = lifted.halide_source();
    assert!(
        src.contains("select("),
        "solarize must lift to a select:\n{src}"
    );
    check_against_legacy(&app, &lifted, 0);
}

#[test]
fn lifted_batchview_blur_matches_within_rounding() {
    let (app, lifted) = lift_batchview(BatchFilter::Blur, 16, 10);
    // The x87 float path produces float multiplies in the tree; rounding back
    // to integers may differ by one ulp after reassociation.
    check_against_legacy(&app, &lifted, 1);
}

#[test]
fn lifted_batchview_sharpen_matches_within_rounding() {
    let (app, lifted) = lift_batchview(BatchFilter::Sharpen, 16, 9);
    check_against_legacy(&app, &lifted, 1);
}

#[test]
fn batchview_lift_infers_interleaved_geometry() {
    // IrfanView stores RGB interleaved: the paper notes Helium infers a single
    // input and a single output buffer (not three planes).
    let (app, lifted) = lift_batchview(BatchFilter::Invert, 22, 12);
    let inputs: Vec<_> = lifted
        .buffers
        .iter()
        .filter(|b| b.role == helium::core::BufferRole::Input)
        .collect();
    let outputs: Vec<_> = lifted
        .buffers
        .iter()
        .filter(|b| b.role == helium::core::BufferRole::Output)
        .collect();
    assert_eq!(inputs.len(), 1, "interleaved input is a single buffer");
    assert_eq!(outputs.len(), 1, "interleaved output is a single buffer");
    // The scanline stride is 3 bytes per pixel times the width.
    let stride = *inputs[0].strides.last().expect("strides");
    assert_eq!(stride, (3 * app.image().width) as u32);
}
