//! Pipelines of lifted kernels (paper §6.4): composing two lifted filters with
//! `compose_after` must compute exactly the same image as running them one
//! after the other through a materialized intermediate buffer, and lifting
//! must be deterministic up to the random tree sampling of §4.10.

mod common;

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, LiftedStencil, Lifter};
use helium::halide::{RealizeInputs, Realizer, Schedule};

fn lift(filter: PhotoFilter, image: &PlanarImage, seed: u64) -> (PhotoFlow, LiftedStencil) {
    let app = PhotoFlow::new(filter, image.clone());
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .with_seed(seed)
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting succeeds");
    (app, lifted)
}

#[test]
fn fused_lifted_pipeline_matches_separate_execution() {
    let image = PlanarImage::random(40, 28, 1, 16, 0xF05E);
    let (blur_app, blur) = lift(PhotoFilter::Blur, &image, 1);
    let (_, invert) = lift(PhotoFilter::Invert, &image, 1);

    let blur_kernel = blur.primary();
    let invert_kernel = invert.primary();
    let blur_input_name = blur_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .expect("input");
    let invert_input_name = invert_kernel
        .pipeline
        .images
        .keys()
        .next()
        .cloned()
        .expect("input");

    // Bind the blur's input plane from the legacy memory image.
    let mut cpu = blur_app.fresh_cpu(true);
    cpu.run(blur_app.program(), 500_000_000, |_, _| {})
        .expect("legacy run");
    let input = common::buffer_from_memory(
        &cpu.mem,
        &blur,
        &blur_input_name,
        helium::halide::ScalarType::UInt8,
    );
    let extents: Vec<usize> = blur
        .buffer(&blur_kernel.output)
        .expect("output layout")
        .extents
        .iter()
        .map(|&e| e as usize)
        .collect();

    let realizer = Realizer::new(Schedule::stencil_default());

    // Separate: blur, materialize, invert.
    let blurred = realizer
        .realize(
            &blur_kernel.pipeline,
            &extents,
            &RealizeInputs::new().with_image(&blur_input_name, &input),
        )
        .expect("blur realizes");
    let separate = realizer
        .realize(
            &invert_kernel.pipeline,
            &extents,
            &RealizeInputs::new().with_image(&invert_input_name, &blurred),
        )
        .expect("invert realizes");

    // Fused: invert ∘ blur as one pipeline.
    let fused = invert_kernel
        .pipeline
        .compose_after(&blur_kernel.pipeline, &invert_input_name);
    assert!(
        fused.images.contains_key(&blur_input_name),
        "the fused pipeline consumes the original input"
    );
    assert!(
        !fused.images.contains_key(&invert_input_name) || invert_input_name == blur_input_name,
        "the intermediate image parameter is eliminated by fusion"
    );
    let fused_out = realizer
        .realize(
            &fused,
            &extents,
            &RealizeInputs::new().with_image(&blur_input_name, &input),
        )
        .expect("fused pipeline realizes");

    assert_eq!(fused_out, separate, "fusion must not change any pixel");
}

#[test]
fn lifting_is_deterministic_and_seed_invariant() {
    // The §4.10 tree sampling is random, but any full-rank sample recovers the
    // same affine index functions, so the generated source must not depend on
    // the seed; and the same seed must reproduce the identical result.
    let image = PlanarImage::random(32, 17, 1, 16, 0xD0D0);
    let (_, a) = lift(PhotoFilter::Blur, &image, 1);
    let (_, b) = lift(PhotoFilter::Blur, &image, 1);
    let (_, c) = lift(PhotoFilter::Blur, &image, 0xDEADBEEF);
    assert_eq!(
        a.halide_source(),
        b.halide_source(),
        "same seed, same artifact"
    );
    assert_eq!(
        a.halide_source(),
        c.halide_source(),
        "different seed, same lifted algorithm"
    );
    assert_eq!(a.stats.tree_sizes, c.stats.tree_sizes);
}
