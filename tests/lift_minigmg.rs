//! End-to-end lifting of the miniGMG Jacobi smooth stencil (paper §6.1 and
//! §6.3): no known input/output data is available, so the generic
//! dimensionality inference path is exercised, and the fragmented read set of
//! the ghost-zone grid falls back to the linear-span input layout.

mod common;

use helium::apps::{Grid3D, MiniGmg};
use helium::core::{BufferRole, LiftRequest, LiftedStencil, Lifter};
use helium::halide::Schedule;

fn lift_minigmg(nx: usize, ny: usize, nz: usize) -> (MiniGmg, LiftedStencil) {
    let grid = Grid3D::random(nx, ny, nz, 1, 0x6116);
    let app = MiniGmg::new(grid);
    let request = LiftRequest {
        known_inputs: vec![],
        known_outputs: vec![],
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the smooth stencil succeeds");
    (app, lifted)
}

#[test]
fn lifted_smooth_matches_reference_within_float_tolerance() {
    let (app, lifted) = lift_minigmg(12, 10, 8);
    let grid = app.grid();
    let reference = app.reference_output();

    // Re-run the legacy binary to obtain the memory image the lifted kernel
    // reads its input from.
    let mut cpu = app.fresh_cpu(true);
    cpu.run(app.program(), 500_000_000, |_, _| {})
        .expect("legacy run completes");

    assert_eq!(lifted.kernels.len(), 1, "one kernel for the smooth stencil");
    let kernel = lifted.primary();
    let out_layout = lifted.buffer(&kernel.output).expect("output layout");

    // Realize over the true interior so boundary clamping never kicks in; the
    // inferred innermost extent includes the ghost gap of the scanline.
    let extents = vec![grid.nx, grid.ny, grid.nz];
    let realized = common::realize_kernel(
        &cpu.mem,
        &lifted,
        kernel,
        Some(extents),
        Schedule::stencil_default(),
    );

    // The output buffer's origin is the first interior cell, so realized
    // coordinate (x, y, z) corresponds to logical interior cell (x, y, z).
    let mut max_err = 0f64;
    for z in 0..grid.nz {
        for y in 0..grid.ny {
            for x in 0..grid.nx {
                let got = realized.get(&[x as i64, y as i64, z as i64]).as_f64();
                let want = reference.get(x, y, z);
                max_err = max_err.max((got - want).abs());
            }
        }
    }
    assert!(
        max_err < 1e-12,
        "lifted smooth deviates from the reference by {max_err}"
    );
    let _ = out_layout;
}

#[test]
fn generic_inference_recovers_the_grid_geometry() {
    let (app, lifted) = lift_minigmg(12, 10, 8);
    let grid = app.grid();

    // The output buffer is recovered as a 3-D buffer with the padded row and
    // plane strides of the grid (8-byte doubles, ghost = 1).
    let output = lifted
        .buffers
        .iter()
        .find(|b| b.role == BufferRole::Output)
        .expect("an output buffer is inferred");
    assert_eq!(output.dims(), 3, "generic inference finds three dimensions");
    assert_eq!(output.element_size, 8);
    assert_eq!(output.strides[0], 8);
    assert_eq!(
        output.strides[1],
        (grid.px() * 8) as u32,
        "row stride includes the ghost zone"
    );
    assert_eq!(
        output.strides[2],
        (grid.px() * grid.py() * 8) as u32,
        "plane stride"
    );
    assert_eq!(output.extents[1], grid.ny as u32);
    assert_eq!(output.extents[2], grid.nz as u32);

    // The fragmented read set is merged into one linear input buffer spanning
    // (almost) the whole padded grid.
    let inputs: Vec<_> = lifted
        .buffers
        .iter()
        .filter(|b| b.role == BufferRole::Input)
        .collect();
    assert_eq!(inputs.len(), 1, "one merged input buffer");
    assert_eq!(inputs[0].dims(), 1, "the fallback layout is linear");
    assert!(
        inputs[0].byte_len() as usize >= grid.byte_len() / 2,
        "the input span covers the bulk of the grid"
    );

    // Statistics: the generic path still produces a single cluster whose tree
    // has the 7-point structure (6 neighbour loads + centre + 2 weights).
    assert_eq!(lifted.stats.tree_sizes.len(), 1);
    assert!(
        lifted.stats.tree_sizes[0] >= 15,
        "7-point weighted stencil tree"
    );
}

#[test]
fn lifted_smooth_source_uses_flattened_affine_indices() {
    let (_, lifted) = lift_minigmg(10, 8, 6);
    let src = lifted.halide_source();
    // Three pure variables, one flattened input access with both row and
    // plane coefficients present.
    assert!(src.contains("Var x_0;") && src.contains("Var x_1;") && src.contains("Var x_2;"));
    assert!(
        src.contains("ImageParam input_1(Float(64),1)"),
        "linear double input:\n{src}"
    );
    // Row stride (padded x extent) and plane stride coefficients appear in the
    // flattened index expressions.
    assert!(
        src.contains("12 * x_1"),
        "row coefficient for a 10-wide interior (px=12):\n{src}"
    );
    assert!(
        src.contains("120 * x_2"),
        "plane coefficient (px*py=120):\n{src}"
    );
    assert!(src.contains("compile_to_file"));
}
