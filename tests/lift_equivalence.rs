//! End-to-end lifting tests: lift kernels from the legacy binaries and check
//! that realizing the lifted Halide pipelines reproduces the legacy output
//! (paper §6.1: all integer filters are bit-identical).

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{KnownData, LiftRequest, Lifter};
use helium::halide::{RealizeInputs, Realizer, ScalarType, Schedule, Value};

/// Lift a PhotoFlow filter and return the lifted stencil plus the app.
fn lift_photoflow(
    filter: PhotoFilter,
    w: usize,
    h: usize,
) -> (PhotoFlow, helium::core::LiftedStencil) {
    let image = PlanarImage::random(w, h, 1, 16, 0xC0FFEE);
    let app = PhotoFlow::new(filter, image);
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting succeeds");
    (app, lifted)
}

/// Realize every lifted output plane and compare against the legacy output.
fn check_planes_match(app: &PhotoFlow, lifted: &helium::core::LiftedStencil) {
    let legacy = app.run_in_vm();
    let layout = app.layout();
    let stride = layout.stride as usize;
    let padded_rows = layout.padded_rows as usize;

    for kernel in &lifted.kernels {
        // Which legacy plane does this lifted output correspond to?
        let out_layout = lifted.buffer(&kernel.output).expect("output layout");
        let plane_idx = layout
            .output_planes
            .iter()
            .position(|&base| {
                out_layout.base >= base && out_layout.base < base + layout.plane_bytes()
            })
            .expect("output maps to a plane");

        // Bind every referenced input image from the same memory the legacy
        // binary saw.
        let mut buffers = Vec::new();
        for (name, param) in &kernel.pipeline.images {
            let in_layout = lifted.buffer(name).expect("input layout");
            let mut buf = helium::halide::Buffer::new(
                ScalarType::UInt8,
                &in_layout
                    .extents
                    .iter()
                    .map(|&e| e as usize)
                    .collect::<Vec<_>>(),
            );
            // Reconstruct the input contents from the app's memory image.
            let cpu = app.fresh_cpu(true);
            let bytes = cpu.mem.read_bytes(in_layout.base, in_layout.byte_len());
            // Fill respecting the inferred strides.
            let extents: Vec<usize> = in_layout.extents.iter().map(|&e| e as usize).collect();
            if extents.len() == 2 {
                for y in 0..extents[1] {
                    for x in 0..extents[0] {
                        let off = y * in_layout.strides[1] as usize + x;
                        if off < bytes.len() {
                            buf.set(&[x as i64, y as i64], Value::Int(bytes[off] as i64));
                        }
                    }
                }
            } else {
                for (i, b) in bytes.iter().enumerate().take(buf.len()) {
                    buf.set(&[i as i64], Value::Int(*b as i64));
                }
            }
            buffers.push((name.clone(), buf, param.dims));
        }
        let mut inputs = RealizeInputs::new();
        for (name, buf, _) in &buffers {
            inputs = inputs.with_image(name, buf);
        }
        for (name, value) in &kernel.parameter_values {
            inputs = inputs.with_param(name, *value);
        }

        let out_extents: Vec<usize> = out_layout.extents.iter().map(|&e| e as usize).collect();
        let realized = Realizer::new(Schedule::stencil_default())
            .realize(&kernel.pipeline, &out_extents, &inputs)
            .expect("realization succeeds");

        // Compare the interior of the image (the region the legacy filter
        // actually writes).
        let pad = layout.pad as usize;
        let out_base_off = out_layout.base - layout.output_planes[plane_idx];
        for y in 0..layout.height as usize {
            for x in 0..layout.width as usize {
                let legacy_value = legacy.planes[plane_idx].get(x, y);
                // Address of this pixel inside the lifted output buffer.
                let addr_off = (y + pad) * stride + (x + pad);
                let rel = addr_off as i64 - out_base_off as i64;
                let oy = rel / out_layout.strides[1] as i64;
                let ox = rel % out_layout.strides[1] as i64;
                if oy < 0 || oy >= out_extents[1] as i64 {
                    continue;
                }
                let lifted_value = realized.get(&[ox, oy]).as_i64() as u8;
                assert_eq!(
                    lifted_value,
                    legacy_value,
                    "{}: mismatch at plane {plane_idx} ({x},{y})",
                    app.filter().name()
                );
            }
        }
        let _ = padded_rows;
    }
}

#[test]
fn lifted_blur_is_bit_identical() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Blur, 32, 17);
    assert!(lifted.halide_source().contains("compile_to_file"));
    assert_eq!(lifted.kernels.len(), 3, "one kernel per colour plane");
    check_planes_match(&app, &lifted);
}

#[test]
fn lifted_invert_is_bit_identical() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Invert, 24, 11);
    check_planes_match(&app, &lifted);
}

#[test]
fn lifted_sharpen_is_bit_identical() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Sharpen, 24, 12);
    check_planes_match(&app, &lifted);
}

#[test]
fn lifted_threshold_handles_input_dependent_conditionals() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Threshold, 24, 10);
    // Threshold produces predicated clusters: at least one select in the code.
    let src = lifted.halide_source();
    assert!(
        src.contains("select("),
        "threshold must lift to a select: {src}"
    );
    check_planes_match(&app, &lifted);
}
