//! End-to-end lifting of the remaining PhotoFlow (Photoshop-analogue) filters
//! beyond the four covered in `lift_equivalence.rs`: the 9-point stencils, the
//! sliding-window box blur, the lookup-table brightness filter and the
//! histogram part of equalize (paper §6.1, Figure 6 rows below the line).

mod common;

use helium::apps::photoflow::{PhotoFilter, PhotoFlow};
use helium::apps::PlanarImage;
use helium::core::{BufferRole, KnownData, LiftRequest, LiftedStencil, Lifter};
use helium::halide::Schedule;
use std::collections::BTreeMap;

fn lift_photoflow(filter: PhotoFilter, w: usize, h: usize) -> (PhotoFlow, LiftedStencil) {
    let image = PlanarImage::random(w, h, 1, 16, 0xFACE + filter as u64);
    let app = PhotoFlow::new(filter, image);
    let request = LiftRequest {
        known_inputs: app
            .known_input_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        known_outputs: app
            .known_output_rows()
            .into_iter()
            .map(KnownData::from_rows)
            .collect(),
        approx_data_size: app.approx_data_size(),
    };
    let lifted = Lifter::new()
        .lift(app.program(), &request, |with| app.fresh_cpu(with))
        .expect("lifting the PhotoFlow filter succeeds");
    (app, lifted)
}

/// Realize every lifted plane kernel against the legacy memory image and
/// compare the interior pixels with the legacy output, allowing `tolerance`
/// levels of difference (0 for the integer filters).
fn check_interior(app: &PhotoFlow, lifted: &LiftedStencil, tolerance: i64) {
    let mut cpu = app.fresh_cpu(true);
    cpu.run(app.program(), 500_000_000, |_, _| {})
        .expect("legacy run completes");
    let legacy = app.read_output(&cpu);
    let layout = app.layout();
    let (w, h, pad, stride) = (
        layout.width as usize,
        layout.height as usize,
        layout.pad as usize,
        layout.stride as usize,
    );

    let mut compared = 0usize;
    for kernel in &lifted.kernels {
        let out_layout = lifted.buffer(&kernel.output).expect("output layout");
        // Which legacy plane does this lifted output live in?
        let plane = layout
            .output_planes
            .iter()
            .position(|&base| {
                out_layout.base >= base && out_layout.base < base + layout.plane_bytes()
            })
            .expect("output maps to a plane");
        let realized =
            common::realize_kernel(&cpu.mem, lifted, kernel, None, Schedule::stencil_default());
        for y in 0..h {
            for x in 0..w {
                let addr = layout.output_planes[plane] + ((y + pad) * stride + x + pad) as u32;
                let Some(coord) = out_layout.index_of(addr) else {
                    continue;
                };
                if coord
                    .iter()
                    .zip(&out_layout.extents)
                    .any(|(&i, &e)| i < 0 || i >= e as i64)
                {
                    continue;
                }
                let got = realized.get(&coord).as_i64();
                let want = legacy.planes[plane].get(x, y) as i64;
                assert!(
                    (got - want).abs() <= tolerance,
                    "{}: plane {plane} pixel ({x},{y}): lifted {got} vs legacy {want}",
                    app.filter().name()
                );
                compared += 1;
            }
        }
    }
    assert!(compared >= w * h, "too few pixels compared ({compared})");
}

#[test]
fn lifted_blur_more_is_bit_identical() {
    let (app, lifted) = lift_photoflow(PhotoFilter::BlurMore, 32, 17);
    assert_eq!(lifted.kernels.len(), 3);
    check_interior(&app, &lifted, 0);
}

#[test]
fn lifted_sharpen_more_is_bit_identical() {
    let (app, lifted) = lift_photoflow(PhotoFilter::SharpenMore, 32, 15);
    check_interior(&app, &lifted, 0);
}

#[test]
fn lifted_box_blur_undoes_the_sliding_window() {
    // The paper's box blur is implemented with a sliding window; Helium's
    // canonicalization cancels the running adds/subtracts, so the lifted code
    // is a plain 9-point stencil. The result stays bit-identical (the legacy
    // kernel here uses fixed-point arithmetic, not floats).
    let (app, lifted) = lift_photoflow(PhotoFilter::BoxBlur, 30, 14);
    check_interior(&app, &lifted, 0);
    // Every input leaf of the symbolic tree is a direct (affine) access: no
    // recursive reference to the output survives canonicalization.
    for cluster in &lifted.clusters {
        assert!(!cluster.recursive, "box blur must not lift as a reduction");
    }
}

#[test]
fn lifted_brightness_applies_the_lookup_table() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Brightness, 32, 17);
    // The paper lifts only the application of the table, not its computation:
    // the generated code must index a table buffer with the input pixel.
    let src = lifted.halide_source();
    assert!(
        src.contains("buffer_1(cast<int32_t>"),
        "brightness must index the lifted lookup table with a data-dependent value:\n{src}"
    );
    // A table buffer of 256 one-byte entries is part of the inferred buffers.
    let table = lifted
        .buffers
        .iter()
        .find(|b| b.role == BufferRole::Table)
        .expect("a lookup table buffer is inferred");
    assert_eq!(table.byte_len(), 256);
    check_interior(&app, &lifted, 0);
}

#[test]
fn lifted_equalize_counts_every_sample_once() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Equalize, 32, 17);

    // Structure: one recursive cluster (the histogram update) whose reduction
    // domain is driven by the input image, plus the zero-initialisation
    // cluster (paper Fig. 4).
    assert!(
        lifted.clusters.iter().any(|c| c.recursive),
        "equalize lifts as a reduction"
    );
    let recursive = lifted
        .clusters
        .iter()
        .find(|c| c.recursive)
        .expect("recursive cluster");
    assert_eq!(recursive.reduction_over.as_deref(), Some("input_1"));
    let src = lifted.halide_source();
    assert!(
        src.contains("RDom"),
        "equalize must generate a reduction domain:\n{src}"
    );
    assert!(
        src.contains("output_1(cast<int32_t>(input_1(r_0.x, r_0.y)))"),
        "the histogram bin is selected by the input value:\n{src}"
    );

    // Semantics: realizing the lifted reduction over the inferred input extent
    // counts every element of the bound input buffer exactly once.
    let mut cpu = app.fresh_cpu(true);
    cpu.run(app.program(), 500_000_000, |_, _| {})
        .expect("legacy run completes");
    let kernel = lifted.primary();
    let out_layout = lifted.buffer(&kernel.output).expect("histogram layout");
    assert_eq!(out_layout.extents, vec![256]);
    let realized = common::realize_kernel(&cpu.mem, &lifted, kernel, None, Schedule::naive());

    // Expected: histogram of the very buffer the kernel was handed.
    let input = common::buffer_from_memory(
        &cpu.mem,
        &lifted,
        "input_1",
        helium::halide::ScalarType::UInt8,
    );
    let mut expected: BTreeMap<i64, i64> = BTreeMap::new();
    for i in 0..input.len() {
        *expected.entry(input.get_linear(i).as_i64()).or_insert(0) += 1;
    }
    for bin in 0..256i64 {
        assert_eq!(
            realized.get(&[bin]).as_i64(),
            expected.get(&bin).copied().unwrap_or(0),
            "histogram bin {bin}"
        );
    }
}

#[test]
fn localization_statistics_have_the_fig6_shape() {
    // Figure 6 of the paper: coverage differencing screens out the vast
    // majority of the executed blocks, the filter function is a small number
    // of blocks, and tree sizes grow with stencil complexity.
    let mut tree_size: BTreeMap<&'static str, usize> = BTreeMap::new();
    for filter in [
        PhotoFilter::Invert,
        PhotoFilter::Blur,
        PhotoFilter::BlurMore,
        PhotoFilter::Threshold,
    ] {
        let (_, lifted) = lift_photoflow(filter, 32, 17);
        let s = &lifted.stats;
        assert!(
            s.diff_basic_blocks < s.total_basic_blocks,
            "{}: coverage difference must discard the blocks shared with the no-filter run ({} of {})",
            filter.name(),
            s.diff_basic_blocks,
            s.total_basic_blocks
        );
        assert!(
            s.filter_function_blocks <= s.diff_basic_blocks,
            "{}: the filter function is a subset of the difference",
            filter.name()
        );
        assert!(s.static_instruction_count > 0);
        assert!(s.memory_dump_bytes > 0 && s.memory_dump_bytes % 4096 == 0);
        assert!(s.dynamic_instruction_count >= s.static_instruction_count);
        assert!(!s.tree_sizes.is_empty());
        tree_size.insert(
            filter.name(),
            *s.tree_sizes.iter().max().expect("tree sizes"),
        );
    }
    // Stencil complexity ordering (paper Fig. 6 tree-size column): a 9-point
    // stencil needs a larger tree than a 5-point stencil, which needs a larger
    // tree than the pointwise invert.
    assert!(tree_size["invert"] < tree_size["blur"]);
    assert!(tree_size["blur"] < tree_size["blur_more"]);
}
