//! Properties of the guided autotuner (`helium-tune`) against the lifted
//! Fig. 7 filters:
//!
//! 1. **Rank correlation** — the analytical cost model's ordering of
//!    candidate schedules must agree with measured steady-state times well
//!    enough that the *top model quartile* contains a schedule within
//!    tolerance of the true best. The model never has to predict wall-clock;
//!    it has to put a near-best schedule early in the search order — that is
//!    the property the guided search's trial-count advantage rests on.
//! 2. **Structural ordering** — on a stencil pipeline the model must rank a
//!    fused wide schedule strictly ahead of the naive scalar one, and its
//!    feature vector must reflect the dry-run facts it scored (fused stores
//!    present, taps counted).
//! 3. **Persistence** — a `ScheduleCache` tuned in one process state and
//!    round-tripped through its on-disk format warms a completely fresh
//!    state with *zero* timed trials, and the winner survives the round
//!    trip bit-exactly.
//!
//! The CI `autotune` job runs this suite with a non-vacuity guard.

use helium::halide::prelude::*;
use helium_apps::photoflow::PhotoFilter;
use helium_bench::{lift_photoflow, LiftedRealizeSetup};
use helium_tune::{
    enumerate_candidates, guided_search_cached, rank_candidates, score, ScheduleCache,
    SearchConfig, Trial,
};
use std::time::{Duration, Instant};

/// Steady-state best-of-`reps` measurement of one ranked candidate, after
/// one untimed warm-up run (which also primes the shared program cache).
fn measure(
    pipeline: &Pipeline,
    trial: &Trial,
    extents: &[usize],
    inputs: &RealizeInputs<'_>,
    reps: usize,
) -> Duration {
    let compiled = pipeline
        .compile(&trial.schedule, &CompileOptions::default())
        .expect("compile ranked candidate");
    let _ = compiled.run(inputs, extents).expect("warm-up");
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = compiled.run(inputs, extents).expect("timed run");
        best = best.min(start.elapsed());
    }
    best
}

/// The rank-correlation property for one filter: among the model's top
/// quartile there must be a schedule measured within `tol`× of the best
/// measured time over *all* candidates.
fn assert_top_quartile_contains_near_best(filter: PhotoFilter, tol: f64) {
    let (app, lifted) = lift_photoflow(filter, 96, 64);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let pipeline = setup.pipeline();

    let candidates = enumerate_candidates(pipeline, 32);
    let ranked =
        rank_candidates(pipeline, &setup.extents, &inputs, &candidates).expect("rank candidates");
    assert!(
        ranked.len() >= 8,
        "{}: need a meaningful candidate pool, got {}",
        filter.name(),
        ranked.len()
    );

    let times: Vec<Duration> = ranked
        .iter()
        .map(|t| measure(pipeline, t, &setup.extents, &inputs, 3))
        .collect();
    let best = *times.iter().min().expect("non-empty");
    let quartile = ranked.len().div_ceil(4);
    let best_in_quartile = *times[..quartile].iter().min().expect("non-empty quartile");

    assert!(
        best_in_quartile.as_secs_f64() <= best.as_secs_f64() * tol,
        "{}: model's top quartile ({} of {}) bottoms out at {:?}, but the \
         true best is {:?} — ranking is not correlated with measurement",
        filter.name(),
        quartile,
        ranked.len(),
        best_in_quartile,
        best,
    );
}

#[test]
fn model_top_quartile_contains_near_best_invert() {
    assert_top_quartile_contains_near_best(PhotoFilter::Invert, 1.5);
}

#[test]
fn model_top_quartile_contains_near_best_blur() {
    assert_top_quartile_contains_near_best(PhotoFilter::Blur, 1.5);
}

#[test]
fn model_top_quartile_contains_near_best_sharpen() {
    assert_top_quartile_contains_near_best(PhotoFilter::Sharpen, 1.5);
}

#[test]
fn model_ranks_fused_wide_above_naive_scalar_on_blur() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Blur, 96, 64);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let pipeline = setup.pipeline();

    let naive = pipeline
        .compile(&Schedule::naive(), &CompileOptions::default())
        .unwrap()
        .dry_run(&inputs, &setup.extents)
        .unwrap();
    let wide = Schedule::stencil_default();
    let fused = pipeline
        .compile(&wide, &CompileOptions::default())
        .unwrap()
        .dry_run(&inputs, &setup.extents)
        .unwrap();

    let naive_score = score(&Schedule::naive(), &naive);
    let fused_score = score(&wide, &fused);
    assert!(
        fused_score < naive_score,
        "fused wide schedule must score cheaper than naive scalar \
         ({fused_score} vs {naive_score})"
    );

    // The ranking's feature vectors must reflect the dry-run facts they
    // were scored from, not re-guessed admissibility.
    let candidates = enumerate_candidates(pipeline, 32);
    let ranked = rank_candidates(pipeline, &setup.extents, &inputs, &candidates).unwrap();
    let top = &ranked[0];
    assert!(
        top.features.fused_stores > 0,
        "the winning candidate must actually fuse"
    );
    assert!(
        ranked.iter().all(|t| t.features.output_cells > 0),
        "every feature vector carries the dry-run cell counts"
    );
    assert!(
        ranked.iter().any(|t| t.features.taps > 0),
        "blur's stencil taps must be visible to the model"
    );
}

#[test]
fn schedule_cache_round_trip_warms_fresh_state_with_zero_search() {
    let (app, lifted) = lift_photoflow(PhotoFilter::Invert, 96, 64);
    let setup = LiftedRealizeSetup::new(&app, &lifted);
    let inputs = setup.inputs();
    let pipeline = setup.pipeline();
    let config = SearchConfig {
        top_k: 3,
        repetitions: 1,
        max_candidates: 16,
        budget: Duration::from_secs(60),
    };

    // Process state 1: tune and persist.
    let mut cache = ScheduleCache::new();
    let cold = guided_search_cached(pipeline, &setup.extents, &inputs, &config, &mut cache)
        .expect("cold search");
    assert!(!cold.from_cache);
    assert!(cold.timed_trials >= 1, "a cold search must time something");
    let dir = std::env::temp_dir().join(format!("helium_prop_tune_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("schedules.txt");
    cache.save(&path).expect("persist");

    // Process state 2: only the file survives. Zero timed trials.
    let mut fresh = ScheduleCache::load(&path).expect("reload");
    let hot = guided_search_cached(pipeline, &setup.extents, &inputs, &config, &mut fresh)
        .expect("warm search");
    std::fs::remove_dir_all(&dir).ok();
    assert!(hot.from_cache, "the persisted winner must be found");
    assert_eq!(hot.timed_trials, 0, "warm start performs no timed trials");
    assert!(hot.trials.is_empty(), "no candidates were even ranked");
    assert_eq!(hot.best, cold.best, "the winner survives the round trip");
    assert_eq!(hot.best_time, cold.best_time, "so does its recorded time");
}
