#!/usr/bin/env python3
"""Bench regression gate: fail CI when a recorded speedup falls below floor.

Parses BENCH_lowering.json (written by `cargo bench -p helium-bench --bench
lowering`, including under HELIUM_BENCH_SMOKE=1) and walks every object in it
for `*_speedup` keys with a configured floor. Floors are deliberately below
steady-state numbers (6-26x locally) so only a genuine regression — a lane
family silently falling back a tier, a reduction landing back on the
interpreter — trips the gate, not CI-runner noise.

Usage: bench_gate.py [path-to-BENCH_lowering.json]
"""

import json
import sys

# key -> minimum acceptable value. Keys absent from the report fail the gate
# too (a silently dropped column is itself a regression).
FLOORS = {
    "simd_speedup": 3.0,        # [i32; W] fused tier vs per-op, per filter
    "f32_simd_speedup": 10.0,   # [f32; W] lane family (miniGMG smooth)
    "i64_simd_speedup": 3.0,    # [i64; W/2] lane family (hist64 binning)
    "reduction_speedup": 1.5,   # compiled update nests vs run_update
}


def walk(node, path, found, failures):
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if key in FLOORS and isinstance(value, (int, float)):
                found.add(key)
                if value < FLOORS[key]:
                    failures.append(
                        f"{here} = {value:.3f} is below the floor {FLOORS[key]:.1f}"
                    )
                else:
                    print(f"ok: {here} = {value:.3f} (floor {FLOORS[key]:.1f})")
            else:
                walk(value, here, found, failures)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk(value, f"{path}[{i}]", found, failures)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_lowering.json"
    with open(path) as f:
        report = json.load(f)
    found, failures = set(), []
    walk(report, "", found, failures)
    for key in sorted(set(FLOORS) - found):
        failures.append(f"{key} is missing from {path} entirely")
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench gate passed: {len(found)} gated column(s) above their floors")


if __name__ == "__main__":
    main()
