#!/usr/bin/env python3
"""Bench regression gate: fail CI when a recorded metric falls below floor.

Parses a bench report JSON (written by `cargo bench -p helium-bench`,
including under HELIUM_BENCH_SMOKE=1) and walks every object in it for keys
with a configured floor. Floors are selected per report file by basename —
BENCH_lowering.json gates the execution-tier and reduction speedups,
BENCH_serve.json gates the serving throughput and the parallel-reduction
accumulation split. Floors are deliberately below steady-state numbers so
only a genuine regression — a lane family silently falling back a tier, a
reduction landing back on the interpreter, the deferred accumulator
degrading to the serial path — trips the gate, not CI-runner noise.

Keys absent from a report fail its gate too (a silently dropped column is
itself a regression).

One floor is host-conditional: `arch_speedup` (hand-written AVX2 kernels vs
the portable lane programs) is only gated when the report itself records
`avx2_detected = 1` — on hosts without AVX2 the arch section is legitimately
empty and the column reads 0.0.

Usage: bench_gate.py [path-to-BENCH_*.json]
"""

import json
import os
import sys

# report basename -> {key -> minimum acceptable value}.
REPORT_FLOORS = {
    "BENCH_lowering.json": {
        "simd_speedup": 3.0,        # [i32; W] fused tier vs per-op, per filter
        "f32_simd_speedup": 10.0,   # [f32; W] lane family (miniGMG smooth)
        "i64_simd_speedup": 3.0,    # [i64; W/2] lane family (hist64 binning)
        "f64_simd_speedup": 1.5,    # [f64; W/2] lane family (f64 miniGMG smooth)
        "reduction_speedup": 1.5,   # compiled update nests vs run_update
        "window_speedup": 1.2,      # sliding-window compute_at vs recompute
        "multi_output_speedup": 1.2,  # fused multi-output nest vs per-stage nests
    },
    "BENCH_serve.json": {
        "serve_throughput_rps": 1.0,     # the service must actually serve
        "parallel_reduce_speedup": 1.3,  # privatize-then-merge vs serial nest
        "shed_p99_improvement": 1.0,     # shedding never worsens the tail
        "expired_completed_fraction": 1.0,  # every expired ticket resolves
    },
    "BENCH_autotune.json": {
        "guided_vs_random_speedup": 1.2,  # model-ranked trials-to-5% vs random
        "warm_start_zero_trials": 1.0,    # persisted cache => zero timed trials
    },
}


def walk(node, path, floors, found, failures):
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if key in floors and isinstance(value, (int, float)):
                found.add(key)
                if value < floors[key]:
                    failures.append(
                        f"{here} = {value:.3f} is below the floor {floors[key]:.1f}"
                    )
                else:
                    print(f"ok: {here} = {value:.3f} (floor {floors[key]:.1f})")
            else:
                walk(value, here, floors, found, failures)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            walk(value, f"{path}[{i}]", floors, found, failures)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_lowering.json"
    floors = REPORT_FLOORS.get(os.path.basename(path))
    if floors is None:
        print(f"bench gate FAILED: no floors configured for {path}", file=sys.stderr)
        sys.exit(1)
    with open(path) as f:
        report = json.load(f)
    floors = dict(floors)
    if os.path.basename(path) == "BENCH_lowering.json":
        # The explicit-AVX2 kernel floor only applies when the benchmarking
        # host actually had AVX2; the report records what it detected.
        if report.get("avx2_detected") == 1:
            floors["arch_speedup"] = 1.1
        else:
            print("note: avx2_detected != 1, arch_speedup not gated")
    found, failures = set(), []
    walk(report, "", floors, found, failures)
    for key in sorted(set(floors) - found):
        failures.append(f"{key} is missing from {path} entirely")
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench gate passed: {len(found)} gated column(s) above their floors")


if __name__ == "__main__":
    main()
