//! # helium
//!
//! Umbrella crate for the Helium reproduction (PLDI 2015: "Lifting
//! High-Performance Stencil Kernels from Stripped x86 Binaries to Halide DSL
//! Code").
//!
//! This crate re-exports the workspace members so downstream users and the
//! examples/integration tests can depend on a single crate:
//!
//! * [`machine`] — the x86-like virtual machine substrate,
//! * [`dbi`] — the dynamic binary instrumentation substrate,
//! * [`apps`] — the legacy applications whose kernels are lifted,
//! * [`halide`] — the miniature Halide DSL, scheduler and autotuner,
//! * [`core`] — the Helium pipeline itself (code localization + expression
//!   extraction + code generation).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end lift of a 2-D blur kernel
//! from a legacy binary into Halide source text and a runnable pipeline.

pub use helium_apps as apps;
pub use helium_core as core;
pub use helium_dbi as dbi;
pub use helium_halide as halide;
pub use helium_machine as machine;
